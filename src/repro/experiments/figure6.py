"""Figure 6: absolute and relative speedups up to 64 processors.

Paper: "The absolute and relative speedups for up to 64 processors are
plotted in Figure 6, which shows that the relative speedups remain around
1.8 when the number of processors increases.  This performance pattern is
observed for all different initial clique sizes from 3 to 20, though the
absolute speedups for case Init_K=3 are better than the absolute speedups
for the other three cases."

Reproduction: absolute speedup ``T(1)/T(p)`` and relative speedup
``T(p)/T(2p)`` from the calibrated simulation, for the paper Init_K
labels {3, 18, 19, 20} at p ≤ 64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.metrics import absolute_speedup, relative_speedups
from repro.parallel.parallel_enumerator import simulate_processor_sweep
from repro.experiments.calibration import calibrated_spec, myogenic_trace
from repro.experiments.workloads import INIT_K_MAP
from repro.experiments.reporting import render_table

__all__ = ["Figure6Result", "run", "report"]

FIGURE6_INIT_KS = (3, 18, 19, 20)
FIGURE6_PROCESSORS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Figure6Result:
    """Speedup series per paper Init_K label."""

    processor_counts: tuple[int, ...]
    absolute: dict[int, dict[int, float]]
    """paper Init_K -> processor count -> T(1)/T(p)."""
    relative: dict[int, dict[int, float]]
    """paper Init_K -> processor count 2p -> T(p)/T(2p)."""

    def mean_relative(self, paper_init_k: int) -> float:
        vals = list(self.relative[paper_init_k].values())
        return sum(vals) / len(vals) if vals else 0.0


def run(
    init_ks: tuple[int, ...] = FIGURE6_INIT_KS,
    processor_counts: tuple[int, ...] = FIGURE6_PROCESSORS,
) -> Figure6Result:
    """Compute both speedup families from the calibrated simulation."""
    spec = calibrated_spec()
    absolute: dict[int, dict[int, float]] = {}
    relative: dict[int, dict[int, float]] = {}
    for paper_k in init_ks:
        runs = simulate_processor_sweep(
            myogenic_trace(paper_k), spec, list(processor_counts),
            balance=True,
        )
        absolute[paper_k] = absolute_speedup(runs)
        relative[paper_k] = relative_speedups(runs)
    return Figure6Result(
        processor_counts=tuple(processor_counts),
        absolute=absolute,
        relative=relative,
    )


def report(result: Figure6Result | None = None) -> str:
    """Render both Figure 6 panels as tables."""
    r = result or run()
    init_ks = sorted(r.absolute)
    headers = ["processors", "ideal"] + [
        f"Init_K={k} (scaled {INIT_K_MAP[k]})" for k in init_ks
    ]
    abs_rows = []
    for p in r.processor_counts:
        abs_rows.append(
            [p, p]
            + [f"{r.absolute[k].get(p, float('nan')):.1f}" for k in init_ks]
        )
    rel_rows = []
    for p in r.processor_counts:
        if p == 1:
            continue
        rel_rows.append(
            [p, "2.0"]
            + [
                f"{r.relative[k][p]:.2f}" if p in r.relative[k] else "-"
                for k in init_ks
            ]
        )
    left = render_table(
        headers, abs_rows,
        title="Figure 6 (left) - absolute speedup T(1)/T(p), p <= 64",
    )
    right = render_table(
        headers, rel_rows,
        title="Figure 6 (right) - relative speedup T(p)/T(2p) "
              "(paper: stays around 1.8)",
    )
    means = ", ".join(
        f"Init_K={k}: {r.mean_relative(k):.2f}" for k in init_ks
    )
    return f"{left}\n\n{right}\n\nmean relative speedups - {means}"
