"""Experiment drivers: one module per paper table/figure.

==================  ====================================================
module              paper artifact
==================  ====================================================
``table1``          Table 1 — Kose RAM vs sequential Clique Enumerator
``maxclique_support``  max clique sizes 17 / 110 / 28 (Section 3 text)
``figure5``         run time vs processors per Init_K
``figure6``         absolute + relative speedups to 64 processors
``figure7``         256-processor speedup vs sequential run time
``figure8``         per-processor load balance (mean ± std)
``figure9``         candidate memory vs clique size
==================  ====================================================

Each module exposes ``run()`` (structured result) and ``report()`` (text
table).  ``python -m repro.experiments.runner all`` regenerates
everything.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    calibration,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    maxclique_support,
    reporting,
    table1,
    workloads,
)

__all__ = [
    "ablations",
    "calibration",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "maxclique_support",
    "reporting",
    "table1",
    "workloads",
]
