"""Table 1: Kose RAM vs the sequential Clique Enumerator.

Paper row (1 GHz PowerPC G4, 1 GB RAM)::

    Graph Size  Edge Density  Max Clique Size  Kose RAM    Sequential  Speedup
    12,422      0.008%        [3, 17]              17261 sec.  45 sec.     383

This experiment reruns both algorithms on the scaled analog
(:func:`~repro.experiments.workloads.mouse_brain_sparse`, full expression
pipeline, max clique 17) over the same clique range [3, 17], verifies
they emit identical maximal cliques, and reports the measured speedup.
The expected reproduction: the Clique Enumerator wins by a large factor —
smaller than 383 at 1/10 scale, since Kose's subset-containment overhead
grows with instance size (DESIGN.md §5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.kose import kose_enumerate
from repro.engine import EnumerationConfig, run_enumeration
from repro.experiments.workloads import Workload, mouse_brain_sparse
from repro.experiments.reporting import format_seconds, render_table

__all__ = ["Table1Result", "run", "report"]

#: The paper's measured values for context in the report.
PAPER = {"kose_seconds": 17261.0, "ce_seconds": 45.0, "speedup": 383.0}


@dataclass(frozen=True)
class Table1Result:
    """Measured Table 1 reproduction.

    Alongside the run times, the peak clique-storage bytes of both
    algorithms are recorded — the paper: Clique Enumerator's candidate
    pruning "reduces not only the execution time, but also the memory
    requirements."
    """

    workload: str
    n_vertices: int
    density: float
    clique_range: tuple[int, int]
    n_maximal: int
    kose_seconds: float
    ce_seconds: float
    kose_peak_bytes: int
    ce_peak_bytes: int
    outputs_match: bool
    backend: str = "incore"

    @property
    def speedup(self) -> float:
        if self.ce_seconds <= 0:
            return float("inf")
        return self.kose_seconds / self.ce_seconds

    @property
    def memory_ratio(self) -> float:
        """Kose peak storage over Clique Enumerator peak storage."""
        if self.ce_peak_bytes <= 0:
            return float("inf")
        return self.kose_peak_bytes / self.ce_peak_bytes


def run(
    workload: Workload | None = None, backend: str = "incore"
) -> Table1Result:
    """Time both enumerators on the Table 1 workload.

    Each algorithm runs once (the instances are large enough that a
    single run dominates timer noise by orders of magnitude; the
    pytest-benchmark harness in ``benchmarks/bench_table1.py`` adds
    multi-round statistics).  ``backend`` selects the Clique Enumerator
    substrate from the :mod:`repro.engine` registry, so the comparison
    can be rerun on any of them (e.g. ``--backend ooc`` through the
    experiments runner).
    """
    w = workload or mouse_brain_sparse()
    g = w.graph
    k_lo, k_hi = 3, w.expected_max_clique

    t0 = time.perf_counter()
    ce = run_enumeration(
        g, EnumerationConfig(backend=backend, k_min=k_lo, k_max=k_hi)
    )
    ce_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    ko = kose_enumerate(g, k_min=k_lo, k_max=k_hi)
    kose_seconds = time.perf_counter() - t0

    match = sorted(ce.cliques) == sorted(ko.cliques)
    return Table1Result(
        backend=backend,
        workload=w.name,
        n_vertices=g.n,
        density=g.density(),
        clique_range=(k_lo, k_hi),
        n_maximal=len(ce.cliques),
        kose_seconds=kose_seconds,
        ce_seconds=ce_seconds,
        kose_peak_bytes=ko.peak_stored_bytes(),
        ce_peak_bytes=ce.peak_candidate_bytes(),
        outputs_match=match,
    )


def report(
    result: Table1Result | None = None, backend: str = "incore"
) -> str:
    """Render the Table 1 reproduction next to the paper's row."""
    r = result or run(backend=backend)
    rows = [
        [
            "paper (12,422 v, 0.008%)",
            "[3, 17]",
            format_seconds(PAPER["kose_seconds"]),
            format_seconds(PAPER["ce_seconds"]),
            f"{PAPER['speedup']:.0f}x",
            "-",
            "-",
        ],
        [
            f"measured ({r.n_vertices} v, {r.density:.3%})",
            f"[{r.clique_range[0]}, {r.clique_range[1]}]",
            format_seconds(r.kose_seconds),
            format_seconds(r.ce_seconds),
            f"{r.speedup:.1f}x",
            f"{r.memory_ratio:.1f}x",
            "yes" if r.outputs_match else "NO",
        ],
    ]
    return render_table(
        ["run", "clique range", "Kose RAM", "Clique Enumerator",
         "speedup", "memory ratio", "outputs match"],
        rows,
        title=(
            "Table 1 - Kose RAM vs sequential Clique Enumerator "
            f"({r.n_maximal} maximal cliques); the paper's 383x is "
            "C-native at 10x scale, both implementations here are "
            "interpreter-bound (see EXPERIMENTS.md)"
        ),
    )
