"""Canonical scaled workloads for the paper's evaluation (Section 3).

The paper's three graphs:

===========================  ========  =========  ============  ==========
graph                         vertices  edges      density       max clique
===========================  ========  =========  ============  ==========
mouse brain (sparse)          12,422    6,151      0.008 %       17
mouse brain (dense)           12,422    229,297    0.3 %         110
myogenic differentiation       2,895    10,914     0.2 %         28
===========================  ========  =========  ============  ==========

Scaling policy (DESIGN.md §2): vertex counts are divided by ~10 (brain)
and ~4 (myogenic), and the *clique-size axis* is divided by 2 for the
myogenic workload — the paper enumerates all 18-cliques inside a
28-clique (~13·10⁶ of them), which its 256-processor Altix absorbs but a
2-core Python host cannot; halving the k-axis preserves every shape the
figures assert (run time halving per +1 Init_K, speedup curves, the
mid-range memory peak) because those shapes are governed by binomial
candidate counts, not absolute k.  The Init_K analogy is::

    paper Init_K:   3   18   19   20      (max clique 28)
    scaled Init_K:  3    9   10   11      (max clique 14)

The Table 1 workload runs the *full expression pipeline* (synthetic
microarray → Spearman → threshold), since Table 1 is about the
enumeration algorithms on a correlation graph; the figure workloads plant
their clique structure directly (overlapping modules + background), which
is faster to construct and gives precise control of the k-axis.

Everything is seeded and cached — repeated calls return the same object.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.graph import Graph
from repro.core.generators import overlapping_cliques
from repro.bio.coexpression import coexpression_pipeline
from repro.bio.expression import ModuleSpec, synthetic_expression

__all__ = [
    "Workload",
    "mouse_brain_sparse",
    "myogenic_like",
    "mouse_brain_dense",
    "INIT_K_MAP",
    "scaled_init_k",
]

#: paper Init_K -> scaled Init_K for the myogenic-like workload.
INIT_K_MAP = {3: 3, 18: 9, 19: 10, 20: 11}


def scaled_init_k(paper_init_k: int) -> int:
    """Map a paper Init_K label to the scaled workload's Init_K."""
    return INIT_K_MAP[paper_init_k]


@dataclass(frozen=True)
class Workload:
    """A named benchmark instance with its provenance.

    ``paper_analog`` names the paper graph this instance scales down;
    ``expected_max_clique`` is pinned by the workload tests.
    """

    name: str
    graph: Graph
    paper_analog: str
    expected_max_clique: int
    description: str


@lru_cache(maxsize=None)
def mouse_brain_sparse() -> Workload:
    """Scaled analog of the 12,422-vertex / 0.008 %-density brain graph.

    Built with the paper's own pipeline: synthetic microarray with
    planted co-expression modules, z-score normalization, Spearman rank
    correlation, density-targeted threshold.  The largest planted module
    (17 genes at rho = 0.985) becomes the maximum clique, matching the
    paper's reported maximum clique of 17 for this graph.
    """
    modules = [
        ModuleSpec(17, 0.985),
        ModuleSpec(15, 0.98),
        ModuleSpec(14, 0.98),
        ModuleSpec(12, 0.975),
        ModuleSpec(12, 0.975),
        ModuleSpec(10, 0.97),
        ModuleSpec(10, 0.97),
        ModuleSpec(9, 0.97),
        ModuleSpec(8, 0.965),
        ModuleSpec(8, 0.965),
        ModuleSpec(7, 0.96),
        ModuleSpec(6, 0.96),
    ]
    ds = synthetic_expression(
        n_genes=1242, n_conditions=64, modules=modules, seed=20050212
    )
    res = coexpression_pipeline(ds, target_density=0.0015, method="spearman")
    return Workload(
        name="mouse_brain_sparse",
        graph=res.graph,
        paper_analog="12,422 vertices / 6,151 edges (0.008%), max clique 17",
        expected_max_clique=17,
        description=(
            "1/10-scale correlation graph from the full synthetic "
            "microarray pipeline (Spearman, density-targeted threshold)"
        ),
    )


@lru_cache(maxsize=None)
def myogenic_like() -> Workload:
    """Scaled analog of the 2,895-vertex / 0.2 %-density myogenic graph.

    A chain of overlapping planted cliques (max 14 = paper's 28 halved)
    over sparse background noise, plus a population of small disjoint
    modules (sizes 5–8).  The small modules load the low enumeration
    levels only, reproducing the paper's work profile where the Init_K=3
    run costs ~20x the Init_K=20 run (1,948 s vs 98 s) while the high
    levels are untouched.  Used by the Figure 5–9 experiments.
    """
    sizes = [14, 13, 13, 12, 12, 11, 11, 10, 10, 9, 9]
    g, cliques = overlapping_cliques(
        n=724, clique_sizes=sizes, overlap=7, p=0.008, seed=20051112
    )
    chain_vertices = sum(sizes) - 7 * (len(sizes) - 1)
    cursor = chain_vertices
    for size, count in ((8, 14), (7, 34), (6, 26), (5, 30)):
        for _ in range(count):
            members = range(cursor, cursor + size)
            for i in members:
                for j in range(i + 1, cursor + size):
                    g.add_edge(i, j)
            cursor += size
    return Workload(
        name="myogenic_like",
        graph=g,
        paper_analog="2,895 vertices / 10,914 edges (0.2%), max clique 28",
        expected_max_clique=14,
        description=(
            "1/4-scale planted-module graph, k-axis halved "
            "(max clique 14 ~ paper's 28; Init_K 9/10/11 ~ 18/19/20); "
            "small modules load the low levels to the paper's work ratio"
        ),
    )


@lru_cache(maxsize=None)
def mouse_brain_dense() -> Workload:
    """Scaled analog of the dense 0.3 % brain graph (max clique 110).

    The paper reports this graph exhausted 607 GB + 404 GB before
    completion; at 1/10 scale with the k-axis divided by ~5 it is used by
    the memory-budget tests to demonstrate the same blow-up behaviour
    under a byte budget.
    """
    sizes = [22, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10]
    g, cliques = overlapping_cliques(
        n=1242, clique_sizes=sizes, overlap=9, p=0.003, seed=20051113
    )
    return Workload(
        name="mouse_brain_dense",
        graph=g,
        paper_analog="12,422 vertices / 229,297 edges (0.3%), max clique 110",
        expected_max_clique=22,
        description=(
            "1/10-scale dense analog (k-axis ~1/5); drives the "
            "memory-budget demonstration"
        ),
    )
