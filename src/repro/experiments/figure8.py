"""Figure 8: load balance of per-processor run times.

Paper: "We also plot the mean and standard deviation of the execution
time across different processors on the 2,895 vertices graph with
Init_K=18 in Figure 8 [...] the standard deviations are within 10% of the
average run times, which indicates the load are quite balanced across
multiple processors during execution.  We plot for up to only 16
processors here."

Reproduction: per-processor total busy times from the calibrated
simulation at p ∈ {2, 4, 8, 16}, with and without the dynamic load
balancer (the ablation shows what the balancer buys).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.metrics import LoadBalanceStats, load_balance_stats
from repro.parallel.parallel_enumerator import simulate_run
from repro.experiments.calibration import calibrated_spec, myogenic_trace
from repro.experiments.workloads import INIT_K_MAP
from repro.experiments.reporting import format_seconds, render_table

__all__ = ["Figure8Result", "run", "report"]

FIGURE8_PROCESSORS = (2, 4, 8, 16)
FIGURE8_INIT_K = 18  # the paper's choice


@dataclass(frozen=True)
class Figure8Result:
    """Load-balance statistics per processor count."""

    paper_init_k: int
    balanced: dict[int, LoadBalanceStats]
    unbalanced: dict[int, LoadBalanceStats]

    def max_std_over_mean(self) -> float:
        """Worst balanced-run std/mean — paper asserts <= ~10 %."""
        return max(
            (s.std_over_mean for s in self.balanced.values()), default=0.0
        )


def run(
    paper_init_k: int = FIGURE8_INIT_K,
    processor_counts: tuple[int, ...] = FIGURE8_PROCESSORS,
) -> Figure8Result:
    """Simulate per-processor busy times with/without load balancing."""
    spec = calibrated_spec()
    trace = myogenic_trace(paper_init_k)
    balanced = {}
    unbalanced = {}
    for p in processor_counts:
        balanced[p] = load_balance_stats(
            simulate_run(trace, spec.with_processors(p), balance=True)
        )
        unbalanced[p] = load_balance_stats(
            simulate_run(trace, spec.with_processors(p), balance=False)
        )
    return Figure8Result(
        paper_init_k=paper_init_k,
        balanced=balanced,
        unbalanced=unbalanced,
    )


def report(result: Figure8Result | None = None) -> str:
    """Render Figure 8 plus the no-balancer ablation."""
    r = result or run()
    rows = []
    for p in sorted(r.balanced):
        b = r.balanced[p]
        u = r.unbalanced[p]
        rows.append(
            [
                p,
                format_seconds(b.mean_busy),
                format_seconds(b.std_busy),
                f"{b.std_over_mean:.1%}",
                b.n_transfers,
                f"{u.std_over_mean:.1%}",
            ]
        )
    verdict = (
        f"max std/mean with balancing: {r.max_std_over_mean():.1%} "
        "(paper: within 10%)"
    )
    return (
        render_table(
            ["processors", "mean busy", "std busy", "std/mean (balanced)",
             "transfers", "std/mean (no balancer)"],
            rows,
            title=(
                f"Figure 8 - per-processor run-time balance, "
                f"Init_K={r.paper_init_k} "
                f"(scaled {INIT_K_MAP[r.paper_init_k]})"
            ),
        )
        + "\n"
        + verdict
    )
