"""Ablation report: the design choices behind the paper's numbers.

Not a paper artifact, but the experiments DESIGN.md commits to: each row
removes or swaps one design element of the Clique Enumerator framework
and shows the cost, quantifying the paper's qualitative arguments.

* generation by tail-list pairs (Fig. 3) vs the rejected n-bit scan;
* in-core candidate storage vs the retired out-of-core spill mode;
* dynamic load balancing on vs off (simulated, 16 processors);
* remote-access penalty sensitivity at 256 processors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import EnumerationConfig, EnumerationEngine
from repro.parallel.machine import MachineSpec
from repro.parallel.metrics import load_balance_stats
from repro.parallel.parallel_enumerator import simulate_run
from repro.experiments.calibration import calibrated_spec, myogenic_trace
from repro.experiments.reporting import (
    format_bytes,
    format_seconds,
    render_table,
)
from repro.experiments.workloads import Workload, myogenic_like

__all__ = ["AblationResult", "run", "report"]


@dataclass(frozen=True)
class AblationResult:
    """All ablation measurements for one workload."""

    workload: str
    list_seconds: float
    bitscan_seconds: float
    bitscan_bits: int
    list_pair_checks: int
    in_core_seconds: float
    ooc_seconds: float
    ooc_bytes: int
    balanced_16p: float
    unbalanced_16p: float
    penalty_series: dict[float, float]


def run(workload: Workload | None = None) -> AblationResult:
    """Measure every ablation on the (default myogenic) workload.

    Generation variants and storage substrates are all engine backends
    now, so each ablation row is the same
    :meth:`~repro.engine.EnumerationEngine.run` call with a different
    backend name — the comparison measures exactly the substrate.
    """
    w = workload or myogenic_like()
    g = w.graph
    engine = EnumerationEngine()

    list_res = engine.run(g, EnumerationConfig(backend="incore", k_min=2))
    scan_res = engine.run(g, EnumerationConfig(backend="bitscan", k_min=2))

    in_core = engine.run(g, EnumerationConfig(backend="incore", k_min=3))
    ooc = engine.run(g, EnumerationConfig(backend="ooc", k_min=3))

    spec = calibrated_spec()
    trace = myogenic_trace(18)
    balanced = simulate_run(trace, spec.with_processors(16), balance=True)
    unbalanced = simulate_run(
        trace, spec.with_processors(16), balance=False
    )
    penalties = {}
    for pen in (1.0, 1.3, 2.0, 4.0):
        custom = MachineSpec(
            n_processors=256,
            seconds_per_work_unit=spec.seconds_per_work_unit,
            remote_access_penalty=pen,
            sync_base_seconds=spec.sync_base_seconds,
            sync_seconds_per_processor=spec.sync_seconds_per_processor,
        )
        penalties[pen] = simulate_run(
            trace, custom, balance=True
        ).elapsed_seconds
    return AblationResult(
        workload=w.name,
        list_seconds=list_res.wall_seconds,
        bitscan_seconds=scan_res.wall_seconds,
        bitscan_bits=scan_res.counters.extra.get("bits_scanned", 0),
        list_pair_checks=list_res.counters.pair_checks,
        in_core_seconds=in_core.wall_seconds,
        ooc_seconds=ooc.wall_seconds,
        ooc_bytes=ooc.io.total_bytes,
        balanced_16p=load_balance_stats(balanced).std_over_mean,
        unbalanced_16p=load_balance_stats(unbalanced).std_over_mean,
        penalty_series=penalties,
    )


def report(result: AblationResult | None = None) -> str:
    """Render the ablation table."""
    r = result or run()
    rows = [
        [
            "generation: tail-list pairs (paper)",
            format_seconds(r.list_seconds),
            f"{r.list_pair_checks:,} pair checks",
        ],
        [
            "generation: n-bit scan (rejected)",
            format_seconds(r.bitscan_seconds),
            f"{r.bitscan_bits:,} bits scanned",
        ],
        [
            "storage: in-core candidates (paper)",
            format_seconds(r.in_core_seconds),
            "no disk traffic",
        ],
        [
            "storage: out-of-core spill (retired)",
            format_seconds(r.ooc_seconds),
            f"{format_bytes(r.ooc_bytes)} disk traffic",
        ],
        [
            "balancing on, 16p (std/mean)",
            f"{r.balanced_16p:.2%}",
            "simulated Altix",
        ],
        [
            "balancing off, 16p (std/mean)",
            f"{r.unbalanced_16p:.2%}",
            "simulated Altix",
        ],
    ]
    for pen, secs in sorted(r.penalty_series.items()):
        rows.append(
            [
                f"remote penalty {pen}x, 256p",
                format_seconds(secs),
                "virtual wall-clock",
            ]
        )
    return render_table(
        ["configuration", "cost", "notes"],
        rows,
        title=f"Ablations on {r.workload}",
    )
