"""Figure 5: parallel run time vs processor count per Init_K.

Paper: "Run times of the multithreaded implementation with load balancing
to enumerate maximal cliques from different initial size (Init_K) on the
2,895 vertices graph using up to 256 processors on an SGI Altix 3700.
[...] the run times scale well for up to 64 processors, and still scale
when using 128 processors, though the performance degrades a little when
256 processors are used.  [...] when the initial clique size increases by
one, the run times decrease by almost half."

Reproduction: the scaled myogenic workload's traces (Init_K analogs
9/10/11 for the paper's 18/19/20) replayed on the calibrated simulated
Altix at 1–256 processors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.parallel_enumerator import (
    SimulatedRun,
    simulate_processor_sweep,
)
from repro.experiments.calibration import calibrated_spec, myogenic_trace
from repro.experiments.workloads import INIT_K_MAP
from repro.experiments.reporting import format_seconds, render_table

__all__ = ["Figure5Result", "PROCESSOR_COUNTS", "run", "report"]

PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
#: Figure 5 plots these paper Init_K series.
FIGURE5_INIT_KS = (18, 19, 20)


@dataclass(frozen=True)
class Figure5Result:
    """Run-time series per paper Init_K label."""

    processor_counts: tuple[int, ...]
    runs: dict[int, dict[int, SimulatedRun]]
    """paper Init_K -> processor count -> run."""

    def seconds(self, paper_init_k: int, p: int) -> float:
        return self.runs[paper_init_k][p].elapsed_seconds


def run(
    init_ks: tuple[int, ...] = FIGURE5_INIT_KS,
    processor_counts: tuple[int, ...] = PROCESSOR_COUNTS,
) -> Figure5Result:
    """Replay the cached traces across the processor sweep."""
    spec = calibrated_spec()
    runs: dict[int, dict[int, SimulatedRun]] = {}
    for paper_k in init_ks:
        trace = myogenic_trace(paper_k)
        runs[paper_k] = simulate_processor_sweep(
            trace, spec, list(processor_counts), balance=True
        )
    return Figure5Result(
        processor_counts=tuple(processor_counts), runs=runs
    )


def report(result: Figure5Result | None = None) -> str:
    """Render the Figure 5 series as a table (processors x Init_K)."""
    r = result or run()
    init_ks = sorted(r.runs)
    headers = ["processors"] + [
        f"Init_K={k} (scaled {INIT_K_MAP[k]})" for k in init_ks
    ]
    rows = []
    for p in r.processor_counts:
        rows.append(
            [p] + [format_seconds(r.seconds(k, p)) for k in init_ks]
        )
    return render_table(
        headers,
        rows,
        title=(
            "Figure 5 - run time vs processors, myogenic-like workload "
            "(simulated Altix, virtual seconds calibrated to the paper's "
            "sequential axis)"
        ),
    )
