"""Shared traces and machine calibration for the figure experiments.

Figures 5–8 all replay the same myogenic-like traces on the simulated
Altix.  Recording a trace costs one real enumeration, so traces are
cached per Init_K; the machine's ``seconds_per_work_unit`` is calibrated
so the *sequential virtual time of the scaled Init_K=11 run equals the
paper's Init_K=20 sequential time (98 s)* — a pure unit choice that
anchors the virtual clock to the paper's axis without touching any shape
(all shapes are ratios of work and overhead).

The synchronization constants are fixed (not fitted per figure): they are
chosen once so that 256 processors sit in the paper's
sync-latency-dominated regime while 64 processors do not, which is the
qualitative behaviour the paper reports.
"""

from __future__ import annotations

from functools import lru_cache

from repro.parallel.machine import MachineSpec
from repro.parallel.parallel_enumerator import EnumerationTrace, record_trace
from repro.experiments.workloads import myogenic_like, INIT_K_MAP

__all__ = [
    "PAPER_INIT_KS",
    "PAPER_SEQ_SECONDS",
    "myogenic_trace",
    "calibrated_spec",
]

#: The paper's Figure 5/6/7 Init_K labels, in presentation order.
PAPER_INIT_KS = (18, 19, 20, 3)

#: Paper-reported sequential run times (seconds) per Init_K (Figure 7).
PAPER_SEQ_SECONDS = {20: 98.0, 19: 191.0, 18: 343.0, 3: 1948.0}


@lru_cache(maxsize=None)
def myogenic_trace(paper_init_k: int) -> EnumerationTrace:
    """The cached work trace for a paper Init_K label (scaled k applied)."""
    scaled = INIT_K_MAP[paper_init_k]
    return record_trace(myogenic_like().graph, k_min=scaled)


@lru_cache(maxsize=None)
def calibrated_spec() -> MachineSpec:
    """MachineSpec whose virtual clock is anchored to the paper's axis.

    ``seconds_per_work_unit`` maps the scaled Init_K=20-analog run to
    98 virtual seconds on one processor; synchronization costs are fixed
    constants (see module docstring).
    """
    anchor = myogenic_trace(20)
    total = anchor.total_work()
    spu = PAPER_SEQ_SECONDS[20] / max(1, total)
    return MachineSpec(
        n_processors=1,
        seconds_per_work_unit=spu,
        remote_access_penalty=1.3,
        sync_base_seconds=5.0e-3,
        sync_seconds_per_processor=3.5e-3,
        name="SGI Altix 3700 (simulated, paper-calibrated)",
    )
