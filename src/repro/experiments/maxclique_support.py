"""Support experiment: maximum clique sizes of the evaluation graphs.

Paper (Section 3): "Applying Clique Enumerator to these graphs, we found
the maximum clique size to be 17, 110, and 28 for each graph,
respectively."  Maximum clique is the upper bound that closes the
enumeration range (Section 2.1).

Reproduction: exact maximum clique on each scaled workload, checked
against its pinned expectation (17 for the sparse brain analog; 22 and 14
for the k-axis-scaled dense/myogenic analogs — DESIGN.md documents the
scaling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.maximum_clique import maximum_clique
from repro.experiments.workloads import (
    Workload,
    mouse_brain_dense,
    mouse_brain_sparse,
    myogenic_like,
)
from repro.experiments.reporting import render_table

__all__ = ["MaxCliqueRow", "run", "report"]

#: paper-reported maximum clique per graph analog.
PAPER_MAX = {
    "mouse_brain_sparse": 17,
    "mouse_brain_dense": 110,
    "myogenic_like": 28,
}


@dataclass(frozen=True)
class MaxCliqueRow:
    """Measured maximum clique of one workload."""

    workload: str
    n_vertices: int
    density: float
    measured: int
    expected_scaled: int
    paper_value: int

    @property
    def matches(self) -> bool:
        return self.measured == self.expected_scaled


def run(workloads: list[Workload] | None = None) -> list[MaxCliqueRow]:
    """Solve maximum clique exactly on every workload."""
    ws = workloads or [
        mouse_brain_sparse(),
        myogenic_like(),
        mouse_brain_dense(),
    ]
    rows = []
    for w in ws:
        clique = maximum_clique(w.graph)
        rows.append(
            MaxCliqueRow(
                workload=w.name,
                n_vertices=w.graph.n,
                density=w.graph.density(),
                measured=len(clique),
                expected_scaled=w.expected_max_clique,
                paper_value=PAPER_MAX.get(w.name, -1),
            )
        )
    return rows


def report(rows: list[MaxCliqueRow] | None = None) -> str:
    """Render measured vs expected (scaled) vs paper values."""
    rs = rows or run()
    table = [
        [
            r.workload,
            r.n_vertices,
            f"{r.density:.3%}",
            r.measured,
            r.expected_scaled,
            r.paper_value,
            "yes" if r.matches else "NO",
        ]
        for r in rs
    ]
    return render_table(
        ["workload", "vertices", "density", "max clique (measured)",
         "expected (scaled)", "paper (full scale)", "match"],
        table,
        title="Maximum clique sizes of the evaluation graphs "
              "(paper: 17 / 110 / 28)",
    )
