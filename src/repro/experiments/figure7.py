"""Figure 7: 256-processor speedup grows with sequential run time.

Paper: "the absolute speedup for 256 processors increases when the
sequential run time increases.  The speedup will go up from 22 to 51 when
the sequential run time increases from 98 seconds for Init_K=20 to 1,948
seconds for Init_K=3.  [...] various problem sizes with different
execution times have their optimal number of processors."

Reproduction: for each paper Init_K the calibrated simulation's T(1) and
T(256); the assertion is monotonicity — larger sequential time ⇒ larger
256-processor speedup — driven by fixed synchronization overhead
amortising over more work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.parallel_enumerator import simulate_run
from repro.experiments.calibration import (
    PAPER_SEQ_SECONDS,
    calibrated_spec,
    myogenic_trace,
)
from repro.experiments.workloads import INIT_K_MAP
from repro.experiments.reporting import format_seconds, render_table

__all__ = ["Figure7Row", "Figure7Result", "run", "report"]

FIGURE7_INIT_KS = (20, 19, 18, 3)  # paper order: ascending T_seq
PAPER_SPEEDUP_256 = {20: 22.0, 3: 51.0}


@dataclass(frozen=True)
class Figure7Row:
    """One Init_K point of Figure 7."""

    paper_init_k: int
    scaled_init_k: int
    sequential_seconds: float
    parallel_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return float("inf")
        return self.sequential_seconds / self.parallel_seconds


@dataclass(frozen=True)
class Figure7Result:
    """All Figure 7 rows, ordered by ascending sequential time."""

    rows: list[Figure7Row]

    def is_monotone(self) -> bool:
        """The figure's claim: speedup increases with sequential time."""
        ordered = sorted(self.rows, key=lambda r: r.sequential_seconds)
        speedups = [r.speedup for r in ordered]
        return all(a <= b * 1.001 for a, b in zip(speedups, speedups[1:]))


def run(init_ks: tuple[int, ...] = FIGURE7_INIT_KS) -> Figure7Result:
    """Simulate T(1) and T(256) per Init_K on the calibrated machine."""
    spec = calibrated_spec()
    rows = []
    for paper_k in init_ks:
        trace = myogenic_trace(paper_k)
        t1 = simulate_run(trace, spec.with_processors(1), balance=True)
        t256 = simulate_run(trace, spec.with_processors(256), balance=True)
        rows.append(
            Figure7Row(
                paper_init_k=paper_k,
                scaled_init_k=INIT_K_MAP[paper_k],
                sequential_seconds=t1.elapsed_seconds,
                parallel_seconds=t256.elapsed_seconds,
            )
        )
    rows.sort(key=lambda r: r.sequential_seconds)
    return Figure7Result(rows=rows)


def report(result: Figure7Result | None = None) -> str:
    """Render Figure 7 with the paper's reference points."""
    r = result or run()
    table_rows = []
    for row in r.rows:
        paper_seq = PAPER_SEQ_SECONDS.get(row.paper_init_k)
        paper_sp = PAPER_SPEEDUP_256.get(row.paper_init_k)
        table_rows.append(
            [
                f"Init_K={row.paper_init_k} (scaled {row.scaled_init_k})",
                format_seconds(row.sequential_seconds),
                format_seconds(row.parallel_seconds),
                f"{row.speedup:.1f}x",
                format_seconds(paper_seq) if paper_seq else "-",
                f"{paper_sp:.0f}x" if paper_sp else "-",
            ]
        )
    verdict = (
        "speedup increases with sequential run time: "
        + ("yes (matches paper)" if r.is_monotone() else "NO")
    )
    return (
        render_table(
            ["series", "T(1) simulated", "T(256) simulated",
             "speedup(256)", "paper T(1)", "paper speedup(256)"],
            table_rows,
            title="Figure 7 - 256-processor absolute speedup vs "
                  "sequential run time",
        )
        + "\n"
        + verdict
    )
