"""Plain-text table rendering for experiment reports.

Every experiment module renders its result through :func:`render_table`
so the regenerated rows/series look like the paper's tables and can be
diffed between runs.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_seconds", "format_bytes"]


def format_seconds(s: float) -> str:
    """Compact human-readable duration."""
    if s >= 100:
        return f"{s:,.0f} s"
    if s >= 1:
        return f"{s:.2f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f} ms"
    return f"{s * 1e6:.1f} us"


def format_bytes(b: float) -> str:
    """Compact human-readable byte count."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(b) < 1024 or unit == "TB":
            return f"{b:,.1f} {unit}" if unit != "B" else f"{b:,.0f} B"
        b /= 1024
    return f"{b:,.1f} TB"  # pragma: no cover


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; floats the caller wants formatted
    should be pre-formatted.  Columns are left-aligned for text, right-
    aligned for numerics (detected per column from the data).
    """
    cells = [[str(c) for c in row] for row in rows]
    head = [str(h) for h in headers]
    n_cols = len(head)
    for row in cells:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {n_cols}: {row}"
            )
    widths = [
        max(len(head[j]), *(len(r[j]) for r in cells)) if cells
        else len(head[j])
        for j in range(n_cols)
    ]

    def _numeric(col: int) -> bool:
        for r in cells:
            text = r[col].replace(",", "").replace("%", "")
            text = text.removesuffix(" s").removesuffix(" ms")
            text = text.removesuffix(" us").removesuffix(" GB")
            text = text.removesuffix(" MB").removesuffix(" KB")
            text = text.removesuffix(" B").removesuffix("x")
            try:
                float(text)
            except ValueError:
                return False
        return bool(cells)

    aligns = [_numeric(j) for j in range(n_cols)]

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(row):
            parts.append(
                cell.rjust(widths[j]) if aligns[j] else cell.ljust(widths[j])
            )
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(fmt_row(head))
    out.append(sep)
    for row in cells:
        out.append(fmt_row(row))
    out.append(sep)
    return "\n".join(out)
