"""Figure 9: candidate memory vs clique size.

Paper: "the memory used to keep all cliques of different sizes during the
procedure of clique enumeration on the graph with 2,895 vertices.  The
memory usage first increases with clique size and goes up to almost 20 GB
when clique size reaches 13, then it begins to drop quickly."  (And for
the denser 12,422-vertex graph, 607 GB + 404 GB before termination.)

Reproduction: the measured candidate-storage bytes per level on the
scaled myogenic workload enumerated from Init_K=3 (k-axis halved, so the
paper's peak at 13 of 28 corresponds to a peak near 7 of 14), alongside
the paper's own space formula
``M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + pointers``.

The paper closes by noting the sparse bitmap index "can potentially
provide high compression rate"; :func:`compare_stores` /
:func:`report_stores` measure exactly that — the same series on all
three :data:`~repro.engine.config.LEVEL_STORES` substrates side by
side, with the WAH store's per-level compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory_model import MemoryProfile, memory_profile
from repro.engine import (
    LEVEL_STORES,
    EnumerationConfig,
    get_backend,
    run_enumeration,
)
from repro.experiments.workloads import Workload, myogenic_like
from repro.experiments.reporting import format_bytes, render_table

__all__ = [
    "Figure9Result",
    "run",
    "report",
    "compare_stores",
    "report_stores",
    "compare_domains",
    "report_domains",
]

#: Paper reference: peak near clique size 13 (of max 28).
PAPER_PEAK_K = 13
PAPER_MAX_CLIQUE = 28


@dataclass(frozen=True)
class Figure9Result:
    """Memory series of one full enumeration."""

    workload: str
    max_clique: int
    profile: MemoryProfile
    level_store: str = "memory"

    def peak_fraction(self) -> float:
        """Peak position as a fraction of the maximum clique size."""
        peak_k, _ = self.profile.peak()
        return peak_k / self.max_clique if self.max_clique else 0.0


def run(
    workload: Workload | None = None,
    backend: str = "incore",
    level_store: str | None = None,
) -> Figure9Result:
    """Enumerate from k=3 and collect the per-level memory series.

    Any store-based :mod:`repro.engine` backend works — the level loop
    records the same ``N[k]``/``M[k]``
    :class:`~repro.core.clique_enumerator.LevelStats` whatever the
    substrate, while ``candidate_bytes`` measures what the chosen
    ``level_store`` actually holds (compressed bytes for ``"wah"``).
    """
    w = workload or myogenic_like()
    res = run_enumeration(
        w.graph,
        EnumerationConfig(
            backend=backend, k_min=3, level_store=level_store
        ),
    )
    return Figure9Result(
        workload=w.name,
        max_clique=res.max_clique_size(),
        profile=memory_profile(res.level_stats),
        # None means the backend's default substrate (disk for ooc)
        level_store=level_store or get_backend(backend).storage,
    )


def compare_stores(
    workload: Workload | None = None,
    backend: str = "incore",
    stores: tuple[str, ...] = LEVEL_STORES,
) -> dict[str, Figure9Result]:
    """The Figure 9 series on every level-store substrate.

    Returns ``{store_name: Figure9Result}`` for the same workload and
    backend, so the measured ``candidate_bytes`` are directly
    comparable level by level.
    """
    w = workload or myogenic_like()
    return {
        store: run(w, backend=backend, level_store=store)
        for store in stores
    }


def compare_domains(
    workload: Workload | None = None, backend: str = "incore"
):
    """The WAH level store on both compute domains, same workload.

    Returns ``{"bitset": EnumerationResult, "wah": EnumerationResult}``
    — the PR-3 at-rest path (compress at rest, decompress every chunk
    for expansion) against the compressed-domain path (the AND kernels
    run on the WAH words, nothing round-trips).  Cliques, level stats,
    and counters are byte-identical by construction; what differs is
    the codec traffic reported in ``result.domain_stats``.
    """
    w = workload or myogenic_like()
    out = {}
    for domain in ("bitset", "wah"):
        out[domain] = run_enumeration(
            w.graph,
            EnumerationConfig(
                backend=backend,
                k_min=3,
                level_store="wah",
                compute_domain=domain,
            ),
        )
    return out


def report_domains(
    workload: Workload | None = None, backend: str = "incore"
) -> str:
    """Render the at-rest vs compressed-domain codec traffic."""
    w = workload or myogenic_like()
    results = compare_domains(w, backend=backend)
    assert (
        results["bitset"].cliques == results["wah"].cliques
    ), "compute domains diverged — the equivalence contract is broken"
    rows = []
    for domain, res in results.items():
        stats = res.domain_stats
        rows.append([
            domain,
            format_bytes(res.peak_candidate_bytes()),
            format_bytes(stats.get("decompressed_bytes", 0)),
            format_bytes(stats.get("decompressed_bytes_avoided", 0)),
            stats.get("kernel_ands", 0),
            stats.get("kernel_word_ops", 0),
        ])
    at_rest = results["bitset"].domain_stats.get("decompressed_bytes", 0)
    in_domain = results["wah"].domain_stats.get("decompressed_bytes", 0)
    note = (
        f"generation-step decompression {format_bytes(at_rest)} -> "
        f"{format_bytes(in_domain)}"
        + (
            f" ({at_rest / in_domain:.1f}x less)"
            if in_domain
            else " (eliminated)"
        )
        + f"; {len(results['wah'].cliques)} cliques byte-identical"
    )
    return (
        render_table(
            ["compute domain", "peak candidate bytes",
             "decompressed bytes", "decompressed avoided",
             "kernel ANDs", "kernel word ops"],
            rows,
            title=(
                f"Figure 9 - WAH store by compute domain "
                f"({w.name}, backend={backend})"
            ),
        )
        + "\n"
        + note
    )


def report(
    result: Figure9Result | None = None, backend: str = "incore"
) -> str:
    """Render the Figure 9 series with a text bar per level."""
    r = result or run(backend=backend)
    prof = r.profile
    peak_bytes = max(prof.measured_bytes) if prof.measured_bytes else 1
    rows = []
    for k, measured, formula, m_cand, n_sub in zip(
        prof.sizes, prof.measured_bytes, prof.formula_bytes,
        prof.candidates, prof.sublists,
    ):
        bar = "#" * max(
            0, round(30 * measured / peak_bytes) if peak_bytes else 0
        )
        rows.append(
            [k, n_sub, m_cand, format_bytes(measured),
             format_bytes(formula), bar]
        )
    peak_k, peak_b = prof.peak()
    note = (
        f"peak at clique size {peak_k} of {r.max_clique} "
        f"({r.peak_fraction():.0%} of max; paper: {PAPER_PEAK_K} of "
        f"{PAPER_MAX_CLIQUE} = {PAPER_PEAK_K / PAPER_MAX_CLIQUE:.0%}), "
        f"peak candidate storage {format_bytes(peak_b)}"
    )
    return (
        render_table(
            ["clique size k", "N[k] sub-lists", "M[k] candidates",
             "measured bytes", "paper-formula bytes", "profile"],
            rows,
            title=(
                f"Figure 9 - candidate memory by clique size "
                f"({r.workload}, rise-peak-fall)"
            ),
        )
        + "\n"
        + note
    )


def report_stores(
    workload: Workload | None = None,
    backend: str = "incore",
    stores: tuple[str, ...] = LEVEL_STORES,
) -> str:
    """Render the per-level candidate bytes of every substrate side by
    side, with the WAH store's compression ratio per level."""
    results = compare_stores(workload, backend=backend, stores=stores)
    first = next(iter(results.values())).profile
    rows = []
    for i, k in enumerate(first.sizes):
        row: list = [
            k, first.sublists[i], first.candidates[i],
        ]
        for store in stores:
            row.append(
                format_bytes(results[store].profile.measured_bytes[i])
            )
        if "memory" in results and "wah" in results:
            mem_b = results["memory"].profile.measured_bytes[i]
            wah_b = results["wah"].profile.measured_bytes[i]
            row.append(f"{mem_b / wah_b:.2f}x" if wah_b else "-")
        rows.append(row)
    headers = ["clique size k", "N[k]", "M[k]"] + [
        f"{store} bytes" for store in stores
    ]
    if "memory" in results and "wah" in results:
        headers.append("wah ratio")
    notes = []
    for store in stores:
        peak_k, peak_b = results[store].profile.peak()
        notes.append(f"{store}: peak {format_bytes(peak_b)} at k={peak_k}")
    if "memory" in results and "wah" in results:
        _, mem_peak = results["memory"].profile.peak()
        _, wah_peak = results["wah"].profile.peak()
        if wah_peak:
            notes.append(
                f"peak reduction {mem_peak / wah_peak:.2f}x "
                "(WAH-compressed candidates)"
            )
    workload_name = next(iter(results.values())).workload
    return (
        render_table(
            headers,
            rows,
            title=(
                f"Figure 9 - candidate memory by level store "
                f"({workload_name}, backend={backend})"
            ),
        )
        + "\n"
        + "; ".join(notes)
    )
