"""Figure 9: candidate memory vs clique size.

Paper: "the memory used to keep all cliques of different sizes during the
procedure of clique enumeration on the graph with 2,895 vertices.  The
memory usage first increases with clique size and goes up to almost 20 GB
when clique size reaches 13, then it begins to drop quickly."  (And for
the denser 12,422-vertex graph, 607 GB + 404 GB before termination.)

Reproduction: the measured candidate-storage bytes per level on the
scaled myogenic workload enumerated from Init_K=3 (k-axis halved, so the
paper's peak at 13 of 28 corresponds to a peak near 7 of 14), alongside
the paper's own space formula
``M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + pointers``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.memory_model import MemoryProfile, memory_profile
from repro.engine import EnumerationConfig, run_enumeration
from repro.experiments.workloads import Workload, myogenic_like
from repro.experiments.reporting import format_bytes, render_table

__all__ = ["Figure9Result", "run", "report"]

#: Paper reference: peak near clique size 13 (of max 28).
PAPER_PEAK_K = 13
PAPER_MAX_CLIQUE = 28


@dataclass(frozen=True)
class Figure9Result:
    """Memory series of one full enumeration."""

    workload: str
    max_clique: int
    profile: MemoryProfile

    def peak_fraction(self) -> float:
        """Peak position as a fraction of the maximum clique size."""
        peak_k, _ = self.profile.peak()
        return peak_k / self.max_clique if self.max_clique else 0.0


def run(
    workload: Workload | None = None, backend: str = "incore"
) -> Figure9Result:
    """Enumerate from k=3 and collect the per-level memory series.

    Any store-based :mod:`repro.engine` backend works — the level loop
    records identical :class:`~repro.core.clique_enumerator.LevelStats`
    whether candidates live in memory or on disk.
    """
    w = workload or myogenic_like()
    res = run_enumeration(
        w.graph, EnumerationConfig(backend=backend, k_min=3)
    )
    return Figure9Result(
        workload=w.name,
        max_clique=res.max_clique_size(),
        profile=memory_profile(res.level_stats),
    )


def report(
    result: Figure9Result | None = None, backend: str = "incore"
) -> str:
    """Render the Figure 9 series with a text bar per level."""
    r = result or run(backend=backend)
    prof = r.profile
    peak_bytes = max(prof.measured_bytes) if prof.measured_bytes else 1
    rows = []
    for k, measured, formula, m_cand, n_sub in zip(
        prof.sizes, prof.measured_bytes, prof.formula_bytes,
        prof.candidates, prof.sublists,
    ):
        bar = "#" * max(
            0, round(30 * measured / peak_bytes) if peak_bytes else 0
        )
        rows.append(
            [k, n_sub, m_cand, format_bytes(measured),
             format_bytes(formula), bar]
        )
    peak_k, peak_b = prof.peak()
    note = (
        f"peak at clique size {peak_k} of {r.max_clique} "
        f"({r.peak_fraction():.0%} of max; paper: {PAPER_PEAK_K} of "
        f"{PAPER_MAX_CLIQUE} = {PAPER_PEAK_K / PAPER_MAX_CLIQUE:.0%}), "
        f"peak candidate storage {format_bytes(peak_b)}"
    )
    return (
        render_table(
            ["clique size k", "N[k] sub-lists", "M[k] candidates",
             "measured bytes", "paper-formula bytes", "profile"],
            rows,
            title=(
                f"Figure 9 - candidate memory by clique size "
                f"({r.workload}, rise-peak-fall)"
            ),
        )
        + "\n"
        + note
    )
