"""Command-line driver regenerating every table and figure.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner table1 figure9
    python -m repro.experiments.runner table1 --backend ooc

Each experiment prints its report; ``all`` (default) runs them in paper
order.  Regeneration is deterministic: workloads and traces are seeded
and cached.  ``--backend`` reruns the backend-aware experiments (those
that enumerate through :mod:`repro.engine`) on a different substrate.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.engine import backend_table
from repro.experiments import (
    ablations,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    maxclique_support,
    table1,
)

__all__ = ["EXPERIMENTS", "BACKEND_AWARE", "main"]

EXPERIMENTS = {
    "table1": table1.report,
    "maxclique": maxclique_support.report,
    "figure5": figure5.report,
    "figure6": figure6.report,
    "figure7": figure7.report,
    "figure8": figure8.report,
    "figure9": figure9.report,
    "figure9_stores": figure9.report_stores,
    "figure9_domains": figure9.report_domains,
    "ablations": ablations.report,
}

#: experiments whose report() accepts a `backend` keyword.
BACKEND_AWARE = frozenset(
    {"table1", "figure9", "figure9_stores", "figure9_domains"}
)


def _store_backends() -> list[str]:
    """Backends usable for the experiments: those that record the
    per-level statistics the figures are built from (the parallel pool
    aggregates across workers and keeps none)."""
    return [info.name for info in backend_table() if not info.parallel]


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their reports."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"one or more of: all, {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--backend",
        default="incore",
        choices=_store_backends(),
        metavar="NAME",
        help=(
            "enumeration backend for the backend-aware experiments "
            f"({', '.join(sorted(BACKEND_AWARE))}); limited to backends "
            "that record per-level statistics; choices: %(choices)s"
        ),
    )
    args = parser.parse_args(argv)
    names = args.experiments
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from: all, {', '.join(EXPERIMENTS)}"
        )
    for name in names:
        t0 = time.perf_counter()
        print(f"\n=== {name} " + "=" * max(0, 66 - len(name)))
        if name in BACKEND_AWARE:
            print(EXPERIMENTS[name](backend=args.backend))
        else:
            print(EXPERIMENTS[name]())
        print(f"[{name} regenerated in {time.perf_counter() - t0:.1f} s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
