"""repro — reproduction of Zhang et al., SC 2005.

"Genome-Scale Computational Approaches to Memory-Intensive Applications in
Systems Biology": exact, parallel, scalable maximal-clique enumeration for
biological network analysis, built on bitmap memory indices, plus the
systems-biology substrates the paper's framework targets.

Quickstart
----------
>>> from repro import Graph, enumerate_maximal_cliques
>>> g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
>>> sorted(enumerate_maximal_cliques(g).cliques)
[(0, 1, 2), (2, 3), (3, 4)]

Subpackages
-----------
:mod:`repro.core`
    The Clique Enumerator, baselines, maximum clique / vertex cover, and
    the bitmap data structures.
:mod:`repro.engine`
    The pluggable enumeration engine: a backend registry (``incore``,
    ``bitscan``, ``ooc``, ``multiprocess``) behind one configuration
    and result type.
:mod:`repro.parallel`
    The simulated large-shared-memory machine (SGI Altix stand-in), the
    centralised dynamic load balancer, and a real multiprocessing backend.
:mod:`repro.bio`
    Microarray expression pipeline, metabolic extreme pathways, PPI
    cleaning, pathway alignment, feedback vertex set, sequence alignment.
:mod:`repro.experiments`
    One module per paper table/figure, regenerating its rows/series.
"""

from repro._version import __version__
from repro.errors import (
    AlignmentError,
    BitSetError,
    BudgetExceeded,
    GraphError,
    ParameterError,
    ParseError,
    ReproError,
    SolverError,
)
from repro.core import (
    BitSet,
    Graph,
    WahBitmap,
    enumerate_k_cliques,
    enumerate_maximal_cliques,
    kose_enumerate,
    maximum_clique,
    maximum_clique_size,
    minimum_vertex_cover,
    paraclique,
)
from repro.engine import (
    EnumerationConfig,
    EnumerationEngine,
    available_backends,
    run_enumeration,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "BitSetError",
    "ParseError",
    "ParameterError",
    "BudgetExceeded",
    "SolverError",
    "AlignmentError",
    "BitSet",
    "WahBitmap",
    "Graph",
    "enumerate_maximal_cliques",
    "enumerate_k_cliques",
    "kose_enumerate",
    "maximum_clique",
    "maximum_clique_size",
    "minimum_vertex_cover",
    "paraclique",
    "EnumerationConfig",
    "EnumerationEngine",
    "available_backends",
    "run_enumeration",
]
