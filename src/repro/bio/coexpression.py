"""Expression-to-graph pipeline (the paper's Section 3 workload).

Chains the paper's three steps — normalization, pairwise rank correlation,
threshold filtering — into a gene co-expression :class:`~repro.core.graph.
Graph` whose maximal cliques are the "pure functional units" the Clique
Enumerator extracts.  :func:`coexpression_cliques` runs the full chain
through any :mod:`repro.engine` backend, so the same pipeline scales
from an in-memory run to disk-spilled or multiprocess enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.core.clique_enumerator import EnumerationResult
from repro.core.graph import Graph
from repro.engine import EnumerationConfig, run_enumeration
from repro.bio.correlation import pearson_correlation, spearman_correlation
from repro.bio.expression import ExpressionDataSet, zscore_normalize

__all__ = [
    "CoexpressionResult",
    "correlation_graph",
    "threshold_for_density",
    "coexpression_pipeline",
    "coexpression_cliques",
]


def correlation_graph(
    corr: np.ndarray, threshold: float, absolute: bool = True
) -> Graph:
    """Threshold a correlation matrix into an unweighted graph.

    An edge joins genes ``i != j`` when ``|corr[i, j]| >= threshold``
    (signed comparison when ``absolute=False``).  The input must be a
    square symmetric matrix.
    """
    c = np.asarray(corr, dtype=np.float64)
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ParameterError(
            f"correlation matrix must be square, got {c.shape}"
        )
    if not np.allclose(c, c.T, atol=1e-10):
        raise ParameterError("correlation matrix must be symmetric")
    vals = np.abs(c) if absolute else c
    mask = vals >= threshold
    np.fill_diagonal(mask, False)
    g = Graph(c.shape[0])
    ui, vi = np.nonzero(np.triu(mask, k=1))
    for u, v in zip(ui.tolist(), vi.tolist()):
        g.add_edge(u, v)
    return g


def threshold_for_density(
    corr: np.ndarray, target_density: float, absolute: bool = True
) -> float:
    """Threshold giving (approximately) the requested edge density.

    The paper tunes thresholds to reach densities like 0.008%–0.3%; this
    helper inverts that choice: the returned value keeps the top
    ``target_density`` fraction of off-diagonal pairs.
    """
    if not 0.0 < target_density <= 1.0:
        raise ParameterError(
            f"target density must be in (0, 1], got {target_density}"
        )
    c = np.asarray(corr, dtype=np.float64)
    iu = np.triu_indices(c.shape[0], k=1)
    vals = np.abs(c[iu]) if absolute else c[iu]
    if vals.size == 0:
        return 1.0
    return float(np.quantile(vals, 1.0 - target_density))


@dataclass
class CoexpressionResult:
    """Pipeline output: the graph plus the matrices that produced it."""

    graph: Graph
    correlation: np.ndarray
    threshold: float
    method: str


def coexpression_pipeline(
    dataset: ExpressionDataSet,
    threshold: float | None = None,
    target_density: float | None = None,
    method: str = "spearman",
    normalize: bool = True,
) -> CoexpressionResult:
    """Run normalization → correlation → threshold → graph.

    Exactly one of ``threshold`` (absolute cutoff) and ``target_density``
    (inverted to a cutoff via :func:`threshold_for_density`) must be
    given.  ``method`` is ``"spearman"`` (the paper's rank coefficient) or
    ``"pearson"``.
    """
    if (threshold is None) == (target_density is None):
        raise ParameterError(
            "give exactly one of threshold / target_density"
        )
    if method not in ("spearman", "pearson"):
        raise ParameterError(
            f"method must be 'spearman' or 'pearson', got {method!r}"
        )
    matrix = dataset.matrix
    if normalize:
        matrix = zscore_normalize(matrix, axis=1)
    corr = (
        spearman_correlation(matrix)
        if method == "spearman"
        else pearson_correlation(matrix)
    )
    if threshold is None:
        threshold = threshold_for_density(corr, target_density)
    graph = correlation_graph(corr, threshold)
    return CoexpressionResult(
        graph=graph, correlation=corr, threshold=threshold, method=method
    )


def coexpression_cliques(
    dataset: ExpressionDataSet,
    threshold: float | None = None,
    target_density: float | None = None,
    method: str = "spearman",
    normalize: bool = True,
    config: EnumerationConfig | None = None,
) -> tuple[CoexpressionResult, EnumerationResult]:
    """The full Section 3 workload: expression in, functional units out.

    Runs :func:`coexpression_pipeline`, then enumerates the graph's
    maximal cliques through the :mod:`repro.engine` backend named in
    ``config`` (default: ``"incore"`` from size 3 — the paper's gene
    modules are at least triangles).  Returns the pipeline result and
    the canonical enumeration result.
    """
    pipeline = coexpression_pipeline(
        dataset,
        threshold=threshold,
        target_density=target_density,
        method=method,
        normalize=normalize,
    )
    if config is None:
        config = EnumerationConfig(k_min=3)
    cliques = run_enumeration(pipeline.graph, config)
    return pipeline, cliques
