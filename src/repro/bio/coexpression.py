"""Expression-to-graph pipeline (the paper's Section 3 workload).

Chains the paper's three steps — normalization, pairwise rank correlation,
threshold filtering — into a gene co-expression :class:`~repro.core.graph.
Graph` whose maximal cliques are the "pure functional units" the Clique
Enumerator extracts.  :func:`coexpression_cliques` runs the full chain
through any :mod:`repro.engine` backend, so the same pipeline scales
from an in-memory run to disk-spilled or multiprocess enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.core.clique_enumerator import EnumerationResult
from repro.core.graph import Graph
from repro.engine import EnumerationConfig, run_enumeration
from repro.bio.correlation import pearson_correlation, spearman_correlation
from repro.bio.expression import ExpressionDataSet, zscore_normalize

__all__ = [
    "CoexpressionResult",
    "correlation_graph",
    "threshold_for_density",
    "coexpression_pipeline",
    "coexpression_cliques",
    "submit_coexpression_sweep",
]


def correlation_graph(
    corr: np.ndarray, threshold: float, absolute: bool = True
) -> Graph:
    """Threshold a correlation matrix into an unweighted graph.

    An edge joins genes ``i != j`` when ``|corr[i, j]| >= threshold``
    (signed comparison when ``absolute=False``).  The input must be a
    square symmetric matrix.
    """
    c = np.asarray(corr, dtype=np.float64)
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ParameterError(
            f"correlation matrix must be square, got {c.shape}"
        )
    if not np.allclose(c, c.T, atol=1e-10):
        raise ParameterError("correlation matrix must be symmetric")
    vals = np.abs(c) if absolute else c
    mask = vals >= threshold
    np.fill_diagonal(mask, False)
    g = Graph(c.shape[0])
    ui, vi = np.nonzero(np.triu(mask, k=1))
    for u, v in zip(ui.tolist(), vi.tolist()):
        g.add_edge(u, v)
    return g


def threshold_for_density(
    corr: np.ndarray, target_density: float, absolute: bool = True
) -> float:
    """Threshold giving (approximately) the requested edge density.

    The paper tunes thresholds to reach densities like 0.008%–0.3%; this
    helper inverts that choice: the returned value keeps the top
    ``target_density`` fraction of off-diagonal pairs.
    """
    if not 0.0 < target_density <= 1.0:
        raise ParameterError(
            f"target density must be in (0, 1], got {target_density}"
        )
    c = np.asarray(corr, dtype=np.float64)
    iu = np.triu_indices(c.shape[0], k=1)
    vals = np.abs(c[iu]) if absolute else c[iu]
    if vals.size == 0:
        return 1.0
    return float(np.quantile(vals, 1.0 - target_density))


@dataclass
class CoexpressionResult:
    """Pipeline output: the graph plus the matrices that produced it."""

    graph: Graph
    correlation: np.ndarray
    threshold: float
    method: str


def _correlation_matrix(
    dataset: ExpressionDataSet, method: str, normalize: bool
) -> np.ndarray:
    """The shared normalize → correlate front of pipeline and sweep."""
    if method not in ("spearman", "pearson"):
        raise ParameterError(
            f"method must be 'spearman' or 'pearson', got {method!r}"
        )
    matrix = dataset.matrix
    if normalize:
        matrix = zscore_normalize(matrix, axis=1)
    return (
        spearman_correlation(matrix)
        if method == "spearman"
        else pearson_correlation(matrix)
    )


def coexpression_pipeline(
    dataset: ExpressionDataSet,
    threshold: float | None = None,
    target_density: float | None = None,
    method: str = "spearman",
    normalize: bool = True,
) -> CoexpressionResult:
    """Run normalization → correlation → threshold → graph.

    Exactly one of ``threshold`` (absolute cutoff) and ``target_density``
    (inverted to a cutoff via :func:`threshold_for_density`) must be
    given.  ``method`` is ``"spearman"`` (the paper's rank coefficient) or
    ``"pearson"``.
    """
    if (threshold is None) == (target_density is None):
        raise ParameterError(
            "give exactly one of threshold / target_density"
        )
    corr = _correlation_matrix(dataset, method, normalize)
    if threshold is None:
        threshold = threshold_for_density(corr, target_density)
    graph = correlation_graph(corr, threshold)
    return CoexpressionResult(
        graph=graph, correlation=corr, threshold=threshold, method=method
    )


def coexpression_cliques(
    dataset: ExpressionDataSet,
    threshold: float | None = None,
    target_density: float | None = None,
    method: str = "spearman",
    normalize: bool = True,
    config: EnumerationConfig | None = None,
) -> tuple[CoexpressionResult, EnumerationResult]:
    """The full Section 3 workload: expression in, functional units out.

    Runs :func:`coexpression_pipeline`, then enumerates the graph's
    maximal cliques through the :mod:`repro.engine` backend named in
    ``config`` (default: ``"incore"`` from size 3 — the paper's gene
    modules are at least triangles).  Returns the pipeline result and
    the canonical enumeration result.
    """
    pipeline = coexpression_pipeline(
        dataset,
        threshold=threshold,
        target_density=target_density,
        method=method,
        normalize=normalize,
    )
    if config is None:
        config = EnumerationConfig(k_min=3)
    cliques = run_enumeration(pipeline.graph, config)
    return pipeline, cliques


def submit_coexpression_sweep(
    scheduler,
    dataset: ExpressionDataSet,
    thresholds: list[float],
    method: str = "spearman",
    normalize: bool = True,
    config: EnumerationConfig | None = None,
    sink: str = "count",
    priority: int = 0,
    use_cache: bool = True,
):
    """Submit a threshold sweep as a batch of enumeration jobs.

    The paper's biologists pick thresholds by *sweeping* them — the
    same expression matrix is thresholded at many cutoffs and each
    resulting graph is enumerated.  This helper amortizes the shared
    computation (normalization + the O(genes^2) correlation matrix are
    computed exactly once) and turns the per-threshold enumerations
    into queued :class:`~repro.service.jobs.Job`\\ s on a
    :class:`~repro.service.scheduler.JobScheduler`.  With
    ``sink="collect"`` each cutoff's result also lands in the
    scheduler's cache, so repeated cutoffs are served from it instead
    of re-enumerating; the default ``"count"`` sink streams without
    materializing cliques and therefore never populates the cache
    (it can still be *served* from a collect-warmed one).

    Returns the jobs in threshold order, labelled
    ``coexpression@<threshold>``; call ``job.wait()`` (or the
    scheduler's ``drain``) to collect them.

    One thresholded graph (an O(genes^2 / 8)-byte adjacency bitmap) is
    materialized per threshold at submission and stays referenced by
    its job record until pruning, so peak memory scales with the sweep
    length; for very long sweeps over very large gene sets, save each
    thresholded graph to disk and submit path-referenced specs instead
    (the scheduler memoizes loads).
    """
    from repro.service.jobs import JobSpec

    if not thresholds:
        raise ParameterError("sweep needs at least one threshold")
    if config is None:
        config = EnumerationConfig(k_min=3)
    corr = _correlation_matrix(dataset, method, normalize)
    specs = [
        JobSpec(
            graph=correlation_graph(corr, t),
            config=config,
            sink=sink,
            priority=priority,
            use_cache=use_cache,
            label=f"coexpression@{t:g}",
        )
        for t in thresholds
    ]
    return scheduler.submit_batch(specs)
