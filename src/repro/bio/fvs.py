"""Feedback vertex set by FPT branching (phylogenetic footprinting).

The paper's future-work section: "In phylogenetic footprinting, for
example, it is feedback vertex set that is the crucial combinatorial
problem.  We have recently devised the asymptotically-fastest
currently-known algorithms for feedback vertex set.  Our methods make
extensive use of branching."

This module implements the undirected FVS substrate with the classic
bounded-search-tree scheme:

* reductions — vertices of degree 0/1 lie on no cycle and are removed to
  a fixed point;
* branching — every feedback vertex set hits every cycle, so find a
  *shortest* cycle (BFS girth scan) and branch on its vertices; short
  cycles keep the branching factor small.

The optimiser raises the budget from 0 until the decision procedure
succeeds, mirroring :mod:`repro.core.vertex_cover`.
"""

from __future__ import annotations

from collections import deque


from repro.errors import ParameterError, SolverError
from repro.core.graph import Graph

__all__ = [
    "is_acyclic",
    "shortest_cycle",
    "feedback_vertex_set_decision",
    "minimum_feedback_vertex_set",
    "is_feedback_vertex_set",
]


def _adj_sets(g: Graph) -> dict[int, set[int]]:
    return {v: set(g.neighbors(v).tolist()) for v in range(g.n)}


def _acyclic(adj: dict[int, set[int]]) -> bool:
    """Union-find forest check on an adjacency-set dict."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    for u, nbrs in adj.items():
        for v in nbrs:
            if u < v:
                ru, rv = find(u), find(v)
                if ru == rv:
                    return False
                parent[ru] = rv
    return True


def is_acyclic(g: Graph) -> bool:
    """True when ``g`` is a forest."""
    return _acyclic(_adj_sets(g))


def _shortest_cycle(adj: dict[int, set[int]]) -> list[int] | None:
    """A shortest cycle via BFS from every vertex; None when acyclic.

    BFS from ``s`` finds the shortest cycle through ``s``'s BFS tree when
    a non-tree edge joins two vertices whose levels meet; scanning all
    starts yields a global shortest cycle (standard girth routine).
    """
    best: list[int] | None = None
    for s in adj:
        parent = {s: -1}
        depth = {s: 0}
        q = deque([s])
        while q:
            u = q.popleft()
            if best is not None and depth[u] * 2 > len(best):
                break
            for v in adj[u]:
                if v not in depth:
                    depth[v] = depth[u] + 1
                    parent[v] = u
                    q.append(v)
                elif parent[u] != v and parent.get(v) != u:
                    # non-tree edge (u, v): cycle through their tree paths
                    pu, pv = u, v
                    path_u, path_v = [u], [v]
                    while depth[pu] > depth[pv]:
                        pu = parent[pu]
                        path_u.append(pu)
                    while depth[pv] > depth[pu]:
                        pv = parent[pv]
                        path_v.append(pv)
                    while pu != pv:
                        pu, pv = parent[pu], parent[pv]
                        path_u.append(pu)
                        path_v.append(pv)
                    cycle = path_u + path_v[-2::-1]
                    if best is None or len(cycle) < len(best):
                        best = cycle
        if best is not None and len(best) == 3:
            return best
    return best


def shortest_cycle(g: Graph) -> list[int] | None:
    """A shortest cycle of ``g`` as a vertex list, or None for forests."""
    return _shortest_cycle(
        {v: s for v, s in _adj_sets(g).items() if s}
    )


def _reduce(adj: dict[int, set[int]]) -> None:
    """Strip degree-<=1 vertices to a fixed point (in place)."""
    queue = [v for v, s in adj.items() if len(s) <= 1]
    while queue:
        v = queue.pop()
        if v not in adj or len(adj[v]) > 1:
            continue
        for u in adj.pop(v):
            s = adj.get(u)
            if s is not None:
                s.discard(v)
                if len(s) <= 1:
                    queue.append(u)


def _fvs(adj: dict[int, set[int]], k: int) -> list[int] | None:
    _reduce(adj)
    if not adj or _acyclic(adj):
        return []
    if k <= 0:
        return None
    cycle = _shortest_cycle(adj)
    if cycle is None:  # pragma: no cover - guarded by _acyclic above
        return []
    for v in cycle:
        adj2 = {u: set(s) for u, s in adj.items()}
        for u in adj2.pop(v):
            adj2[u].discard(v)
        sub = _fvs(adj2, k - 1)
        if sub is not None:
            return [v] + sub
    return None


def feedback_vertex_set_decision(g: Graph, k: int) -> list[int] | None:
    """An FVS of size at most ``k``, or None when none exists."""
    if k < 0:
        raise ParameterError(f"budget must be >= 0, got {k}")
    adj = {v: s for v, s in _adj_sets(g).items() if s}
    sol = _fvs(adj, k)
    if sol is None:
        return None
    sol = sorted(set(sol))
    if not is_feedback_vertex_set(g, sol):
        raise SolverError("internal error: produced invalid FVS")
    return sol


def minimum_feedback_vertex_set(g: Graph) -> list[int]:
    """Exact minimum FVS by raising the parameter from zero."""
    for k in range(g.n + 1):
        sol = feedback_vertex_set_decision(g, k)
        if sol is not None:
            return sol
    raise SolverError("removing all vertices must be acyclic")


def is_feedback_vertex_set(g: Graph, vertices: list[int]) -> bool:
    """True when deleting ``vertices`` leaves a forest."""
    drop = set(vertices)
    adj = {
        v: {u for u in g.neighbors(v).tolist() if u not in drop}
        for v in range(g.n)
        if v not in drop
    }
    return _acyclic(adj)
