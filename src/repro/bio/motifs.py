"""Cis-regulatory motif finding via clique (WINNOWER-style).

The paper lists "cis regulatory motif finding" among the clique
applications and cites the authors' HiCOMB work on "High Performance
Computational Tools for Motif Discovery" [28].  The classic clique
formulation (Pevzner & Sze's planted (l, d)-motif problem):

* every length-``l`` window of every promoter sequence is a vertex;
* two windows from *different* sequences are joined when their Hamming
  distance is at most ``2d`` (two occurrences of one motif, each at most
  ``d`` mutations away, differ by at most ``2d``);
* an occurrence set of a planted motif is a clique with one vertex per
  sequence — find it with the maximum clique machinery.

This module provides the planted-motif generator, the occurrence-graph
construction on :class:`~repro.core.graph.Graph`, clique-based motif
search, and consensus extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.core.graph import Graph
from repro.core.maximum_clique import maximum_clique
from repro.bio.sequences import DNA_ALPHABET, random_sequence

__all__ = [
    "PlantedMotifInstance",
    "plant_motif",
    "hamming",
    "build_occurrence_graph",
    "find_motif",
    "consensus",
]


def hamming(a: str, b: str) -> int:
    """Hamming distance of two equal-length strings."""
    if len(a) != len(b):
        raise ParameterError(
            f"hamming distance needs equal lengths, got {len(a)}, {len(b)}"
        )
    return sum(1 for x, y in zip(a, b) if x != y)


@dataclass(frozen=True)
class PlantedMotifInstance:
    """A planted (l, d)-motif problem instance.

    ``positions[i]`` is where the mutated motif copy starts in sequence
    ``i``; ``motif`` is the unmutated consensus.
    """

    sequences: list[str]
    motif: str
    positions: list[int]
    d: int

    @property
    def l(self) -> int:  # noqa: E743 - standard (l, d) nomenclature
        return len(self.motif)

    def planted_windows(self) -> list[str]:
        """The actual (mutated) motif occurrences."""
        return [
            seq[p:p + self.l]
            for seq, p in zip(self.sequences, self.positions)
        ]


def plant_motif(
    n_sequences: int,
    seq_length: int,
    motif_length: int,
    d: int,
    seed: int = 0,
    alphabet: str = DNA_ALPHABET,
) -> PlantedMotifInstance:
    """Generate a planted (l, d)-motif instance.

    Each sequence receives one copy of a random motif with *exactly*
    ``d`` substituted positions, at a random offset.
    """
    if motif_length > seq_length:
        raise ParameterError(
            f"motif length {motif_length} exceeds sequence length "
            f"{seq_length}"
        )
    if d > motif_length:
        raise ParameterError(f"d={d} exceeds motif length {motif_length}")
    rng = np.random.default_rng(seed)
    letters = list(alphabet)
    motif = random_sequence(motif_length, alphabet, seed=seed + 1)
    sequences: list[str] = []
    positions: list[int] = []
    for i in range(n_sequences):
        backdrop = random_sequence(
            seq_length, alphabet, seed=seed + 100 + i
        )
        # mutate exactly d positions of the motif
        copy = list(motif)
        for j in rng.choice(motif_length, size=d, replace=False):
            choices = [c for c in letters if c != copy[j]]
            copy[int(j)] = choices[int(rng.integers(0, len(choices)))]
        pos = int(rng.integers(0, seq_length - motif_length + 1))
        seq = backdrop[:pos] + "".join(copy) + backdrop[pos + motif_length:]
        sequences.append(seq)
        positions.append(pos)
    return PlantedMotifInstance(
        sequences=sequences, motif=motif, positions=positions, d=d
    )


def build_occurrence_graph(
    sequences: list[str], motif_length: int, max_distance: int
) -> tuple[Graph, list[tuple[int, int]]]:
    """The WINNOWER occurrence graph.

    Vertices are all length-``motif_length`` windows; edges join windows
    of *different* sequences with Hamming distance at most
    ``max_distance`` (use ``2d`` for an (l, d) instance).

    Returns ``(graph, labels)`` where ``labels[v] = (sequence_index,
    offset)``.
    """
    if motif_length < 1:
        raise ParameterError("motif length must be >= 1")
    labels: list[tuple[int, int]] = []
    windows: list[str] = []
    seq_of: list[int] = []
    for si, seq in enumerate(sequences):
        for off in range(len(seq) - motif_length + 1):
            labels.append((si, off))
            windows.append(seq[off:off + motif_length])
            seq_of.append(si)
    g = Graph(len(windows))
    # windows encoded as byte matrix: pairwise Hamming via vectorised
    # comparisons per vertex row (n^2 * l / vector width)
    arr = np.frombuffer(
        "".join(windows).encode("ascii"), dtype=np.uint8
    ).reshape(len(windows), motif_length)
    seq_arr = np.asarray(seq_of)
    for v in range(len(windows)):
        dists = (arr[v + 1:] != arr[v]).sum(axis=1)
        mask = (dists <= max_distance) & (seq_arr[v + 1:] != seq_arr[v])
        for u in (np.flatnonzero(mask) + v + 1).tolist():
            g.add_edge(v, u)
    return g, labels


@dataclass(frozen=True)
class MotifResult:
    """Outcome of a clique-based motif search."""

    occurrences: list[tuple[int, int]]
    consensus: str
    windows: list[str]


def consensus(windows: list[str]) -> str:
    """Column-majority consensus of equal-length windows."""
    if not windows:
        return ""
    length = len(windows[0])
    if any(len(w) != length for w in windows):
        raise ParameterError("windows must share one length")
    out = []
    for col in zip(*windows):
        values, counts = np.unique(list(col), return_counts=True)
        out.append(str(values[int(np.argmax(counts))]))
    return "".join(out)


def find_motif(
    sequences: list[str], motif_length: int, d: int
) -> MotifResult:
    """Recover a planted (l, d) motif by maximum clique.

    Builds the occurrence graph with threshold ``2d`` and extracts the
    maximum clique; with one planted occurrence per sequence and enough
    signal, the clique covers every sequence and its column consensus is
    the motif.
    """
    g, labels = build_occurrence_graph(sequences, motif_length, 2 * d)
    clique = maximum_clique(g)
    occurrences = sorted(labels[v] for v in clique)
    windows = [
        sequences[si][off:off + motif_length] for si, off in occurrences
    ]
    return MotifResult(
        occurrences=occurrences,
        consensus=consensus(windows),
        windows=windows,
    )
