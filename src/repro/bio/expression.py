"""Synthetic microarray expression data with planted co-expression modules.

The paper's test graphs "were generated from raw microarray data after
normalization, pairwise rank coefficient calculation, and filtering using
threshold" — two neurobiological datasets (12,422 probe sets, Affymetrix
U74Av2, mouse brain) and one myogenic differentiation dataset (2,895
genes).  Those datasets are not redistributable, so this module generates
synthetic expression matrices with the property that matters for the
pipeline: *planted co-expression modules* whose members correlate strongly
across conditions, so that thresholding the correlation matrix produces a
sparse graph with dense clique-forming neighborhoods — the same structure
the paper enumerates.

The generative model: each module ``j`` has a latent condition profile
``f_j ~ N(0, 1)^conditions``; a member gene's expression is
``sqrt(rho) * f_j + sqrt(1 - rho) * eps`` with gene-private noise ``eps``,
so any two members have expected correlation ``rho``.  Background genes
are pure noise.  A gene may belong to at most one module (matching the
paper's "pure functional units" reading of cliques).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "ModuleSpec",
    "ExpressionDataSet",
    "synthetic_expression",
    "zscore_normalize",
    "quantile_normalize",
    "log2_transform",
    "inject_missing",
    "impute_missing",
]


@dataclass(frozen=True)
class ModuleSpec:
    """One planted co-expression module.

    Attributes
    ----------
    size: number of member genes.
    rho: expected pairwise correlation between members, in (0, 1].
    """

    size: int
    rho: float = 0.9

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ParameterError(f"module size must be >= 1, got {self.size}")
        if not 0.0 < self.rho <= 1.0:
            raise ParameterError(f"rho must be in (0, 1], got {self.rho}")


@dataclass
class ExpressionDataSet:
    """An expression matrix plus its planted ground truth.

    Attributes
    ----------
    matrix:
        ``(n_genes, n_conditions)`` float array.
    modules:
        Member-gene index lists of the planted modules.
    gene_names / condition_names:
        Synthetic labels (``G0001`` ..., ``C01`` ...).
    """

    matrix: np.ndarray
    modules: list[list[int]] = field(default_factory=list)
    gene_names: list[str] = field(default_factory=list)
    condition_names: list[str] = field(default_factory=list)

    @property
    def n_genes(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_conditions(self) -> int:
        return self.matrix.shape[1]


def synthetic_expression(
    n_genes: int,
    n_conditions: int,
    modules: list[ModuleSpec] | None = None,
    noise_scale: float = 1.0,
    seed: int = 0,
) -> ExpressionDataSet:
    """Generate a synthetic expression dataset.

    Parameters
    ----------
    n_genes: total genes (module members plus background).
    n_conditions: array conditions (the paper's mouse reference population
        has dozens of strains; 30–100 is the realistic regime).
    modules: planted modules; their sizes must sum to at most ``n_genes``.
    noise_scale: standard deviation of the gene-private noise.
    seed: RNG seed (reproducible).
    """
    if n_genes < 0 or n_conditions < 1:
        raise ParameterError(
            f"need n_genes >= 0 and n_conditions >= 1, got "
            f"{n_genes}, {n_conditions}"
        )
    modules = modules or []
    total_members = sum(m.size for m in modules)
    if total_members > n_genes:
        raise ParameterError(
            f"module sizes sum to {total_members} > n_genes {n_genes}"
        )
    rng = np.random.default_rng(seed)
    matrix = rng.normal(0.0, noise_scale, size=(n_genes, n_conditions))
    # Scatter module members across the gene index space so planted
    # structure is not positionally identifiable.
    perm = rng.permutation(n_genes)
    member_lists: list[list[int]] = []
    cursor = 0
    for spec in modules:
        members = sorted(perm[cursor:cursor + spec.size].tolist())
        cursor += spec.size
        latent = rng.normal(0.0, 1.0, size=n_conditions)
        a = np.sqrt(spec.rho)
        b = np.sqrt(1.0 - spec.rho)
        for gi in members:
            eps = rng.normal(0.0, 1.0, size=n_conditions)
            matrix[gi] = (a * latent + b * eps) * noise_scale
        member_lists.append(members)
    width_g = max(4, len(str(n_genes)))
    width_c = max(2, len(str(n_conditions)))
    return ExpressionDataSet(
        matrix=matrix,
        modules=member_lists,
        gene_names=[f"G{i:0{width_g}d}" for i in range(n_genes)],
        condition_names=[f"C{j:0{width_c}d}" for j in range(n_conditions)],
    )


# ---------------------------------------------------------------------------
# Normalization (the paper's pipeline step 1)
# ---------------------------------------------------------------------------

def zscore_normalize(matrix: np.ndarray, axis: int = 1) -> np.ndarray:
    """Zero-mean, unit-variance normalization along ``axis``.

    Constant rows/columns (zero variance) are mapped to zeros rather than
    NaN, matching what expression pipelines do with flat probes.
    """
    m = np.asarray(matrix, dtype=np.float64)
    mean = m.mean(axis=axis, keepdims=True)
    std = m.std(axis=axis, keepdims=True)
    safe = np.where(std == 0.0, 1.0, std)
    out = (m - mean) / safe
    return np.where(std == 0.0, 0.0, out)


def quantile_normalize(matrix: np.ndarray) -> np.ndarray:
    """Quantile normalization across columns (standard microarray step).

    Every column is forced onto the common distribution of per-rank row
    means.  Ties receive the mean of their rank range via stable argsort.
    """
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ParameterError(f"expected 2-D matrix, got shape {m.shape}")
    order = np.argsort(m, axis=0, kind="stable")
    ranked = np.take_along_axis(m, order, axis=0)
    means = ranked.mean(axis=1)
    # ranks[r, j] = rank of m[r, j] within column j
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order,
        np.broadcast_to(np.arange(m.shape[0])[:, None], m.shape), axis=0,
    )
    return means[ranks]


def log2_transform(matrix: np.ndarray, pseudocount: float = 1.0) -> np.ndarray:
    """``log2(x + pseudocount)`` with a validity check for negatives."""
    m = np.asarray(matrix, dtype=np.float64)
    if (m + pseudocount <= 0).any():
        raise ParameterError(
            "log2 transform requires all values > -pseudocount"
        )
    return np.log2(m + pseudocount)


def inject_missing(
    matrix: np.ndarray, rate: float, seed: int = 0
) -> np.ndarray:
    """Return a copy with a fraction ``rate`` of entries set to NaN."""
    if not 0.0 <= rate < 1.0:
        raise ParameterError(f"missing rate must be in [0, 1), got {rate}")
    rng = np.random.default_rng(seed)
    out = np.array(matrix, dtype=np.float64, copy=True)
    mask = rng.random(out.shape) < rate
    out[mask] = np.nan
    return out


def impute_missing(matrix: np.ndarray) -> np.ndarray:
    """Row-mean imputation of NaNs (all-NaN rows become zeros)."""
    out = np.array(matrix, dtype=np.float64, copy=True)
    nan_mask = np.isnan(out)
    counts = (~nan_mask).sum(axis=1, keepdims=True)
    sums = np.where(nan_mask, 0.0, out).sum(axis=1, keepdims=True)
    row_means = np.divide(
        sums, counts, out=np.zeros_like(sums), where=counts > 0
    )
    out[nan_mask] = np.broadcast_to(row_means, out.shape)[nan_mask]
    return out
