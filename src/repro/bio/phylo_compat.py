"""Character compatibility in phylogenetics via maximum clique.

The paper (Section 2.1): maximum clique is foundational "when solving the
compatibility problem in phylogeny", citing the perfect phylogeny
literature.  For **binary characters** the classic theory is clean:

* two characters are compatible iff the four-gamete test passes — at
  most three of the patterns ``00, 01, 10, 11`` appear across taxa;
* (Estabrook–Johnson–McMorris) a set of binary characters is pairwise
  compatible iff it is jointly compatible, i.e. admits a perfect
  phylogeny;
* therefore the largest character set consistent with *some* tree is
  exactly a **maximum clique of the pairwise-compatibility graph**.

This module builds the compatibility graph from a 0/1 character matrix,
finds the largest compatible set with the clique machinery, and
constructs a perfect phylogeny for a compatible set (Gusfield's
radix-sort algorithm), verifying the theory end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError, SolverError
from repro.core.graph import Graph
from repro.core.maximum_clique import maximum_clique

__all__ = [
    "four_gamete_compatible",
    "compatibility_graph",
    "largest_compatible_set",
    "PhyloNode",
    "build_perfect_phylogeny",
]


def _validate_matrix(matrix: np.ndarray) -> np.ndarray:
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise ParameterError(
            f"character matrix must be 2-D (taxa x characters), "
            f"got shape {m.shape}"
        )
    if not np.isin(m, (0, 1)).all():
        raise ParameterError("characters must be binary (0/1)")
    return m.astype(np.int8)


def four_gamete_compatible(col_a: np.ndarray, col_b: np.ndarray) -> bool:
    """Four-gamete test: compatible iff not all of 00/01/10/11 occur."""
    a = np.asarray(col_a).astype(np.int8)
    b = np.asarray(col_b).astype(np.int8)
    if a.shape != b.shape:
        raise ParameterError("character columns must share taxa count")
    patterns = {(int(x), int(y)) for x, y in zip(a, b)}
    return len(patterns) < 4


def compatibility_graph(matrix: np.ndarray) -> Graph:
    """Pairwise-compatibility graph over the characters (columns)."""
    m = _validate_matrix(matrix)
    n_chars = m.shape[1]
    g = Graph(n_chars)
    for i in range(n_chars):
        for j in range(i + 1, n_chars):
            if four_gamete_compatible(m[:, i], m[:, j]):
                g.add_edge(i, j)
    return g


def largest_compatible_set(matrix: np.ndarray) -> list[int]:
    """Indices of a maximum jointly-compatible character set.

    By the binary-character compatibility theorem, the maximum clique of
    the pairwise graph is jointly compatible, so this is exact.
    """
    m = _validate_matrix(matrix)
    if m.shape[1] == 0:
        return []
    return maximum_clique(compatibility_graph(m))


@dataclass
class PhyloNode:
    """A node of a perfect phylogeny.

    ``taxa`` lists the taxa placed at this node; ``character`` is the
    character whose state change labels the edge into this node (-1 at
    the root); ``flipped`` marks characters that were recoded (their
    original 1-state is ancestral); children hang below.
    """

    character: int = -1
    flipped: bool = False
    taxa: list[int] = field(default_factory=list)
    children: list["PhyloNode"] = field(default_factory=list)

    def all_taxa(self) -> list[int]:
        """Taxa in this subtree."""
        out = list(self.taxa)
        for ch in self.children:
            out.extend(ch.all_taxa())
        return out


def build_perfect_phylogeny(
    matrix: np.ndarray, characters: list[int] | None = None
) -> PhyloNode:
    """Construct a perfect phylogeny for compatible binary characters.

    The undirected compatibility problem is reduced to the rooted one by
    the standard recoding: each character is flipped, when necessary, so
    that **taxon 0 carries state 0** (taxon 0 plays the outgroup; the
    four-gamete test is invariant under flips).  After recoding, every
    compatible pair is nested or disjoint, so the derived taxa sets form
    a laminar family and the classic O(nm) construction applies: process
    characters by decreasing 1-count, attaching each below the smallest
    existing set containing it.  Raises
    :class:`~repro.errors.SolverError` when the characters are not
    jointly compatible (laminarity fails).

    Parameters
    ----------
    matrix: taxa x characters 0/1 matrix.
    characters: column subset to realise (all columns when omitted).
    """
    m = _validate_matrix(matrix)
    n_taxa, n_chars = m.shape
    chars = list(range(n_chars)) if characters is None else list(characters)
    for c in chars:
        if not 0 <= c < n_chars:
            raise ParameterError(f"character index {c} out of range")
    flipped: dict[int, bool] = {}
    taxa_sets: dict[int, frozenset[int]] = {}
    for c in chars:
        col = m[:, c]
        flip = n_taxa > 0 and col[0] == 1
        flipped[c] = bool(flip)
        ones = np.flatnonzero(1 - col if flip else col)
        taxa_sets[c] = frozenset(ones.tolist())
    # laminar check + construction: process by decreasing cardinality
    order = sorted(chars, key=lambda c: (-len(taxa_sets[c]), c))
    root = PhyloNode(character=-1)
    node_sets: list[tuple[frozenset[int], PhyloNode]] = [
        (frozenset(range(n_taxa)), root)
    ]
    for c in order:
        ts = taxa_sets[c]
        if not ts:
            continue  # character absent from all taxa: no edge needed
        # find the smallest existing set containing ts
        parent_set, parent_node = min(
            (
                (s, node)
                for s, node in node_sets
                if ts <= s
            ),
            key=lambda t: len(t[0]),
            default=(None, None),
        )
        if parent_node is None:
            raise SolverError(
                f"character {c} is incompatible with the set "
                "(taxa sets are not laminar)"
            )
        # laminarity: ts must not straddle any sibling
        for s, _ in node_sets:
            if ts & s and not (ts <= s or s <= ts):
                raise SolverError(
                    f"character {c} violates laminarity "
                    "(not jointly compatible)"
                )
        node = PhyloNode(character=c, flipped=flipped[c])
        parent_node.children.append(node)
        node_sets.append((ts, node))
    # Place taxa at the deepest node whose set contains them.  Characters
    # with identical recoded splits chain as parent/child; the <= with
    # insertion order (parents precede children) selects the deepest.
    for t in range(n_taxa):
        best_set, best_node = frozenset(range(n_taxa)), root
        for s, node in node_sets:
            if t in s and len(s) <= len(best_set):
                best_set, best_node = s, node
        best_node.taxa.append(t)
    return root
