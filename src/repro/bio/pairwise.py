"""Pairwise sequence alignment: Needleman–Wunsch and Smith–Waterman.

These dynamic programs are the substrate of the ClustalXP-style MSA
pipeline (:mod:`repro.bio.msa`) the paper cites as one of its framework's
consumers ("the construction of ClustalXP for high-performance multiple
sequence alignment").  The DP rows are vectorised over NumPy; tracebacks
use compact int8 pointer matrices.

The paper's closing discussion also flags dynamic programming's
space/time trade-off as a target of its memory-management framework —
these implementations keep the full DP matrix by design, making the
O(len_a · len_b) space cost explicit and measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError

__all__ = [
    "AlignmentResult",
    "needleman_wunsch",
    "smith_waterman",
    "percent_identity",
]

_DIAG, _UP, _LEFT, _STOP = 1, 2, 3, 0


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of a pairwise alignment.

    ``aligned_a`` / ``aligned_b`` are equal-length gapped strings;
    ``identity`` is matches over alignment columns.
    """

    score: float
    aligned_a: str
    aligned_b: str

    @property
    def identity(self) -> float:
        return percent_identity(self.aligned_a, self.aligned_b)

    def __len__(self) -> int:
        return len(self.aligned_a)


def percent_identity(aligned_a: str, aligned_b: str) -> float:
    """Fraction of alignment columns with identical residues."""
    if len(aligned_a) != len(aligned_b):
        raise AlignmentError(
            f"aligned strings differ in length: "
            f"{len(aligned_a)} vs {len(aligned_b)}"
        )
    if not aligned_a:
        return 1.0
    matches = sum(
        1 for x, y in zip(aligned_a, aligned_b) if x == y and x != "-"
    )
    return matches / len(aligned_a)


def _score_rows(
    a: str, b: str, match: float, mismatch: float
) -> np.ndarray:
    """(len(a), len(b)) substitution score matrix."""
    arr_a = np.frombuffer(a.encode("ascii"), dtype=np.uint8)
    arr_b = np.frombuffer(b.encode("ascii"), dtype=np.uint8)
    eq = arr_a[:, None] == arr_b[None, :]
    return np.where(eq, match, mismatch)


def needleman_wunsch(
    a: str,
    b: str,
    match: float = 1.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> AlignmentResult:
    """Global alignment with linear gap penalties.

    Ties in the traceback prefer diagonal, then up, then left, which makes
    the output deterministic.
    """
    if gap >= 0:
        raise AlignmentError(f"gap penalty must be negative, got {gap}")
    la, lb = len(a), len(b)
    score = np.zeros((la + 1, lb + 1), dtype=np.float64)
    ptr = np.zeros((la + 1, lb + 1), dtype=np.int8)
    score[0, :] = gap * np.arange(lb + 1)
    score[:, 0] = gap * np.arange(la + 1)
    ptr[0, 1:] = _LEFT
    ptr[1:, 0] = _UP
    if la and lb:
        sub = _score_rows(a, b, match, mismatch)
        for i in range(1, la + 1):
            diag = score[i - 1, :-1] + sub[i - 1]
            up_base = score[i - 1, 1:] + gap
            row = score[i]
            for j in range(1, lb + 1):
                d = diag[j - 1]
                u = up_base[j - 1]
                left = row[j - 1] + gap
                best = d
                p = _DIAG
                if u > best:
                    best, p = u, _UP
                if left > best:
                    best, p = left, _LEFT
                row[j] = best
                ptr[i, j] = p
    out_a: list[str] = []
    out_b: list[str] = []
    i, j = la, lb
    while i > 0 or j > 0:
        p = ptr[i, j]
        if p == _DIAG:
            i -= 1
            j -= 1
            out_a.append(a[i])
            out_b.append(b[j])
        elif p == _UP:
            i -= 1
            out_a.append(a[i])
            out_b.append("-")
        else:
            j -= 1
            out_a.append("-")
            out_b.append(b[j])
    return AlignmentResult(
        score=float(score[la, lb]),
        aligned_a="".join(reversed(out_a)),
        aligned_b="".join(reversed(out_b)),
    )


def smith_waterman(
    a: str,
    b: str,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> AlignmentResult:
    """Local alignment (best-scoring subsequences, never negative)."""
    if gap >= 0:
        raise AlignmentError(f"gap penalty must be negative, got {gap}")
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return AlignmentResult(score=0.0, aligned_a="", aligned_b="")
    sub = _score_rows(a, b, match, mismatch)
    score = np.zeros((la + 1, lb + 1), dtype=np.float64)
    ptr = np.zeros((la + 1, lb + 1), dtype=np.int8)
    best_val, best_pos = 0.0, (0, 0)
    for i in range(1, la + 1):
        diag = score[i - 1, :-1] + sub[i - 1]
        up_base = score[i - 1, 1:] + gap
        row = score[i]
        for j in range(1, lb + 1):
            d = diag[j - 1]
            u = up_base[j - 1]
            left = row[j - 1] + gap
            best = d
            p = _DIAG
            if u > best:
                best, p = u, _UP
            if left > best:
                best, p = left, _LEFT
            if best <= 0.0:
                best, p = 0.0, _STOP
            row[j] = best
            ptr[i, j] = p
            if best > best_val:
                best_val, best_pos = best, (i, j)
    out_a: list[str] = []
    out_b: list[str] = []
    i, j = best_pos
    while i > 0 and j > 0 and ptr[i, j] != _STOP:
        p = ptr[i, j]
        if p == _DIAG:
            i -= 1
            j -= 1
            out_a.append(a[i])
            out_b.append(b[j])
        elif p == _UP:
            i -= 1
            out_a.append(a[i])
            out_b.append("-")
        else:
            j -= 1
            out_a.append("-")
            out_b.append(b[j])
    return AlignmentResult(
        score=float(best_val),
        aligned_a="".join(reversed(out_a)),
        aligned_b="".join(reversed(out_b)),
    )
