"""Extreme pathway / elementary flux mode enumeration.

The paper (Section 1): "The problem of enumerating the extreme pathways
can be reduced in polynomial time to the problem of enumerating all
vertices of an n-dimensional convex polyhedron that is known to belong to
the class of NP-hard problems" — and cites the authors' own parallel
out-of-core enumerator [24] as the substrate this framework supersedes.

This module enumerates the extreme rays of the flux cone

    ``C = { v : S v = 0,  v >= 0 }``

with the classic double-description / tableau method (Schuster's
algorithm), in **exact rational arithmetic**:

1. start from the identity tableau — one ray per (irreversible, after
   splitting) reaction;
2. process internal metabolites one at a time: rays already satisfying
   ``S_m · v = 0`` survive; each positive/negative ray pair combines into
   a new ray cancelling metabolite ``m``;
3. prune non-extreme rays by the support-minimality test (a ray is
   elementary iff no other ray's support is a proper subset of its own);
4. after the last metabolite, the surviving rays are the elementary flux
   modes; spurious two-cycles from reversible splitting are removed and
   fluxes folded back onto the original reactions.

For networks whose internal reactions are all irreversible (the paper's
extreme-pathway setting) the output coincides with the extreme pathways.
Rays are normalised to smallest integer form, so results are exactly
comparable across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd

import numpy as np

from repro.errors import SolverError
from repro.bio.stoichiometry import MetabolicNetwork

__all__ = ["ExtremePathwayResult", "extreme_pathways"]


def _normalize_ray(flux: list[Fraction]) -> tuple[int, ...]:
    """Scale a rational ray to coprime integers (canonical form)."""
    denom_lcm = 1
    for f in flux:
        if f.denominator != 1:
            denom_lcm = denom_lcm * f.denominator // gcd(
                denom_lcm, f.denominator
            )
    ints = [int(f * denom_lcm) for f in flux]
    g = 0
    for x in ints:
        g = gcd(g, abs(x))
    if g > 1:
        ints = [x // g for x in ints]
    return tuple(ints)


@dataclass
class ExtremePathwayResult:
    """Enumerated pathways of a metabolic network.

    Attributes
    ----------
    pathways:
        Integer flux vectors over the *original* reactions (reversible
        reactions carry signed net flux), one per extreme pathway, in a
        deterministic canonical order.
    reaction_names:
        Column labels for the flux vectors.
    """

    pathways: list[tuple[int, ...]]
    reaction_names: list[str]

    def __len__(self) -> int:
        return len(self.pathways)

    def as_matrix(self) -> np.ndarray:
        """Pathways stacked as a ``(n_pathways, n_reactions)`` array."""
        if not self.pathways:
            return np.zeros((0, len(self.reaction_names)), dtype=np.int64)
        return np.asarray(self.pathways, dtype=np.int64)

    def active_reactions(self, i: int) -> list[str]:
        """Names of reactions carrying flux in pathway ``i``."""
        return [
            name
            for name, f in zip(self.reaction_names, self.pathways[i])
            if f != 0
        ]


def _support(flux: list[Fraction]) -> frozenset[int]:
    return frozenset(j for j, f in enumerate(flux) if f != 0)


def extreme_pathways(
    network: MetabolicNetwork, max_rays: int = 100_000
) -> ExtremePathwayResult:
    """Enumerate the extreme pathways of ``network``.

    Parameters
    ----------
    network:
        The metabolic model; reversible reactions are split internally.
    max_rays:
        Safety bound on the intermediate tableau size; exceeding it raises
        :class:`~repro.errors.SolverError` (the combinatorial blow-up the
        paper's out-of-core algorithm [24] was built to survive).

    Returns
    -------
    ExtremePathwayResult
        Canonically ordered integer flux vectors.
    """
    split, origin = network.split_reversible()
    s = split.exact_matrix(internal_only=True)
    n_rx = split.n_reactions
    # tableau rows: (remaining stoichiometry per internal metabolite, flux)
    rays: list[tuple[list[Fraction], list[Fraction]]] = []
    for j in range(n_rx):
        flux = [Fraction(0)] * n_rx
        flux[j] = Fraction(1)
        rays.append(([row[j] for row in s], flux))

    n_int = len(s)
    for m in range(n_int):
        zero: list[tuple[list[Fraction], list[Fraction]]] = []
        pos: list[tuple[list[Fraction], list[Fraction]]] = []
        neg: list[tuple[list[Fraction], list[Fraction]]] = []
        for ray in rays:
            c = ray[0][m]
            if c == 0:
                zero.append(ray)
            elif c > 0:
                pos.append(ray)
            else:
                neg.append(ray)
        combos: list[tuple[list[Fraction], list[Fraction]]] = []
        for rp in pos:
            cp = rp[0][m]
            for rn in neg:
                cn = rn[0][m]
                # w = |cn| * rp + cp * rn cancels metabolite m;
                # both multipliers positive, so non-negativity is kept.
                a, b = -cn, cp
                stoich = [
                    a * x + b * y for x, y in zip(rp[0], rn[0])
                ]
                flux = [a * x + b * y for x, y in zip(rp[1], rn[1])]
                combos.append((stoich, flux))
        candidates = zero + combos
        if len(candidates) > max_rays:
            raise SolverError(
                f"tableau grew to {len(candidates)} rays "
                f"(> max_rays={max_rays}) at metabolite "
                f"{split.internal_metabolites()[m]!r}"
            )
        # support-minimality pruning + dedup by support
        supports = [_support(flux) for _, flux in candidates]
        keep: list[tuple[list[Fraction], list[Fraction]]] = []
        seen: set[frozenset[int]] = set()
        for i, cand in enumerate(candidates):
            si = supports[i]
            if not si or si in seen:
                continue
            minimal = True
            for j2, sj in enumerate(supports):
                if j2 != i and sj and sj < si:
                    minimal = False
                    break
            if minimal:
                seen.add(si)
                keep.append(cand)
        rays = keep
    # fold split reactions back onto the originals
    n_orig = network.n_reactions
    folded: set[tuple[int, ...]] = set()
    for _, flux in rays:
        net_flux = [Fraction(0)] * n_orig
        for j in range(n_rx):
            o = origin[j]
            if o >= 0:
                net_flux[o] += flux[j]
            else:
                net_flux[-o - 1] -= flux[j]
        if all(f == 0 for f in net_flux):
            continue  # spurious forward/backward two-cycle
        folded.add(_normalize_ray(net_flux))
    pathways = sorted(folded)
    # sanity: every pathway must satisfy steady state
    for p in pathways:
        if not network.flux_is_steady(np.asarray(p, dtype=np.float64)):
            raise SolverError(
                f"enumerated pathway violates steady state: {p}"
            )
    return ExtremePathwayResult(
        pathways=pathways,
        reaction_names=[r.name for r in network.reactions],
    )
