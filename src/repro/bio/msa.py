"""Progressive multiple sequence alignment (ClustalXP-style).

The paper cites "the construction of ClustalXP for high-performance
multiple sequence alignment" as a consumer of its framework.  ClustalXP is
closed; this module rebuilds the algorithmic skeleton from scratch:

1. **distance stage** — all-pairs global alignments give a distance
   matrix (``1 − identity``).  This is the embarrassingly parallel stage
   ClustalXP distributes, exposed here with an optional multiprocessing
   fan-out (``n_workers``);
2. **guide tree** — neighbor joining on the distance matrix;
3. **progressive stage** — profiles are aligned pairwise up the guide
   tree with a profile–profile Needleman–Wunsch whose column score is the
   mean pairwise residue score.

The result keeps input order: row ``i`` of the MSA is sequence ``i``
gapped.  :func:`sum_of_pairs` scores an MSA for the tests/benchmarks.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.bio.pairwise import needleman_wunsch

__all__ = [
    "distance_matrix",
    "neighbor_joining",
    "TreeNode",
    "progressive_alignment",
    "sum_of_pairs",
]


def _pair_distance(args: tuple[str, str]) -> float:
    a, b = args
    res = needleman_wunsch(a, b)
    return 1.0 - res.identity


def distance_matrix(
    seqs: list[str], n_workers: int = 1
) -> np.ndarray:
    """All-pairs alignment distances (``1 − identity``), symmetric.

    ``n_workers > 1`` distributes the pair alignments over a process pool
    — the ClustalXP parallel stage.
    """
    n = len(seqs)
    d = np.zeros((n, n), dtype=np.float64)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if n_workers > 1 and len(pairs) > 1:
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        with ctx.Pool(processes=n_workers) as pool:
            vals = pool.map(
                _pair_distance, [(seqs[i], seqs[j]) for i, j in pairs]
            )
    else:
        vals = [_pair_distance((seqs[i], seqs[j])) for i, j in pairs]
    for (i, j), v in zip(pairs, vals):
        d[i, j] = d[j, i] = v
    return d


@dataclass(frozen=True)
class TreeNode:
    """Binary guide-tree node; leaves carry a sequence index."""

    index: int | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.index is not None

    def leaves(self) -> list[int]:
        """Sequence indices under this node, left to right."""
        if self.is_leaf:
            return [self.index]
        return self.left.leaves() + self.right.leaves()


def neighbor_joining(dist: np.ndarray) -> TreeNode:
    """Neighbor-joining guide tree from a symmetric distance matrix.

    Returns an (unrooted-agglomerated) binary topology adequate for
    progressive alignment; branch lengths are not retained.
    """
    d = np.array(dist, dtype=np.float64, copy=True)
    n = d.shape[0]
    if d.shape != (n, n):
        raise AlignmentError(f"distance matrix must be square, got {d.shape}")
    if n == 0:
        raise AlignmentError("cannot build a tree from zero sequences")
    nodes: list[TreeNode] = [TreeNode(index=i) for i in range(n)]
    active = list(range(n))
    while len(active) > 2:
        m = len(active)
        sub = d[np.ix_(active, active)]
        r = sub.sum(axis=1)
        q = (m - 2) * sub - r[:, None] - r[None, :]
        np.fill_diagonal(q, np.inf)
        ai, aj = np.unravel_index(int(np.argmin(q)), q.shape)
        if ai > aj:
            ai, aj = aj, ai
        i, j = active[ai], active[aj]
        merged = TreeNode(left=nodes[i], right=nodes[j])
        # distances from the new node to the others (NJ update)
        new_row = 0.5 * (d[i, :] + d[j, :] - d[i, j])
        d = np.vstack([d, new_row[None, :]])
        new_col = np.append(new_row, 0.0)
        d = np.hstack([d, new_col[:, None]])
        nodes.append(merged)
        active = [x for x in active if x not in (i, j)]
        active.append(d.shape[0] - 1)
    if len(active) == 2:
        root = TreeNode(left=nodes[active[0]], right=nodes[active[1]])
    else:
        root = nodes[active[0]]
    return root


def _profile_scores(
    cols_a: np.ndarray, cols_b: np.ndarray, match: float, mismatch: float,
    gap_residue: float,
) -> np.ndarray:
    """Mean pairwise score between every column pair of two profiles.

    ``cols_x`` is a ``(length, n_seqs)`` byte matrix; 0 encodes a gap.
    A gap paired with a residue scores ``gap_residue``; gap–gap scores 0.
    """
    la, na = cols_a.shape
    lb, nb = cols_b.shape
    total = np.zeros((la, lb), dtype=np.float64)
    for x in range(na):
        col_a = cols_a[:, x]
        a_res = col_a != 0
        for y in range(nb):
            col_b = cols_b[:, y]
            b_res = col_b != 0
            eq = col_a[:, None] == col_b[None, :]
            both = a_res[:, None] & b_res[None, :]
            one = a_res[:, None] ^ b_res[None, :]
            total += np.where(
                both, np.where(eq, match, mismatch),
                np.where(one, gap_residue, 0.0),
            )
    return total / (na * nb)


def _align_profiles(
    rows_a: list[str], rows_b: list[str],
    match: float, mismatch: float, gap: float, gap_residue: float,
) -> tuple[list[str], list[str]]:
    """Profile–profile NW; returns both profiles re-gapped to equal length."""
    la = len(rows_a[0])
    lb = len(rows_b[0])
    if la == 0 or lb == 0:
        pad_a = "-" * lb
        pad_b = "-" * la
        return (
            [r + pad_a for r in rows_a],
            [pad_b + r for r in rows_b],
        )
    cols_a = np.array(
        [[0 if c == "-" else ord(c) for c in r] for r in rows_a],
        dtype=np.uint8,
    ).T
    cols_b = np.array(
        [[0 if c == "-" else ord(c) for c in r] for r in rows_b],
        dtype=np.uint8,
    ).T
    sub = _profile_scores(cols_a, cols_b, match, mismatch, gap_residue)
    score = np.zeros((la + 1, lb + 1), dtype=np.float64)
    ptr = np.zeros((la + 1, lb + 1), dtype=np.int8)
    score[0, :] = gap * np.arange(lb + 1)
    score[:, 0] = gap * np.arange(la + 1)
    ptr[0, 1:] = 3
    ptr[1:, 0] = 2
    for i in range(1, la + 1):
        diag = score[i - 1, :-1] + sub[i - 1]
        up_base = score[i - 1, 1:] + gap
        row = score[i]
        for j in range(1, lb + 1):
            d = diag[j - 1]
            u = up_base[j - 1]
            left = row[j - 1] + gap
            best, p = d, 1
            if u > best:
                best, p = u, 2
            if left > best:
                best, p = left, 3
            row[j] = best
            ptr[i, j] = p
    # traceback -> column operations
    ops: list[int] = []
    i, j = la, lb
    while i > 0 or j > 0:
        p = ptr[i, j]
        ops.append(p)
        if p == 1:
            i -= 1
            j -= 1
        elif p == 2:
            i -= 1
        else:
            j -= 1
    ops.reverse()
    out_a = ["" for _ in rows_a]
    out_b = ["" for _ in rows_b]
    i = j = 0
    for p in ops:
        if p == 1:
            for r, row_str in enumerate(rows_a):
                out_a[r] += row_str[i]
            for r, row_str in enumerate(rows_b):
                out_b[r] += row_str[j]
            i += 1
            j += 1
        elif p == 2:
            for r, row_str in enumerate(rows_a):
                out_a[r] += row_str[i]
            for r in range(len(rows_b)):
                out_b[r] += "-"
            i += 1
        else:
            for r in range(len(rows_a)):
                out_a[r] += "-"
            for r, row_str in enumerate(rows_b):
                out_b[r] += row_str[j]
            j += 1
    return out_a, out_b


def progressive_alignment(
    seqs: list[str],
    tree: TreeNode | None = None,
    match: float = 1.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
    gap_residue: float = -1.5,
    n_workers: int = 1,
) -> list[str]:
    """Align sequences progressively along a guide tree.

    When ``tree`` is omitted it is built by neighbor joining on the
    alignment distance matrix (``n_workers`` parallelises that stage).
    Returns gapped rows in input order, all equal length.
    """
    if not seqs:
        return []
    if len(seqs) == 1:
        return [seqs[0]]
    if any(("-" in s) for s in seqs):
        raise AlignmentError("input sequences must be ungapped")
    if tree is None:
        tree = neighbor_joining(distance_matrix(seqs, n_workers=n_workers))

    def align_node(node: TreeNode) -> tuple[list[int], list[str]]:
        if node.is_leaf:
            return [node.index], [seqs[node.index]]
        idx_l, rows_l = align_node(node.left)
        idx_r, rows_r = align_node(node.right)
        out_l, out_r = _align_profiles(
            rows_l, rows_r, match, mismatch, gap, gap_residue
        )
        return idx_l + idx_r, out_l + out_r

    indices, rows = align_node(tree)
    if sorted(indices) != list(range(len(seqs))):
        raise AlignmentError("guide tree does not cover every sequence")
    ordered = [""] * len(seqs)
    for pos, row in zip(indices, rows):
        ordered[pos] = row
    return ordered


def sum_of_pairs(
    msa: list[str],
    match: float = 1.0,
    mismatch: float = -1.0,
    gap_residue: float = -1.5,
) -> float:
    """Sum-of-pairs score of an MSA (gap–gap columns score 0)."""
    if not msa:
        return 0.0
    length = len(msa[0])
    if any(len(r) != length for r in msa):
        raise AlignmentError("MSA rows must share one length")
    total = 0.0
    for i in range(len(msa)):
        for j in range(i + 1, len(msa)):
            for x, y in zip(msa[i], msa[j]):
                if x == "-" and y == "-":
                    continue
                if x == "-" or y == "-":
                    total += gap_residue
                elif x == y:
                    total += match
                else:
                    total += mismatch
    return total
