"""Pairwise correlation matrices (the paper's pipeline step 2).

The paper builds its graphs via "pairwise rank coefficient calculation" —
Spearman rank correlation across conditions — then thresholds.  Both
Spearman and Pearson are provided; Spearman is Pearson on per-row ranks
(midranks for ties), computed fully vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = ["pearson_correlation", "spearman_correlation", "rank_rows"]


def _validate(matrix: np.ndarray) -> np.ndarray:
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ParameterError(f"expected 2-D matrix, got shape {m.shape}")
    if m.shape[1] < 2:
        raise ParameterError(
            f"need at least 2 conditions to correlate, got {m.shape[1]}"
        )
    if np.isnan(m).any():
        raise ParameterError(
            "matrix contains NaN; impute first "
            "(repro.bio.expression.impute_missing)"
        )
    return m


def pearson_correlation(matrix: np.ndarray) -> np.ndarray:
    """Gene-by-gene Pearson correlation of a (genes, conditions) matrix.

    Rows with zero variance correlate 0 with everything (and 1 with
    themselves), avoiding NaN pollution from flat probes.
    """
    m = _validate(matrix)
    centered = m - m.mean(axis=1, keepdims=True)
    norms = np.sqrt((centered ** 2).sum(axis=1))
    flat = norms == 0.0
    safe = np.where(flat, 1.0, norms)
    unit = centered / safe[:, None]
    corr = unit @ unit.T
    corr[flat, :] = 0.0
    corr[:, flat] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def rank_rows(matrix: np.ndarray) -> np.ndarray:
    """Midrank transform of each row (ties share the average rank)."""
    m = np.asarray(matrix, dtype=np.float64)
    n_rows, n_cols = m.shape
    ranks = np.empty_like(m)
    for i in range(n_rows):
        row = m[i]
        order = np.argsort(row, kind="stable")
        r = np.empty(n_cols, dtype=np.float64)
        r[order] = np.arange(1, n_cols + 1, dtype=np.float64)
        # average ranks over tie groups
        sorted_vals = row[order]
        start = 0
        for j in range(1, n_cols + 1):
            if j == n_cols or sorted_vals[j] != sorted_vals[start]:
                if j - start > 1:
                    avg = (start + 1 + j) / 2.0
                    r[order[start:j]] = avg
                start = j
        ranks[i] = r
    return ranks


def spearman_correlation(matrix: np.ndarray) -> np.ndarray:
    """Spearman rank correlation: Pearson on midranked rows.

    This is the paper's "pairwise rank coefficient calculation".
    """
    m = _validate(matrix)
    return pearson_correlation(rank_rows(m))
