"""Pathway alignment by dynamic programming (PathBLAST-style).

The paper: "Once the data has been cleaned, one can discover
uncharacterized functional modules, by looking for conserved protein
interaction pathways using pathway alignment based on optimization
techniques such as dynamic programming."

A *pathway* here is a linear chain of proteins (as in PathBLAST's
path-vs-path mode).  Two pathways from different organisms are aligned
with a Needleman–Wunsch-style DP whose substitution score comes from a
user-supplied protein homology function — by default string equality, but
any callable (e.g. one backed by :mod:`repro.bio.pairwise` sequence
scores) can be plugged in.  Gaps model inserted/skipped pathway steps.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError

__all__ = ["PathwayAlignment", "align_pathways", "conserved_segments"]


@dataclass(frozen=True)
class PathwayAlignment:
    """An alignment of two protein pathways.

    ``pairs`` lists matched positions ``(i, j)`` (no gaps); the gapped
    views carry ``None`` for gap positions.
    """

    score: float
    aligned_a: tuple[str | None, ...]
    aligned_b: tuple[str | None, ...]

    @property
    def pairs(self) -> list[tuple[str, str]]:
        return [
            (x, y)
            for x, y in zip(self.aligned_a, self.aligned_b)
            if x is not None and y is not None
        ]

    def __len__(self) -> int:
        return len(self.aligned_a)


def _default_similarity(a: str, b: str) -> float:
    return 2.0 if a == b else -1.0


def align_pathways(
    pathway_a: Sequence[str],
    pathway_b: Sequence[str],
    similarity: Callable[[str, str], float] | None = None,
    gap: float = -1.0,
) -> PathwayAlignment:
    """Globally align two linear pathways.

    Parameters
    ----------
    pathway_a / pathway_b:
        Protein identifier chains (need not share an alphabet — the
        similarity function defines homology).
    similarity:
        Score for pairing two proteins; defaults to +2 match / −1
        mismatch on identifier equality.
    gap:
        Penalty (negative) for skipping a pathway step.
    """
    if gap >= 0:
        raise AlignmentError(f"gap penalty must be negative, got {gap}")
    sim = similarity or _default_similarity
    la, lb = len(pathway_a), len(pathway_b)
    score = np.zeros((la + 1, lb + 1), dtype=np.float64)
    ptr = np.zeros((la + 1, lb + 1), dtype=np.int8)
    score[0, :] = gap * np.arange(lb + 1)
    score[:, 0] = gap * np.arange(la + 1)
    ptr[0, 1:] = 3
    ptr[1:, 0] = 2
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            d = score[i - 1, j - 1] + sim(pathway_a[i - 1], pathway_b[j - 1])
            u = score[i - 1, j] + gap
            left = score[i, j - 1] + gap
            best, p = d, 1
            if u > best:
                best, p = u, 2
            if left > best:
                best, p = left, 3
            score[i, j] = best
            ptr[i, j] = p
    out_a: list[str | None] = []
    out_b: list[str | None] = []
    i, j = la, lb
    while i > 0 or j > 0:
        p = ptr[i, j]
        if p == 1:
            i -= 1
            j -= 1
            out_a.append(pathway_a[i])
            out_b.append(pathway_b[j])
        elif p == 2:
            i -= 1
            out_a.append(pathway_a[i])
            out_b.append(None)
        else:
            j -= 1
            out_a.append(None)
            out_b.append(pathway_b[j])
    return PathwayAlignment(
        score=float(score[la, lb]),
        aligned_a=tuple(reversed(out_a)),
        aligned_b=tuple(reversed(out_b)),
    )


def conserved_segments(
    alignment: PathwayAlignment,
    min_length: int = 2,
    require_identity: bool = True,
) -> list[list[tuple[str, str]]]:
    """Maximal runs of consecutively aligned steps (conserved modules).

    ``require_identity`` restricts runs to identical protein pairs —
    the "conserved protein interaction pathways" of the paper; set it
    False to accept any gap-free aligned run.
    """
    segments: list[list[tuple[str, str]]] = []
    current: list[tuple[str, str]] = []
    for x, y in zip(alignment.aligned_a, alignment.aligned_b):
        good = (
            x is not None
            and y is not None
            and (not require_identity or x == y)
        )
        if good:
            current.append((x, y))
        else:
            if len(current) >= min_length:
                segments.append(current)
            current = []
    if len(current) >= min_length:
        segments.append(current)
    return segments
