"""Synthetic biological sequences and mutation models.

Substrate for the alignment modules (:mod:`repro.bio.pairwise`,
:mod:`repro.bio.msa`): deterministic generation of DNA/protein sequences
and of *sequence families* — an ancestor mutated along a star phylogeny —
so alignment quality can be asserted against known divergence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "random_sequence",
    "mutate",
    "sequence_family",
]

DNA_ALPHABET = "ACGT"
PROTEIN_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"


def random_sequence(
    length: int, alphabet: str = DNA_ALPHABET, seed: int = 0
) -> str:
    """Uniform random sequence of the given length."""
    if length < 0:
        raise ParameterError(f"length must be >= 0, got {length}")
    if not alphabet:
        raise ParameterError("alphabet must be non-empty")
    rng = np.random.default_rng(seed)
    letters = list(alphabet)
    idx = rng.integers(0, len(letters), size=length)
    return "".join(letters[i] for i in idx)


def mutate(
    seq: str,
    substitution_rate: float,
    indel_rate: float = 0.0,
    alphabet: str = DNA_ALPHABET,
    seed: int = 0,
) -> str:
    """Apply point substitutions and indels to a sequence.

    Each position independently substitutes with probability
    ``substitution_rate`` (to a *different* letter) and, separately,
    deletes or inserts with probability ``indel_rate`` (split evenly).
    """
    for rate, name in (
        (substitution_rate, "substitution_rate"),
        (indel_rate, "indel_rate"),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ParameterError(f"{name} must be in [0, 1], got {rate}")
    rng = np.random.default_rng(seed)
    letters = list(alphabet)
    out: list[str] = []
    for ch in seq:
        r = rng.random()
        if r < indel_rate / 2:
            continue  # deletion
        if r < indel_rate:
            out.append(letters[int(rng.integers(0, len(letters)))])
        if rng.random() < substitution_rate:
            choices = [c for c in letters if c != ch]
            if choices:
                ch = choices[int(rng.integers(0, len(choices)))]
        out.append(ch)
    return "".join(out)


def sequence_family(
    ancestor_length: int,
    n_members: int,
    substitution_rate: float = 0.1,
    indel_rate: float = 0.02,
    alphabet: str = DNA_ALPHABET,
    seed: int = 0,
) -> tuple[str, list[str]]:
    """An ancestor plus ``n_members`` independently mutated descendants.

    Returns ``(ancestor, members)``; each member derives from the
    ancestor with its own seeded mutation draw (star phylogeny).
    """
    if n_members < 1:
        raise ParameterError(f"need >= 1 members, got {n_members}")
    ancestor = random_sequence(ancestor_length, alphabet, seed)
    members = [
        mutate(
            ancestor,
            substitution_rate,
            indel_rate,
            alphabet,
            seed=seed + 7919 * (i + 1),
        )
        for i in range(n_members)
    ]
    return ancestor, members
