"""Correlation-threshold selection via maximum clique (Section 2.1).

The paper: "Computing maximum clique is foundational in a variety of
biological settings, for example, when establishing the edge-weight
threshold in microarray analysis."  The idea (Langston's group): sweep
candidate thresholds over the correlation matrix; as the threshold drops,
the maximum clique size stays near the noise floor and then *inflects*
sharply once spurious correlations start gluing modules together.  The
threshold at the inflection separates biological signal from noise.

:func:`threshold_sweep` computes the (threshold, graph density, maximum
clique size) series; :func:`select_threshold` picks the knee — the
loosest threshold whose clique size does not exceed the noise-floor
prediction by more than the tolerance factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.bio.coexpression import correlation_graph
from repro.core.maximum_clique import maximum_clique_size

__all__ = ["SweepPoint", "threshold_sweep", "select_threshold"]


@dataclass(frozen=True)
class SweepPoint:
    """One threshold of the sweep."""

    threshold: float
    n_edges: int
    density: float
    max_clique: int


def threshold_sweep(
    corr: np.ndarray,
    thresholds: list[float] | None = None,
    absolute: bool = True,
) -> list[SweepPoint]:
    """Maximum clique size across a descending threshold sweep.

    Parameters
    ----------
    corr: square symmetric correlation matrix.
    thresholds: candidate cutoffs; defaults to 0.95 down to 0.50 in
        steps of 0.05.  Evaluated in descending order.
    absolute: threshold ``|r|`` (default) or signed ``r``.
    """
    if thresholds is None:
        thresholds = [round(0.95 - 0.05 * i, 2) for i in range(10)]
    if not thresholds:
        raise ParameterError("need at least one threshold")
    points: list[SweepPoint] = []
    for t in sorted(thresholds, reverse=True):
        g = correlation_graph(corr, t, absolute=absolute)
        points.append(
            SweepPoint(
                threshold=t,
                n_edges=g.m,
                density=g.density(),
                max_clique=maximum_clique_size(g),
            )
        )
    return points


def select_threshold(
    points: list[SweepPoint],
    inflection_factor: float = 2.0,
) -> SweepPoint:
    """Pick the loosest threshold before the clique-size inflection.

    Walks the sweep from the strictest threshold down; the first point
    whose maximum clique exceeds ``inflection_factor`` times the running
    median of the earlier points marks the noise break, and the point
    *before* it is returned.  When no inflection occurs, the loosest
    sweep point is returned (the data supports it).
    """
    if not points:
        raise ParameterError("empty sweep")
    if inflection_factor <= 1.0:
        raise ParameterError(
            f"inflection factor must exceed 1, got {inflection_factor}"
        )
    ordered = sorted(points, key=lambda p: -p.threshold)
    history: list[int] = []
    for i, point in enumerate(ordered):
        if history:
            floor = float(np.median(history))
            if floor > 0 and point.max_clique > inflection_factor * floor:
                return ordered[max(0, i - 1)]
        history.append(max(1, point.max_clique))
    return ordered[-1]
