"""Metabolic network models: metabolites, reactions, stoichiometry.

The paper's introduction grounds the framework in systemic pathway
analysis: "the enumeration of a complete set of 'systemically independent'
metabolic pathways, termed 'extreme pathways', is at the core of these
approaches."  This module provides the substrate those methods need — a
stoichiometric model with reversibility flags and exact (rational)
coefficients — and :mod:`repro.bio.extreme_pathways` enumerates the
pathways on top of it.

Conventions
-----------
* Metabolites are *internal* unless declared external; steady state
  (``S v = 0``) is imposed on internal metabolites only — external ones
  are sources/sinks (the usual convention for exchange fluxes).
* A reversible reaction may carry flux of either sign; enumeration splits
  it into forward/backward irreversible halves.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.errors import ParameterError

__all__ = ["Reaction", "MetabolicNetwork", "example_network"]


@dataclass(frozen=True)
class Reaction:
    """One reaction: named stoichiometry plus reversibility.

    ``stoich`` maps metabolite name to a (rational) coefficient — negative
    for substrates, positive for products.

    Examples
    --------
    >>> r = Reaction("v1", {"A": -1, "B": 1})
    >>> r.reversible
    False
    """

    name: str
    stoich: dict[str, Fraction | int]
    reversible: bool = False

    def __post_init__(self) -> None:
        if not self.stoich:
            raise ParameterError(f"reaction {self.name!r} has no metabolites")
        clean = {
            m: Fraction(c) for m, c in self.stoich.items() if Fraction(c) != 0
        }
        if not clean:
            raise ParameterError(
                f"reaction {self.name!r} has all-zero stoichiometry"
            )
        object.__setattr__(self, "stoich", clean)


class MetabolicNetwork:
    """A stoichiometric metabolic model.

    Parameters
    ----------
    reactions: the model's reactions (names must be unique).
    external: metabolite names exempt from the steady-state constraint.

    Examples
    --------
    >>> net = example_network()
    >>> net.n_reactions, len(net.internal_metabolites())
    (6, 3)
    """

    def __init__(
        self,
        reactions: list[Reaction],
        external: set[str] | None = None,
    ):
        names = [r.name for r in reactions]
        if len(set(names)) != len(names):
            raise ParameterError("duplicate reaction names")
        self.reactions = list(reactions)
        self.external = set(external or ())
        mets: list[str] = []
        seen = set()
        for r in self.reactions:
            for m in r.stoich:
                if m not in seen:
                    seen.add(m)
                    mets.append(m)
        self.metabolites = mets
        unknown = self.external - seen
        if unknown:
            raise ParameterError(
                f"external metabolites not in any reaction: {sorted(unknown)}"
            )

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    @property
    def n_metabolites(self) -> int:
        return len(self.metabolites)

    def internal_metabolites(self) -> list[str]:
        """Metabolites subject to the steady-state constraint."""
        return [m for m in self.metabolites if m not in self.external]

    def stoichiometric_matrix(
        self, internal_only: bool = True
    ) -> np.ndarray:
        """Dense ``(metabolites, reactions)`` matrix of float coefficients."""
        rows = (
            self.internal_metabolites()
            if internal_only
            else self.metabolites
        )
        index = {m: i for i, m in enumerate(rows)}
        s = np.zeros((len(rows), self.n_reactions), dtype=np.float64)
        for j, r in enumerate(self.reactions):
            for m, c in r.stoich.items():
                i = index.get(m)
                if i is not None:
                    s[i, j] = float(c)
        return s

    def exact_matrix(self, internal_only: bool = True) -> list[list[Fraction]]:
        """Exact rational ``(metabolites, reactions)`` matrix."""
        rows = (
            self.internal_metabolites()
            if internal_only
            else self.metabolites
        )
        index = {m: i for i, m in enumerate(rows)}
        s = [
            [Fraction(0)] * self.n_reactions for _ in range(len(rows))
        ]
        for j, r in enumerate(self.reactions):
            for m, c in r.stoich.items():
                i = index.get(m)
                if i is not None:
                    s[i][j] = Fraction(c)
        return s

    def split_reversible(self) -> tuple["MetabolicNetwork", list[int]]:
        """Expand reversible reactions into forward/backward halves.

        Returns ``(network, origin)`` where ``origin[j]`` maps expanded
        reaction ``j`` back to the original reaction index, with backward
        halves encoded as ``-(index + 1)``.
        """
        expanded: list[Reaction] = []
        origin: list[int] = []
        for idx, r in enumerate(self.reactions):
            expanded.append(
                Reaction(r.name + ("_fwd" if r.reversible else ""),
                         dict(r.stoich), reversible=False)
            )
            origin.append(idx)
            if r.reversible:
                expanded.append(
                    Reaction(
                        r.name + "_bwd",
                        {m: -c for m, c in r.stoich.items()},
                        reversible=False,
                    )
                )
                origin.append(-(idx + 1))
        return MetabolicNetwork(expanded, set(self.external)), origin

    def flux_is_steady(self, flux: np.ndarray, atol: float = 1e-9) -> bool:
        """True when ``S v = 0`` on internal metabolites."""
        v = np.asarray(flux, dtype=np.float64)
        if v.shape != (self.n_reactions,):
            raise ParameterError(
                f"flux vector must have length {self.n_reactions}, "
                f"got {v.shape}"
            )
        s = self.stoichiometric_matrix()
        return bool(np.allclose(s @ v, 0.0, atol=atol))

    def __repr__(self) -> str:
        return (
            f"MetabolicNetwork({self.n_metabolites} metabolites, "
            f"{self.n_reactions} reactions, "
            f"{len(self.external)} external)"
        )


def example_network() -> MetabolicNetwork:
    """The classic branched toy network used across the pathway literature.

    ``Aext -> A -> B -> Bext`` with a bypass ``A -> C -> B`` and an
    external drain from ``C``: small enough to enumerate by hand, rich
    enough to have three extreme pathways.
    """
    return MetabolicNetwork(
        [
            Reaction("uptake", {"Aext": -1, "A": 1}),
            Reaction("v1", {"A": -1, "B": 1}),
            Reaction("v2", {"A": -1, "C": 1}),
            Reaction("v3", {"C": -1, "B": 1}),
            Reaction("drainB", {"B": -1, "Bext": 1}),
            Reaction("drainC", {"C": -1, "Cext": 1}),
        ],
        external={"Aext", "Bext", "Cext"},
    )
