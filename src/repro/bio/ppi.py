"""Protein-interaction networks: noise model and Boolean cleaning.

The paper: "the yeast two-hybrid method is considered the best available
strategy for mapping protein–protein interactions on a large scale despite
the high potential for false positive identifications.  [...] To extract
true interactions from the false positive and false negative rates, one
can represent the data as undirected graphs [...] Then, queries consisting
of Boolean graph operations (e.g., graph intersection and at-least-k-of-n
over multiple graphs) can be used to refine the data."

This module simulates the experimental side — noisy replicate observations
of a ground-truth interaction network — and wraps the Boolean cleaning
queries from :mod:`repro.core.graph_ops`, plus precision/recall scoring of
the recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.core.clique_enumerator import EnumerationResult
from repro.core.graph import Graph
from repro.core.graph_ops import at_least_k_of_n
from repro.engine import EnumerationConfig, run_enumeration

__all__ = [
    "observe_with_noise",
    "simulate_replicates",
    "clean_by_voting",
    "interaction_modules",
    "RecoveryScore",
    "score_recovery",
]


def observe_with_noise(
    truth: Graph, fp_rate: float, fn_rate: float, seed: int = 0
) -> Graph:
    """One noisy observation of a true interaction network.

    Every true edge is missed with probability ``fn_rate``; every true
    non-edge appears with probability ``fp_rate`` (the two-hybrid false
    positive mode).
    """
    for rate, name in ((fp_rate, "fp_rate"), (fn_rate, "fn_rate")):
        if not 0.0 <= rate <= 1.0:
            raise ParameterError(f"{name} must be in [0, 1], got {rate}")
    rng = np.random.default_rng(seed)
    g = Graph(truth.n)
    iu, ju = np.triu_indices(truth.n, k=1)
    for u, v in zip(iu.tolist(), ju.tolist()):
        if truth.has_edge(u, v):
            if rng.random() >= fn_rate:
                g.add_edge(u, v)
        else:
            if rng.random() < fp_rate:
                g.add_edge(u, v)
    return g


def simulate_replicates(
    truth: Graph,
    n_replicates: int,
    fp_rate: float,
    fn_rate: float,
    seed: int = 0,
) -> list[Graph]:
    """Independent noisy replicate observations (seeded deterministically)."""
    if n_replicates < 1:
        raise ParameterError(
            f"need at least one replicate, got {n_replicates}"
        )
    return [
        observe_with_noise(truth, fp_rate, fn_rate, seed=seed + 1000 * i)
        for i in range(n_replicates)
    ]


def clean_by_voting(observations: list[Graph], k: int) -> Graph:
    """Keep interactions seen in at least ``k`` replicates.

    The paper's at-least-k-of-n refinement query, executed word-parallel
    on the bit-adjacency matrices.
    """
    return at_least_k_of_n(observations, k)


def interaction_modules(
    observations: list[Graph],
    k: int,
    config: EnumerationConfig | None = None,
) -> tuple[Graph, EnumerationResult]:
    """Clean replicates by voting, then extract the protein complexes.

    The paper's two-step PPI workflow in one call: the Boolean
    at-least-``k``-of-n query refines the noisy observations, and the
    Clique Enumerator — on whichever :mod:`repro.engine` backend
    ``config`` names (default: ``"incore"`` from size 3) — extracts the
    densely interacting modules from the cleaned network.  Returns the
    cleaned graph and the canonical enumeration result.
    """
    cleaned = clean_by_voting(observations, k)
    if config is None:
        config = EnumerationConfig(k_min=3)
    return cleaned, run_enumeration(cleaned, config)


@dataclass(frozen=True)
class RecoveryScore:
    """Precision / recall / F1 of a cleaned network against the truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        d = self.true_positives + self.false_positives
        return self.true_positives / d if d else 1.0

    @property
    def recall(self) -> float:
        d = self.true_positives + self.false_negatives
        return self.true_positives / d if d else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_recovery(truth: Graph, predicted: Graph) -> RecoveryScore:
    """Edge-level precision/recall of ``predicted`` against ``truth``."""
    if truth.n != predicted.n:
        raise ParameterError(
            f"graphs have different vertex counts: {truth.n} vs "
            f"{predicted.n}"
        )
    tp = int(np.bitwise_count(truth.adj & predicted.adj).sum()) // 2
    fp = predicted.m - tp
    fn = truth.m - tp
    return RecoveryScore(
        true_positives=tp, false_positives=fp, false_negatives=fn
    )
