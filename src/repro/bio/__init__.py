"""Systems-biology substrates the paper's framework targets.

* :mod:`repro.bio.expression` / :mod:`repro.bio.correlation` /
  :mod:`repro.bio.coexpression` — the microarray-to-graph pipeline that
  produced the paper's test graphs;
* :mod:`repro.bio.stoichiometry` / :mod:`repro.bio.extreme_pathways` —
  metabolic networks and extreme-pathway enumeration;
* :mod:`repro.bio.ppi` — noisy interaction data and Boolean cleaning;
* :mod:`repro.bio.pathway_alignment` — PathBLAST-style DP alignment;
* :mod:`repro.bio.fvs` — feedback vertex set (phylogenetic footprinting);
* :mod:`repro.bio.sequences` / :mod:`repro.bio.pairwise` /
  :mod:`repro.bio.msa` — sequence substrate and ClustalXP-style MSA.
"""

from repro.bio.expression import (
    ExpressionDataSet,
    ModuleSpec,
    impute_missing,
    inject_missing,
    log2_transform,
    quantile_normalize,
    synthetic_expression,
    zscore_normalize,
)
from repro.bio.correlation import (
    pearson_correlation,
    rank_rows,
    spearman_correlation,
)
from repro.bio.coexpression import (
    CoexpressionResult,
    coexpression_cliques,
    coexpression_pipeline,
    correlation_graph,
    submit_coexpression_sweep,
    threshold_for_density,
)
from repro.bio.stoichiometry import (
    MetabolicNetwork,
    Reaction,
    example_network,
)
from repro.bio.extreme_pathways import ExtremePathwayResult, extreme_pathways
from repro.bio.ppi import (
    RecoveryScore,
    clean_by_voting,
    observe_with_noise,
    score_recovery,
    simulate_replicates,
)
from repro.bio.pathway_alignment import (
    PathwayAlignment,
    align_pathways,
    conserved_segments,
)
from repro.bio.fvs import (
    feedback_vertex_set_decision,
    is_acyclic,
    is_feedback_vertex_set,
    minimum_feedback_vertex_set,
    shortest_cycle,
)
from repro.bio.sequences import (
    DNA_ALPHABET,
    PROTEIN_ALPHABET,
    mutate,
    random_sequence,
    sequence_family,
)
from repro.bio.pairwise import (
    AlignmentResult,
    needleman_wunsch,
    percent_identity,
    smith_waterman,
)
from repro.bio.threshold_selection import (
    SweepPoint,
    select_threshold,
    threshold_sweep,
)
from repro.bio.motifs import (
    PlantedMotifInstance,
    build_occurrence_graph,
    find_motif,
    hamming,
    plant_motif,
)
from repro.bio.phylo_compat import (
    PhyloNode,
    build_perfect_phylogeny,
    compatibility_graph,
    four_gamete_compatible,
    largest_compatible_set,
)
from repro.bio.msa import (
    TreeNode,
    distance_matrix,
    neighbor_joining,
    progressive_alignment,
    sum_of_pairs,
)

__all__ = [
    "ExpressionDataSet",
    "ModuleSpec",
    "synthetic_expression",
    "zscore_normalize",
    "quantile_normalize",
    "log2_transform",
    "inject_missing",
    "impute_missing",
    "pearson_correlation",
    "spearman_correlation",
    "rank_rows",
    "CoexpressionResult",
    "coexpression_cliques",
    "coexpression_pipeline",
    "correlation_graph",
    "submit_coexpression_sweep",
    "threshold_for_density",
    "MetabolicNetwork",
    "Reaction",
    "example_network",
    "ExtremePathwayResult",
    "extreme_pathways",
    "RecoveryScore",
    "observe_with_noise",
    "simulate_replicates",
    "clean_by_voting",
    "score_recovery",
    "PathwayAlignment",
    "align_pathways",
    "conserved_segments",
    "is_acyclic",
    "shortest_cycle",
    "feedback_vertex_set_decision",
    "minimum_feedback_vertex_set",
    "is_feedback_vertex_set",
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "random_sequence",
    "mutate",
    "sequence_family",
    "AlignmentResult",
    "needleman_wunsch",
    "smith_waterman",
    "percent_identity",
    "TreeNode",
    "distance_matrix",
    "neighbor_joining",
    "progressive_alignment",
    "sum_of_pairs",
    "PlantedMotifInstance",
    "build_occurrence_graph",
    "find_motif",
    "hamming",
    "plant_motif",
    "PhyloNode",
    "build_perfect_phylogeny",
    "compatibility_graph",
    "four_gamete_compatible",
    "largest_compatible_set",
    "SweepPoint",
    "select_threshold",
    "threshold_sweep",
]
