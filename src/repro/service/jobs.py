"""Job records for the enumeration service.

A :class:`JobSpec` is everything needed to run one enumeration as a
unit of queued work: the graph (in-memory or a file reference), the
frozen :class:`~repro.engine.config.EnumerationConfig`, the sink spec
(see :mod:`repro.service.sinks`), a priority, and caching policy.  The
spec is frozen and validated at submission, mirroring the engine's
fail-before-work contract.

A :class:`Job` is the mutable service-side record of one spec's
lifecycle — ``PENDING → RUNNING → DONE | FAILED | CANCELLED`` — with
wall-clock timings, the canonical
:class:`~repro.core.clique_enumerator.EnumerationResult` attached on
success, and a ``threading.Event`` so clients can block on completion.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ParameterError
from repro.core.clique_enumerator import EnumerationResult
from repro.core.graph import Graph
from repro.engine.config import EnumerationConfig
from repro.service.sinks import validate_sink_spec

__all__ = ["JobStatus", "JobSpec", "Job"]


class JobStatus(enum.Enum):
    """Lifecycle states of a service job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One enumeration request, frozen at submission.

    Attributes
    ----------
    graph:
        The input graph — an in-memory :class:`~repro.core.graph.Graph`
        or a path string accepted by :func:`repro.core.graph_io.load`.
        Path-referenced graphs are loaded (and memoized by path and
        mtime) by the scheduler.
    config:
        The run configuration dispatched through
        :class:`~repro.engine.api.EnumerationEngine`.
    sink:
        Sink spec string (``collect``, ``count``, ``top_k:N``,
        ``jsonl:PATH``); validated at construction.
    priority:
        Higher runs first; ties run in submission order.
    use_cache:
        Consult / populate the scheduler's result cache for this job.
    label:
        Free-form tag surfaced in listings (e.g. the sweep threshold).
    """

    graph: Graph | str | Path
    config: EnumerationConfig = field(default_factory=EnumerationConfig)
    sink: str = "collect"
    priority: int = 0
    use_cache: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.graph, (Graph, str, Path)):
            raise ParameterError(
                "JobSpec.graph must be a Graph or a path, got "
                f"{type(self.graph).__name__}"
            )
        if not isinstance(self.config, EnumerationConfig):
            raise ParameterError(
                "JobSpec.config must be an EnumerationConfig, got "
                f"{type(self.config).__name__}"
            )
        # resolve the config against the backend registry *now*: an
        # unknown backend or an unsupported level store must be
        # refused at submission (with the exact ConfigError the engine
        # facade raises) instead of burning a queue slot on a job that
        # can only fail at dispatch.  The resolved config (k_min
        # promoted to the backend's floor) is stored back, so the
        # cache key and job listings describe the run that actually
        # executes.  Imported lazily: repro.engine's package import is
        # what registers the built-in backends.
        from repro.engine import get_backend
        from repro.engine.config import resolve_for_backend

        object.__setattr__(
            self,
            "config",
            resolve_for_backend(
                self.config, get_backend(self.config.backend)
            ),
        )
        validate_sink_spec(self.sink)
        if not isinstance(self.priority, int):
            raise ParameterError(
                f"priority must be an int, got {self.priority!r}"
            )


class Job:
    """Mutable service-side record of one submitted :class:`JobSpec`.

    Created by the scheduler; callers observe it.  All state moves
    through the scheduler's worker threads — client code should only
    read attributes and :meth:`wait`.
    """

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.status = JobStatus.PENDING
        self.result: EnumerationResult | None = None
        self.error: str | None = None
        self.cache_hit = False
        self.sink_summary: dict | None = None
        # admission-control view, set by the scheduler at submit: the
        # memory-model peak the job is charged against the budget, and
        # the spec config with a level_store="auto" resolved to the
        # concrete substrate the run will execute on (the cache key
        # and the engine dispatch both use the resolved config, so an
        # "auto" job can never conflate cache entries across
        # substrates).  Both stay at their defaults on schedulers
        # without a budget/prediction (e.g. direct Job construction).
        self.predicted_peak_bytes: int | None = None
        self.resolved_config = spec.config
        # bytes currently charged against the scheduler's budget;
        # nonzero exactly while the job is admitted (claim -> terminal)
        self._admitted_bytes = 0
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._done = threading.Event()
        self._cancel = threading.Event()
        # scheduler hook invoked on the terminal transition *before*
        # waiters wake: a waiter returning from wait() must already
        # observe the job's metrics fold
        self._on_terminal: Callable[[Job], None] | None = None

    # -- client-side observation --------------------------------------------

    def wait(self, timeout: float | None = None) -> "Job":
        """Block until the job is terminal; raises ``TimeoutError``."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.id} still {self.status.value} after {timeout}s"
            )
        return self

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._done.is_set()

    @property
    def queued_seconds(self) -> float:
        """Time spent waiting in the queue."""
        end = self.started_at or self.finished_at or time.time()
        return max(0.0, end - self.created_at)

    @property
    def run_seconds(self) -> float:
        """Time spent executing (0 until the job starts)."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at or time.time()
        return max(0.0, end - self.started_at)

    # -- scheduler-side transitions -----------------------------------------

    def _mark_running(self) -> None:
        self.status = JobStatus.RUNNING
        self.started_at = time.time()

    def _finish(self, status: JobStatus, error: str | None = None) -> None:
        self.status = status
        self.error = error
        self.finished_at = time.time()
        try:
            if self._on_terminal is not None:
                self._on_terminal(self)
        finally:
            self._done.set()

    # -- serialization -------------------------------------------------------

    def to_dict(self, include_cliques: bool = False) -> dict:
        """JSON-safe view for the wire protocol and listings."""
        out = {
            "id": self.id,
            "status": self.status.value,
            "label": self.spec.label,
            "sink": self.spec.sink,
            "priority": self.spec.priority,
            "backend": self.spec.config.backend,
            # the substrate the run executes on (an "auto" submission
            # shows the scheduler's resolution; the spec's value until
            # one happens)
            "level_store": self.resolved_config.level_store,
            "compute_domain": self.spec.config.compute_domain,
            "kernel": self.spec.config.kernel,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "queued_seconds": self.queued_seconds,
            "run_seconds": self.run_seconds,
            "sink_summary": self.sink_summary,
            # memory-model admission evidence: what the job was
            # charged against the budget vs what the run measured
            "predicted_peak_bytes": self.predicted_peak_bytes,
        }
        if self.result is not None:
            out["counters"] = self.result.counters.snapshot()
            out["completed"] = self.result.completed
            # parallel-substrate observability (threads/multiprocess):
            # worker count and scheduler transfers ride the same wire
            # payload, so `repro jobs` can show how a parallel job ran
            out["n_workers"] = self.result.n_workers
            out["transfers"] = self.result.transfers
            # compressed-domain observability: the resolved domain the
            # run actually executed on (a submitted "auto" resolves at
            # dispatch) plus the codec/kernel telemetry
            out["compute_domain"] = self.result.compute_domain
            out["kernel"] = self.result.kernel
            out["domain_stats"] = self.result.domain_stats
            # measured Figure 8 evidence (threads backend); None for
            # sequential or too-narrow runs
            out["load_balance"] = self.result.load_balance
            out["measured_peak_bytes"] = max(
                (ls.candidate_bytes for ls in self.result.level_stats),
                default=0,
            )
            out["n_cliques"] = (
                self.sink_summary["cliques"]
                if self.sink_summary
                else len(self.result.cliques)
            )
            if include_cliques:
                out["cliques"] = [list(c) for c in self.result.cliques]
        return out

    def __repr__(self) -> str:
        return (
            f"Job(id={self.id!r}, status={self.status.value}, "
            f"sink={self.spec.sink!r}, label={self.spec.label!r})"
        )
