"""Blocking client for the enumeration job service.

One :class:`ServiceClient` holds one socket (TCP or unix) for its whole
lifetime — a threshold sweep submits dozens of jobs over a single
connection, then waits on them.  Calls are serialized by a lock, so one
client instance may be shared across threads.

>>> with ServiceClient(("127.0.0.1", 7531)) as client:   # doctest: +SKIP
...     job_id = client.submit("ppi.json", k_min=3, sink="count")
...     job = client.wait(job_id)
...     print(job["sink_summary"]["cliques"])
"""

from __future__ import annotations

import socket
import threading
from pathlib import Path

from repro.errors import ServiceError
from repro.core.graph import Graph
from repro.engine.config import EnumerationConfig
from repro.service.jobs import JobSpec
from repro.service.protocol import decode_line, encode_line, spec_to_payload

__all__ = ["ServiceClient"]


class ServiceClient:
    """Synchronous JSON-lines client for :class:`~repro.service.server.
    EnumerationServer`.

    Parameters
    ----------
    address:
        ``(host, port)`` for TCP, or a path (str/``Path``) for a unix
        socket — the same value :attr:`EnumerationServer.address`
        reports.
    timeout:
        Socket timeout in seconds for individual calls (``None`` waits
        forever; server-side ``wait`` calls hold the line until the job
        finishes, so leave it ``None`` unless every job is budgeted).
    """

    def __init__(
        self,
        address: tuple[str, int] | str | Path,
        timeout: float | None = None,
    ):
        self.address = address
        try:
            if isinstance(address, (str, Path)):
                self._sock = socket.socket(
                    socket.AF_UNIX, socket.SOCK_STREAM
                )
                self._sock.connect(str(address))
            else:
                host, port = address
                self._sock = socket.create_connection((host, int(port)))
        except OSError as exc:
            # normalize every unreachable-service flavour (refused,
            # unroutable, timed out) to ConnectionError so callers and
            # the CLI handle one exception type
            raise ConnectionError(
                f"cannot connect to enumeration service at "
                f"{address!r}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._broken = False

    # -- transport -----------------------------------------------------------

    def call(self, op: str, **fields) -> dict:
        """One request/response round trip; raises :class:`ServiceError`
        on a transport failure or an ``ok: false`` reply."""
        request = {"op": op, **fields}
        with self._lock:
            if self._broken:
                raise ServiceError(
                    "connection is broken (a previous call failed "
                    "mid-exchange); open a new ServiceClient"
                )
            try:
                self._sock.sendall(encode_line(request))
                line = self._rfile.readline()
            except OSError as exc:
                # the request/response stream is now desynchronized (a
                # late response may still arrive) — poison the client
                # so later calls fail loudly instead of confusingly
                self._broken = True
                self.close()
                raise ServiceError(
                    f"service connection failed during {op!r}: {exc}"
                ) from exc
        if not line:
            raise ServiceError(
                f"service closed the connection during {op!r}"
            )
        response = decode_line(line)
        if not response.get("ok"):
            if response.get("timeout"):
                # mirror the in-process Job.wait contract: a deadline
                # is a TimeoutError, not a job failure
                raise TimeoutError(
                    response.get("error", f"service {op!r} timed out")
                )
            raise ServiceError(
                response.get("error", f"service refused {op!r}")
            )
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._rfile.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def ping(self) -> dict:
        """Liveness check; returns the server's version payload."""
        return self.call("ping")

    def submit(
        self,
        graph: Graph | str | Path,
        config: EnumerationConfig | None = None,
        sink: str = "collect",
        priority: int = 0,
        use_cache: bool = True,
        label: str = "",
        **config_kwargs,
    ) -> str:
        """Queue one enumeration job; returns its job id.

        ``graph`` travels inline when it is an in-memory
        :class:`Graph`, or as a server-side path otherwise.  The config
        is either given whole or assembled from keyword shorthand
        (``k_min=3, backend="ooc"``) — not both.
        """
        if config is not None and config_kwargs:
            raise ServiceError(
                "pass either a config object or config keywords, not both"
            )
        if config is None:
            config = EnumerationConfig(**config_kwargs)
        spec = JobSpec(
            graph=graph,
            config=config,
            sink=sink,
            priority=priority,
            use_cache=use_cache,
            label=label,
        )
        return self.call("submit", **spec_to_payload(spec))["job_id"]

    def submit_sweep(
        self,
        graphs: list[Graph | str | Path],
        config: EnumerationConfig | None = None,
        sink: str = "count",
        labels: list[str] | None = None,
        **config_kwargs,
    ) -> list[str]:
        """Submit one job per graph (a threshold sweep); returns the ids."""
        if labels is not None and len(labels) != len(graphs):
            raise ServiceError("labels must match graphs one-to-one")
        return [
            self.submit(
                g,
                config=config,
                sink=sink,
                label=labels[i] if labels else "",
                **config_kwargs,
            )
            for i, g in enumerate(graphs)
        ]

    def status(self, job_id: str) -> dict:
        """Current job state (non-blocking)."""
        return self.call("status", job_id=job_id)["job"]

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until the job is terminal; returns its final state.

        The wait holds this client's single connection (and its lock)
        for its whole duration — other threads sharing the client
        block until it returns.  To cancel a job another thread is
        waiting on, use a second client (connections are cheap) or
        give the wait a ``timeout`` and poll.
        """
        return self.call("wait", job_id=job_id, timeout=timeout)["job"]

    def result(self, job_id: str) -> dict:
        """Terminal job state including collected cliques (when any)."""
        return self.call("result", job_id=job_id)["job"]

    def cliques(self, job_id: str) -> list[tuple[int, ...]]:
        """Collected cliques of a finished ``collect`` job, as tuples."""
        return [
            tuple(c) for c in self.result(job_id).get("cliques", [])
        ]

    def jobs(self) -> list[dict]:
        """Every job the server has seen, in submission order."""
        return self.call("jobs")["jobs"]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True when the cancellation took effect."""
        return bool(self.call("cancel", job_id=job_id)["cancelled"])

    def stats(self) -> dict:
        """Server stats: queue depth, status counts, cache hit/miss."""
        return self.call("stats")["stats"]

    def metrics(self) -> str:
        """One Prometheus-text scrape (requires ``--metrics``)."""
        return self.call("metrics")["metrics"]

    def trace(self, limit: int | None = None) -> list[dict]:
        """The newest ``limit`` trace records (requires ``--trace``)."""
        return self.call(
            "trace", **({} if limit is None else {"limit": limit})
        )["records"]

    def shutdown_server(self) -> None:
        """Ask the server to stop listening (in-flight jobs finish)."""
        self.call("shutdown")
