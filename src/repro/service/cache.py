"""Graph/config-keyed LRU cache of enumeration results.

Threshold sweeps and per-gene module lookups hit the same (graph,
config) pair over and over; Fabregat-Traver & Bientinesi's observation
— genome-scale throughput comes from amortizing shared computation
across related queries — applies directly.  The cache keys on the
graph's content fingerprint (:func:`repro.core.graph_io.
graph_fingerprint`) plus the hashable
:class:`~repro.engine.config.EnumerationConfig`, so a mutated graph or
a changed knob — including the ``level_store`` substrate policy, whose
runs differ in their recorded ``candidate_bytes`` — can never serve a
stale result, while re-loading the same file or rebuilding an
identical graph still hits.

Hit/miss/eviction tallies fold into the shared
:class:`~repro.core.counters.OpCounters` ``extra`` channel (see
:meth:`ResultCache.fold_into`), so service-level reports read like
every other operation count in the repo.

Cached :class:`~repro.core.clique_enumerator.EnumerationResult`
objects are shared between hits — treat them as read-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.clique_enumerator import EnumerationResult
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.graph_io import graph_fingerprint
from repro.engine.api import EnumerationEngine
from repro.engine.config import EnumerationConfig
from repro.errors import ParameterError

__all__ = ["ResultCache"]

#: cache key: (graph content fingerprint, the hashable config itself —
#: the hash buckets, equality guards against collisions).
CacheKey = tuple[str, EnumerationConfig]


class ResultCache:
    """Bounded LRU cache of :class:`EnumerationResult` by (graph, config).

    Thread-safe: the job scheduler's workers share one instance.

    Parameters
    ----------
    max_entries:
        LRU bound; the least-recently-used entry is evicted when a
        ``put`` would exceed it.  Must be >= 1.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ParameterError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[CacheKey, EnumerationResult] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keying --------------------------------------------------------------

    @staticmethod
    def key(g: Graph, config: EnumerationConfig) -> CacheKey:
        """The cache key for a (graph, config) pair."""
        return (graph_fingerprint(g), config)

    # -- primitive access ----------------------------------------------------

    def get(
        self, fingerprint: str, config: EnumerationConfig
    ) -> EnumerationResult | None:
        """Look up by precomputed fingerprint; counts the hit or miss."""
        with self._lock:
            result = self._entries.get((fingerprint, config))
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end((fingerprint, config))
            self.hits += 1
            return result

    def put(
        self,
        fingerprint: str,
        config: EnumerationConfig,
        result: EnumerationResult,
    ) -> None:
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        with self._lock:
            key = (fingerprint, config)
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    # -- convenience ---------------------------------------------------------

    def run(
        self,
        engine: EnumerationEngine,
        g: Graph,
        config: EnumerationConfig,
    ) -> tuple[EnumerationResult, bool]:
        """Get-or-compute: ``(result, was_hit)``.

        On a miss the engine runs with cliques collected (no sink), and
        the result is cached.  This is the standalone entry point for
        sweep scripts that do not go through the job scheduler.
        """
        fingerprint = graph_fingerprint(g)
        cached = self.get(fingerprint, config)
        if cached is not None:
            return cached, True
        result = engine.run(g, config)
        self.put(fingerprint, config, result)
        return result, False

    # -- accounting ----------------------------------------------------------

    def fold_into(self, counters: OpCounters) -> None:
        """Add the cache tallies to an :class:`OpCounters` ``extra``."""
        # snapshot the three tallies under the lock: a worker bumping
        # them mid-read would fold a torn (hits from before, misses
        # from after) view into the report
        with self._lock:
            tallies = (
                ("cache_hits", self.hits),
                ("cache_misses", self.misses),
                ("cache_evictions", self.evictions),
            )
        for name, value in tallies:
            counters.extra[name] = counters.extra.get(name, 0) + value

    def stats(self) -> dict:
        """Snapshot for reports and the service ``stats`` op."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        """Drop every entry (tallies are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries
