"""Streaming clique sinks: where emitted cliques go, without RAM.

The paper's genome-scale runs emit clique sets far larger than memory
(the Section 4 graphs produce outputs "on the order of terabytes"), so
collection must be a *choice*, not the default data path.  A
:class:`CliqueSink` is a callable that plugs straight into the engine's
existing ``on_clique`` streaming callback — every backend already
supports it — and adds uniform accounting (total and per-size counts)
plus a lifecycle (``close``) and a report (``summary``).

Built-in sinks:

* :class:`CollectSink` — keep every clique in RAM (the classic result);
* :class:`CountSink` — per-size counts only, O(1) memory;
* :class:`TopKSink` — the ``k`` largest cliques via a bounded heap;
* :class:`JsonlSink` — stream each clique as one JSON line to disk.

:func:`make_sink` parses the compact spec strings used by the CLI
(``repro enumerate --sink top_k:10``) and the job service
(``JobSpec.sink``): ``collect``, ``count``, ``top_k:N``,
``jsonl:PATH``.
"""

from __future__ import annotations

import heapq
import json
import os
from pathlib import Path

from repro.errors import ParameterError

__all__ = [
    "CliqueSink",
    "CollectSink",
    "CountSink",
    "TopKSink",
    "JsonlSink",
    "make_sink",
    "validate_sink_spec",
]


class CliqueSink:
    """Base class: a callable clique consumer with uniform accounting.

    Subclasses implement :meth:`_accept`; the base ``__call__`` keeps
    the total and per-size tallies so every sink reports the same
    :meth:`summary` core regardless of what it retains.  Sinks are the
    engine's ``on_clique`` callbacks, so one instance is single-use:
    feed it one run, ``close()`` it, read the summary.
    """

    #: the spec string that recreates this sink via :func:`make_sink`.
    spec: str = "sink"

    def __init__(self) -> None:
        self.count = 0
        self.by_size: dict[int, int] = {}
        self.closed = False

    def __call__(self, clique: tuple[int, ...]) -> None:
        self.count += 1
        size = len(clique)
        self.by_size[size] = self.by_size.get(size, 0) + 1
        self._accept(clique)

    def _accept(self, clique: tuple[int, ...]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Finalize after a successful run; further emissions are a
        caller bug."""
        self.closed = True

    def abort(self) -> None:
        """Release resources after a *failed* run.

        Unlike :meth:`close`, an abort must not finalize output — a
        sink that writes files on close would otherwise clobber a
        previous good run's output with the debris of a failed one.
        """
        self.close()

    @property
    def max_size(self) -> int:
        """Largest clique size seen (0 when none)."""
        return max(self.by_size, default=0)

    def summary(self) -> dict:
        """Uniform report: spec, totals, per-size counts, extras."""
        out = {
            "sink": self.spec,
            "cliques": self.count,
            "max_size": self.max_size,
            "by_size": {str(k): v for k, v in sorted(self.by_size.items())},
        }
        out.update(self._extra_summary())
        return out

    def _extra_summary(self) -> dict:
        return {}

    def __enter__(self) -> "CliqueSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # an exception in the with-body is a failed run: abort, never
        # finalize (close() would rename partial jsonl debris over a
        # previous good output)
        if exc_type is None:
            self.close()
        else:
            self.abort()


class CollectSink(CliqueSink):
    """Keep every clique in memory — the classic collected result."""

    spec = "collect"

    def __init__(self) -> None:
        super().__init__()
        self.cliques: list[tuple[int, ...]] = []

    def _accept(self, clique: tuple[int, ...]) -> None:
        self.cliques.append(clique)


class CountSink(CliqueSink):
    """Per-size counts only: O(1) memory whatever the output volume."""

    spec = "count"

    def _accept(self, clique: tuple[int, ...]) -> None:
        pass


class TopKSink(CliqueSink):
    """The ``k`` largest cliques, via a bounded min-heap.

    Ties at the boundary size are broken canonically (the
    lexicographically larger vertex tuple wins), so identical emission
    sets give identical top-k whatever the backend.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ParameterError(f"top_k sink needs k >= 1, got {k}")
        super().__init__()
        self.k = k
        self.spec = f"top_k:{k}"
        self._heap: list[tuple[int, tuple[int, ...]]] = []

    def _accept(self, clique: tuple[int, ...]) -> None:
        item = (len(clique), clique)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, item)
        elif item > self._heap[0]:
            heapq.heapreplace(self._heap, item)

    @property
    def top(self) -> list[tuple[int, ...]]:
        """The retained cliques, largest first."""
        return [c for _, c in sorted(self._heap, reverse=True)]

    def _extra_summary(self) -> dict:
        return {"k": self.k, "top": [list(c) for c in self.top]}


class JsonlSink(CliqueSink):
    """Stream each clique to disk as one JSON array per line.

    Writes stream into a sibling ``.partial`` temp file (opened lazily
    on the first emission) that is atomically renamed over the target
    on :meth:`close` — so the target path either keeps its previous
    content or holds one complete run, never the debris of a failed or
    interrupted one.  At no point does the clique set exist in memory.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self.spec = f"jsonl:{self.path}"
        self.bytes_written = 0
        self._fh = None
        self._tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}-{id(self):x}.partial"
        )

    def _accept(self, clique: tuple[int, ...]) -> None:
        if self._fh is None:
            self._fh = self._tmp.open("w")
        line = json.dumps(list(clique), separators=(",", ":")) + "\n"
        self._fh.write(line)
        self.bytes_written += len(line)

    def close(self) -> None:
        if self._fh is None:
            # a successful empty run still leaves a well-formed (empty)
            # file — through the same .partial + atomic-rename path, so
            # an interrupted close can never leave the target truncated
            # or half-written
            self._fh = self._tmp.open("w")
        # keep _fh set until the rename lands: if os.replace fails
        # (target is a directory, dir vanished), abort() must still
        # see an open run and clean up the .partial file
        self._fh.close()
        os.replace(self._tmp, self.path)
        self._fh = None
        super().close()

    def abort(self) -> None:
        # drop the partial temp file; the target path keeps whatever a
        # previous successful run put there
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._tmp.unlink(missing_ok=True)
        self.closed = True

    def _extra_summary(self) -> dict:
        return {"path": str(self.path), "bytes_written": self.bytes_written}


def _parse(spec: str) -> tuple[str, str | None]:
    name, sep, arg = spec.partition(":")
    return name.strip(), (arg if sep else None)


def make_sink(spec: str) -> CliqueSink:
    """Build a sink from a compact spec string.

    Accepted specs: ``collect``, ``count``, ``top_k:N`` (N >= 1),
    ``jsonl:PATH``.  Raises :class:`~repro.errors.ParameterError` on
    anything else — including a missing argument.
    """
    if not isinstance(spec, str) or not spec:
        raise ParameterError(
            f"sink spec must be a non-empty string, got {spec!r}"
        )
    name, arg = _parse(spec)
    if name == "collect" and arg is None:
        return CollectSink()
    if name == "count" and arg is None:
        return CountSink()
    if name == "top_k":
        if not arg:
            raise ParameterError("top_k sink needs a count: top_k:N")
        try:
            k = int(arg)
        except ValueError:
            raise ParameterError(
                f"top_k count must be an integer, got {arg!r}"
            ) from None
        return TopKSink(k)
    if name == "jsonl":
        if not arg:
            raise ParameterError("jsonl sink needs a path: jsonl:PATH")
        return JsonlSink(arg)
    raise ParameterError(
        f"unknown sink spec {spec!r}; expected collect, count, "
        "top_k:N, or jsonl:PATH"
    )


def validate_sink_spec(spec: str) -> str:
    """Check a spec parses; return it unchanged.

    Sink construction is side-effect free (the jsonl file opens lazily
    on first emission), so validation just constructs and discards.
    """
    make_sink(spec)
    return spec
