"""Thread-pool job scheduler: the service's dispatch loop.

Workers pull :class:`~repro.service.jobs.Job` records off a priority
queue and dispatch them through one shared
:class:`~repro.engine.api.EnumerationEngine` — the scheduler is a thin
orchestration layer, exactly what the PR-1 engine refactor was built
for.  Per-job resource budgets ride on the existing
:class:`~repro.errors.BudgetExceeded` path (a tripped budget fails the
job, never the worker), cancellation is cooperative through the sink
callback, and :meth:`JobScheduler.drain` provides a graceful
stop-accepting-then-finish shutdown.

Caching: jobs run with ``use_cache=True`` consult the scheduler's
:class:`~repro.service.cache.ResultCache`.  A hit replays the cached
cliques through the job's sink — so even a ``jsonl`` job is served
from cache with its file fully written — and skips enumeration
entirely.  Only ``collect`` jobs *populate* the cache (their results
carry the cliques a replay needs); streaming-sink jobs exist to avoid
materializing output, so they are never forced to collect just to warm
the cache.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path

from repro.errors import BudgetExceeded, ParameterError, ReproError
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.graph_io import graph_fingerprint, load as load_graph
from repro.engine.api import EnumerationEngine
from repro.obs.bridge import fold_job, sample_service
from repro.obs.runtime import Observability, get_observability
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobSpec, JobStatus
from repro.service.sinks import CollectSink, make_sink

__all__ = ["JobScheduler"]


class _Cancelled(Exception):
    """Internal: raised inside the emit path to abort a running job."""


#: queue sentinel that tells a worker to exit; sorts after every job
#: entry so queued work drains before workers stop.
_SHUTDOWN_PRIORITY = (1, 0)


class JobScheduler:
    """Priority-queued thread pool running enumeration jobs.

    Parameters
    ----------
    workers:
        Worker-thread count.  Enumeration is numpy-heavy, so threads
        overlap usefully despite the GIL; a job needing parallelism
        *within* one enumeration uses the ``"threads"`` or
        ``"multiprocess"`` backend inside its config.  ``"threads"``
        streams cliques through the sink at every level barrier, so
        budgets and cooperative cancellation fire at most one level
        late.  ``"multiprocess"`` collects the full clique set in the
        parent before replaying it, so streaming sinks do not bound
        its memory and cancellation only takes effect once the
        distributed enumeration finishes — for genome-scale streaming
        or promptly-cancellable jobs, prefer ``"threads"`` or the
        sequential backends.
    cache:
        A :class:`ResultCache` to share, ``None`` to disable caching
        entirely, or leave unset for a fresh default cache.
    engine:
        The engine facade to dispatch through (a default one if unset).
    retain_jobs:
        Bound on retained job records: once exceeded, the *oldest
        terminal* jobs (and their attached results) are pruned so a
        long-lived service cannot grow without bound.  Pruned ids
        disappear from :meth:`jobs` and :meth:`get`.  In-flight jobs
        are never pruned.
    graph_cache_size:
        LRU bound on the (path, mtime)-keyed memo of loaded graphs.
    obs:
        An explicit :class:`~repro.obs.runtime.Observability` plane to
        report into; unset, the process-wide ambient plane is resolved
        at each use (disabled by default, so an unconfigured scheduler
        pays only a flag check per job).

    Use as a context manager for deterministic shutdown::

        with JobScheduler(workers=4) as sched:
            jobs = [sched.submit(spec) for spec in specs]
            sched.drain()
    """

    _DEFAULT_CACHE = object()

    def __init__(
        self,
        workers: int = 2,
        cache: ResultCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
        engine: EnumerationEngine | None = None,
        retain_jobs: int = 1024,
        graph_cache_size: int = 16,
        obs: Observability | None = None,
    ):
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if retain_jobs < 1:
            raise ParameterError(
                f"retain_jobs must be >= 1, got {retain_jobs}"
            )
        if graph_cache_size < 1:
            raise ParameterError(
                f"graph_cache_size must be >= 1, got {graph_cache_size}"
            )
        self.engine = engine if engine is not None else EnumerationEngine()
        self.cache = (
            ResultCache() if cache is self._DEFAULT_CACHE else cache
        )
        self.n_workers = workers
        self.retain_jobs = retain_jobs
        self.graph_cache_size = graph_cache_size
        self.started_at = time.time()
        # pinned plane, or the ambient one resolved per use (so a test
        # configuring observability after construction is still seen)
        self._obs = obs
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._jobs: dict[str, Job] = {}
        # (path, mtime) -> (Graph, fingerprint): the fingerprint is
        # memoized with the graph so a sweep of jobs against one file
        # hashes its adjacency bitmap once, not once per job
        self._graphs: OrderedDict[
            tuple[str, int], tuple[Graph, str]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._accepting = True
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"enum-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns its :class:`Job` record immediately."""
        with self._lock:
            if not self._accepting:
                raise ParameterError(
                    "scheduler is shut down; no new jobs accepted"
                )
            seq = next(self._seq)
            job = Job(f"job-{seq:06d}", spec)
            job._on_terminal = self._fold_terminal
            self._jobs[job.id] = job
            self._prune_jobs_locked()
            # enqueue under the lock: a concurrent shutdown(wait=True)
            # must not queue its sentinels (and join the workers)
            # between the _accepting check and this put, or the job
            # would sit PENDING forever behind exited workers.
            # sort key: shutdown sentinels last, then higher priority
            # first, then submission order
            self._queue.put(((0, -spec.priority, seq), job))
        return job

    def _prune_jobs_locked(self) -> None:
        excess = len(self._jobs) - self.retain_jobs
        if excess <= 0:
            return
        # _jobs is insertion-ordered (submissions append under the
        # lock), so iterating it walks oldest-first — unlike sorting
        # the zero-padded ids, this stays correct past job-999999
        for job_id in list(self._jobs):
            if excess <= 0:
                break
            if self._jobs[job_id].done:
                del self._jobs[job_id]
                excess -= 1

    def submit_batch(self, specs: list[JobSpec]) -> list[Job]:
        """Queue many jobs at once (a sweep); returns their records."""
        return [self.submit(spec) for spec in specs]

    # -- observation ---------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Look up a job by id; raises on unknown ids."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ParameterError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """Every retained job, in submission (insertion) order."""
        with self._lock:
            return list(self._jobs.values())

    def counters(self) -> OpCounters:
        """Aggregate operation counters over finished jobs + cache tallies.

        Cache-hit jobs contribute nothing here (their work was done by
        the original run); the hit itself shows up in the folded
        ``cache_hits`` tally.
        """
        agg = OpCounters()
        for job in self.jobs():
            if job.status is JobStatus.DONE and not job.cache_hit:
                agg.merge(job.result.counters)
        if self.cache is not None:
            self.cache.fold_into(agg)
        return agg

    def stats(self) -> dict:
        """Queue depth, per-status counts, and cache stats."""
        by_status: dict[str, int] = {s.value: 0 for s in JobStatus}
        for job in self.jobs():
            by_status[job.status.value] += 1
        return {
            "workers": self.n_workers,
            "queued": self._queue.qsize(),
            "jobs": by_status,
            "uptime_seconds": time.time() - self.started_at,
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    @property
    def obs(self) -> Observability:
        """The observability plane this scheduler reports into."""
        return self._obs if self._obs is not None else get_observability()

    def render_metrics(self) -> str:
        """One Prometheus-text scrape: refresh gauges, then render.

        Raises :class:`~repro.errors.ParameterError` when the plane has
        metrics disabled — the wire op and the HTTP exporter both want
        a hard error over silently empty output.
        """
        obs = self.obs
        if not obs.metrics_on:
            raise ParameterError(
                "metrics are disabled; start the service with --metrics "
                "or configure(metrics=True)"
            )
        sample_service(obs.registry, self)
        return obs.registry.render()

    # -- control -------------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: immediately when pending, cooperatively when
        running (the next emission aborts it).  Returns False when the
        job is already terminal."""
        job = self.get(job_id)
        with self._lock:
            if job.status is JobStatus.PENDING:
                job._cancel.set()
                job._finish(JobStatus.CANCELLED)
                return True
        if job.status is JobStatus.RUNNING:
            job._cancel.set()
            return True
        return False

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted job is terminal.

        Raises ``TimeoutError`` when the deadline passes with work
        still in flight.  New submissions stay allowed — call
        :meth:`shutdown` for a terminal drain.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs():
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise TimeoutError("drain timed out with jobs in flight")
            job.wait(remaining)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally finish the queue and join.

        With ``wait=True`` queued work completes first (the shutdown
        sentinels sort after every job).  With ``wait=False`` every
        unfinished job is cancelled — pending ones immediately, running
        ones at their next emission (their sinks are aborted, so no
        partial output is finalized) — and workers exit right after.
        """
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
        if not wait:
            for job in self.jobs():
                if not job.done:
                    self.cancel(job.id)
        for _ in self._threads:
            # unique seq keeps heap entries totally ordered by key, so
            # the (unorderable) None payloads are never compared
            self._queue.put((_SHUTDOWN_PRIORITY + (next(self._seq),), None))
        for t in self._threads:
            t.join()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # -- worker loop ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            _, job = self._queue.get()
            if job is None:
                return
            # claim PENDING -> RUNNING under the same lock cancel()
            # holds, so a pending cancellation and a worker pickup can
            # never both win the job
            with self._lock:
                if job.done:  # cancelled while pending
                    continue
                job._mark_running()
            self._run_job(job)

    def _resolve_graph(
        self, ref: Graph | str | Path
    ) -> tuple[Graph, str | None]:
        """Resolve a graph ref to ``(graph, fingerprint-or-None)``.

        Path references are loaded and LRU-memoized by (path, mtime)
        together with their content fingerprint; in-memory graphs
        return no fingerprint (the caller computes one only when the
        job is actually cacheable).
        """
        if isinstance(ref, Graph):
            return ref, None
        path = str(ref)
        key = (path, os.stat(path).st_mtime_ns)
        with self._lock:
            entry = self._graphs.get(key)
            if entry is not None:
                self._graphs.move_to_end(key)
                return entry
        g = load_graph(path)
        entry = (g, graph_fingerprint(g))
        with self._lock:
            self._graphs[key] = entry
            while len(self._graphs) > self.graph_cache_size:
                self._graphs.popitem(last=False)
        return entry

    def _fold_terminal(self, job: Job) -> None:
        """Job terminal-transition hook: fold its metrics.

        Runs inside :meth:`Job._finish` *before* waiters wake, so a
        client returning from ``wait()`` and scraping immediately
        always sees the finished job's counters — the round trip the
        acceptance test pins.
        """
        obs = self.obs
        if obs.metrics_on:
            fold_job(obs.registry, job)

    def _run_job(self, job: Job) -> None:
        """Run one claimed job under the observability plane.

        The job span covers the whole dispatch; the metrics fold runs
        via the terminal hook inside ``_finish``, so a scrape either
        sees the job still running (gauges) or fully folded (counters)
        — never half.
        """
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "job",
                id=job.id,
                backend=job.spec.config.backend,
                sink=job.spec.sink,
                label=job.spec.label,
            ) as span:
                self._dispatch_job(job)
                span.set(
                    status=job.status.value, cache_hit=job.cache_hit
                )
        else:
            self._dispatch_job(job)

    def _dispatch_job(self, job: Job) -> None:
        # the worker loop already claimed the job (status RUNNING)
        sink = None
        try:
            g, fingerprint = self._resolve_graph(job.spec.graph)
            sink = make_sink(job.spec.sink)

            def emit(clique: tuple[int, ...]) -> None:
                if job._cancel.is_set():
                    raise _Cancelled
                sink(clique)

            cacheable = job.spec.use_cache and self.cache is not None
            if cacheable and fingerprint is None:
                fingerprint = graph_fingerprint(g)
            if cacheable:
                cached = self.cache.get(fingerprint, job.spec.config)
                if cached is not None:
                    for clique in cached.cliques:
                        emit(clique)
                    if job._cancel.is_set():
                        raise _Cancelled
                    sink.close()
                    # publish sink_summary before result: to_dict keys
                    # off `result is not None`, so a concurrent status
                    # poll must never see the result without the
                    # summary (it would report n_cliques=0).  And a
                    # streaming-sink job must not expose the cached
                    # clique list through the `result` op — hit and
                    # miss have to produce the same (clique-less)
                    # payload, since the sink was chosen to avoid
                    # materializing exactly that list.
                    job.cache_hit = True
                    job.sink_summary = sink.summary()
                    job.result = (
                        cached
                        if isinstance(sink, CollectSink)
                        else replace(cached, cliques=[])
                    )
                    job._finish(JobStatus.DONE)
                    return

            result = self.engine.run(g, job.spec.config, on_clique=emit)
            # emit() only sees the cancel flag when cliques flow; a
            # run with no (further) emissions must still honour a
            # cancellation acknowledged while it was RUNNING — and
            # must not finalize its sink
            if job._cancel.is_set():
                raise _Cancelled
            if isinstance(sink, CollectSink):
                # the collected cliques *are* the canonical result —
                # and what a future cache hit replays
                result.cliques = sink.cliques
                if cacheable:
                    self.cache.put(fingerprint, job.spec.config, result)
            sink.close()
            # summary before result — see the cache-hit branch above
            job.sink_summary = sink.summary()
            job.result = result
            job._finish(JobStatus.DONE)
        except _Cancelled:
            job._finish(JobStatus.CANCELLED)
        except BudgetExceeded as exc:
            job._finish(
                JobStatus.FAILED,
                f"budget exceeded: {exc} "
                f"(emitted={exc.emitted}, level={exc.level})",
            )
        except (ReproError, OSError) as exc:
            job._finish(JobStatus.FAILED, str(exc))
        except Exception as exc:  # noqa: BLE001 — a worker must survive
            job._finish(
                JobStatus.FAILED, f"{type(exc).__name__}: {exc}"
            )
        finally:
            # a sink still open here belongs to a failed/cancelled run:
            # abort, never finalize (a close would e.g. truncate a
            # previous good jsonl output on a zero-emission failure)
            if sink is not None and not sink.closed:
                try:
                    sink.abort()
                except OSError:
                    pass
