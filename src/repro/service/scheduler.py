"""Thread-pool job scheduler: the service's dispatch loop.

Workers pull :class:`~repro.service.jobs.Job` records off a priority
queue and dispatch them through one shared
:class:`~repro.engine.api.EnumerationEngine` — the scheduler is a thin
orchestration layer, exactly what the PR-1 engine refactor was built
for.  Per-job resource budgets ride on the existing
:class:`~repro.errors.BudgetExceeded` path (a tripped budget fails the
job, never the worker), cancellation is cooperative through the sink
callback, and :meth:`JobScheduler.drain` provides a graceful
stop-accepting-then-finish shutdown.

Caching: jobs run with ``use_cache=True`` consult the scheduler's
:class:`~repro.service.cache.ResultCache`.  A hit replays the cached
cliques through the job's sink — so even a ``jsonl`` job is served
from cache with its file fully written — and skips enumeration
entirely.  Only ``collect`` jobs *populate* the cache (their results
carry the cliques a replay needs); streaming-sink jobs exist to avoid
materializing output, so they are never forced to collect just to warm
the cache.

Admission control: with a ``memory_budget_bytes``, every submission
gets a predicted candidate-storage peak from the memory model's
forward recurrences (:func:`~repro.core.memory_model.predict_profile`)
and a worker only claims a job when that prediction fits the budget
remaining after the jobs already in flight — otherwise the job is
*deferred* and re-queued when any in-flight job reaches a terminal
state (which is when budget frees).  A job predicted over the whole
budget still runs once nothing else is admitted, so a single oversized
job degrades to serial execution instead of deadlocking the queue.  A
``level_store="auto"`` submission is resolved here, against the same
budget, to the cheapest substrate whose prediction fits.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path

from repro.errors import BudgetExceeded, ParameterError, ReproError
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.graph_io import graph_fingerprint, load as load_graph
from repro.core.memory_model import predict_profile, seed_sublist_count
from repro.engine.api import EnumerationEngine
from repro.engine.config import LEVEL_STORE_AUTO, resolve_level_store
from repro.engine.registry import get_backend
from repro.obs.bridge import fold_job, sample_service
from repro.obs.runtime import Observability, get_observability
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobSpec, JobStatus
from repro.service.sinks import CollectSink, make_sink

__all__ = ["JobScheduler"]


class _Cancelled(Exception):
    """Internal: raised inside the emit path to abort a running job."""


#: queue sentinel that tells a worker to exit; sorts after every job
#: entry so queued work drains before workers stop.
_SHUTDOWN_PRIORITY = (1, 0)


class JobScheduler:
    """Priority-queued thread pool running enumeration jobs.

    Parameters
    ----------
    workers:
        Worker-thread count.  Enumeration is numpy-heavy, so threads
        overlap usefully despite the GIL; a job needing parallelism
        *within* one enumeration uses the ``"threads"`` or
        ``"multiprocess"`` backend inside its config.  ``"threads"``
        streams cliques through the sink at every level barrier, so
        budgets and cooperative cancellation fire at most one level
        late.  ``"multiprocess"`` collects the full clique set in the
        parent before replaying it, so streaming sinks do not bound
        its memory and cancellation only takes effect once the
        distributed enumeration finishes — for genome-scale streaming
        or promptly-cancellable jobs, prefer ``"threads"`` or the
        sequential backends.
    cache:
        A :class:`ResultCache` to share, ``None`` to disable caching
        entirely, or leave unset for a fresh default cache.
    engine:
        The engine facade to dispatch through (a default one if unset).
    retain_jobs:
        Bound on retained job records: once exceeded, the *oldest
        terminal* jobs (and their attached results) are pruned so a
        long-lived service cannot grow without bound.  Pruned ids
        disappear from :meth:`jobs` and :meth:`get`.  In-flight jobs
        are never pruned.
    graph_cache_size:
        LRU bound on the (path, mtime)-keyed memo of loaded graphs.
    memory_budget_bytes:
        Machine memory budget for admission control, or ``None`` (the
        default) to admit every job immediately.  With a budget,
        workers claim a job only when its predicted candidate-storage
        peak fits next to the jobs already running; ``0`` is legal and
        serialises every predicted-nonzero job.  The budget also feeds
        ``level_store="auto"`` resolution (without one, the machine's
        currently available memory is used for that resolution
        instead).
    obs:
        An explicit :class:`~repro.obs.runtime.Observability` plane to
        report into; unset, the process-wide ambient plane is resolved
        at each use (disabled by default, so an unconfigured scheduler
        pays only a flag check per job).

    Use as a context manager for deterministic shutdown::

        with JobScheduler(workers=4) as sched:
            jobs = [sched.submit(spec) for spec in specs]
            sched.drain()
    """

    _DEFAULT_CACHE = object()

    def __init__(
        self,
        workers: int = 2,
        cache: ResultCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
        engine: EnumerationEngine | None = None,
        retain_jobs: int = 1024,
        graph_cache_size: int = 16,
        memory_budget_bytes: int | None = None,
        obs: Observability | None = None,
    ):
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if retain_jobs < 1:
            raise ParameterError(
                f"retain_jobs must be >= 1, got {retain_jobs}"
            )
        if graph_cache_size < 1:
            raise ParameterError(
                f"graph_cache_size must be >= 1, got {graph_cache_size}"
            )
        if memory_budget_bytes is not None and memory_budget_bytes < 0:
            raise ParameterError(
                "memory_budget_bytes must be >= 0, got "
                f"{memory_budget_bytes}"
            )
        self.engine = engine if engine is not None else EnumerationEngine()
        self.cache = (
            ResultCache() if cache is self._DEFAULT_CACHE else cache
        )
        self.n_workers = workers
        self.retain_jobs = retain_jobs
        self.graph_cache_size = graph_cache_size
        self.memory_budget_bytes = memory_budget_bytes
        self.started_at = time.time()
        # pinned plane, or the ambient one resolved per use (so a test
        # configuring observability after construction is still seen)
        self._obs = obs
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._jobs: dict[str, Job] = {}
        # (path, mtime) -> (Graph, fingerprint): the fingerprint is
        # memoized with the graph so a sweep of jobs against one file
        # hashes its adjacency bitmap once, not once per job
        self._graphs: OrderedDict[
            tuple[str, int], tuple[Graph, str]
        ] = OrderedDict()
        # re-entrant: the terminal hook releases admission budget (and
        # cancel() reaches it while already holding the lock)
        self._lock = threading.RLock()
        self._seq = itertools.count(1)
        self._accepting = True
        # admission state, all guarded by _lock: bytes charged by the
        # jobs currently admitted, cumulative admit/defer tallies, and
        # the deferred (queue key, job) entries waiting for budget
        self._admitted_bytes = 0
        self._admitted_total = 0
        self._deferred_total = 0
        self._deferred: list[tuple[tuple, Job]] = []
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"enum-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns its :class:`Job` record immediately.

        Submission is where the memory model runs: the job's predicted
        candidate-storage peak is computed here (and charged against
        the budget when a worker claims it), and a
        ``level_store="auto"`` spec is resolved to the concrete
        substrate the prediction says fits.  Both ride on the job
        record — :meth:`Job.to_dict` reports predicted vs measured.
        """
        # predict outside the lock: a path-referenced graph loads (and
        # memoizes) here, which must not stall concurrent submitters
        predicted, resolved = self._predict_spec(spec)
        with self._lock:
            if not self._accepting:
                raise ParameterError(
                    "scheduler is shut down; no new jobs accepted"
                )
            seq = next(self._seq)
            job = Job(f"job-{seq:06d}", spec)
            job.predicted_peak_bytes = predicted
            job.resolved_config = resolved
            job._on_terminal = self._fold_terminal
            self._jobs[job.id] = job
            self._prune_jobs_locked()
            # enqueue under the lock: a concurrent shutdown(wait=True)
            # must not queue its sentinels (and join the workers)
            # between the _accepting check and this put, or the job
            # would sit PENDING forever behind exited workers.
            # sort key: shutdown sentinels last, then higher priority
            # first, then submission order
            self._queue.put(((0, -spec.priority, seq), job))
        return job

    def _prune_jobs_locked(self) -> None:
        excess = len(self._jobs) - self.retain_jobs
        if excess <= 0:
            return
        # _jobs is insertion-ordered (submissions append under the
        # lock), so iterating it walks oldest-first — unlike sorting
        # the zero-padded ids, this stays correct past job-999999
        for job_id in list(self._jobs):
            if excess <= 0:
                break
            if self._jobs[job_id].done:
                del self._jobs[job_id]
                excess -= 1

    def submit_batch(self, specs: list[JobSpec]) -> list[Job]:
        """Queue many jobs at once (a sweep); returns their records."""
        return [self.submit(spec) for spec in specs]

    def _predict_spec(self, spec: JobSpec):
        """``(predicted peak bytes | None, resolved config)`` for a spec.

        Runs the memory-model forward recurrences on the spec's graph
        and resolves a ``level_store="auto"`` against the scheduler's
        budget (falling back to the machine's available memory when no
        budget is configured).  A graph that fails to load predicts
        ``None`` — the job is admitted uncharged and fails at dispatch
        with the real load error, exactly as it did before admission
        control existed.
        """
        config = spec.config
        try:
            g, _ = self._resolve_graph(spec.graph)
        except (ReproError, OSError):
            return None, config
        info = get_backend(config.backend)
        seeds = (
            seed_sublist_count(g) if config.k_min <= 2 else None
        )
        predicted = predict_profile(
            g.n, g.m, config.k_min, seeds, k_max=config.k_max
        )
        if config.level_store == LEVEL_STORE_AUTO:
            store = resolve_level_store(
                config,
                g,
                info,
                self.memory_budget_bytes,
                predicted=predicted,
            )
            config = replace(config, level_store=store)
        # no explicit store -> the backend's default substrate (always
        # "memory" or "disk" per BackendInfo.storage)
        effective = config.level_store or info.storage
        return predicted.peak_bytes(effective), config

    def _admit_locked(self, key: tuple, job: Job) -> bool:
        """Claim-time admission check; caller holds ``_lock``.

        Charges the job's predicted peak against the budget and admits
        it, or defers it (recording its queue key for the re-queue on
        the next terminal transition).  Admission never defers when
        nothing is currently admitted: an over-budget singleton runs
        alone rather than deadlocking — the budget then degrades to
        one-job-at-a-time serialisation.
        """
        cost = job.predicted_peak_bytes or 0
        budget = self.memory_budget_bytes
        if (
            budget is not None
            and cost > 0
            and self._admitted_bytes > 0
            and self._admitted_bytes + cost > budget
        ):
            self._deferred.append((key, job))
            self._deferred_total += 1
            return False
        job._admitted_bytes = cost
        self._admitted_bytes += cost
        self._admitted_total += 1
        return True

    def _release_admission(self, job: Job) -> None:
        """Return a terminal job's budget charge and wake deferred work.

        Every deferred entry is re-queued (their keys still sort ahead
        of shutdown sentinels, so a draining shutdown completes them);
        a worker re-defers whatever still does not fit.  Deferral only
        ever happens while something is admitted, so there is always a
        coming terminal transition to re-queue against — no lost
        wake-ups.
        """
        with self._lock:
            released = job._admitted_bytes
            job._admitted_bytes = 0
            if not released:
                # nothing charged, nothing freed: an uncharged terminal
                # cannot unblock deferred work, and deferral only ever
                # happens while some *charged* job is in flight — its
                # own release re-queues, so no wake-up is lost
                return
            self._admitted_bytes = max(0, self._admitted_bytes - released)
            if self._deferred:
                requeue, self._deferred = self._deferred, []
                for key, deferred in requeue:
                    if not deferred.done:
                        self._queue.put((key, deferred))

    # -- observation ---------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Look up a job by id; raises on unknown ids."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ParameterError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """Every retained job, in submission (insertion) order."""
        with self._lock:
            return list(self._jobs.values())

    def counters(self) -> OpCounters:
        """Aggregate operation counters over finished jobs + cache tallies.

        Cache-hit jobs contribute nothing here (their work was done by
        the original run); the hit itself shows up in the folded
        ``cache_hits`` tally.
        """
        agg = OpCounters()
        for job in self.jobs():
            if job.status is JobStatus.DONE and not job.cache_hit:
                agg.merge(job.result.counters)
        if self.cache is not None:
            self.cache.fold_into(agg)
        return agg

    def stats(self) -> dict:
        """Queue depth, per-status counts, admission, and cache stats."""
        with self._lock:
            jobs = list(self._jobs.values())
            admission = {
                "budget_bytes": self.memory_budget_bytes,
                "admitted_bytes": self._admitted_bytes,
                "admitted_total": self._admitted_total,
                "deferred_total": self._deferred_total,
            }
        by_status: dict[str, int] = {s.value: 0 for s in JobStatus}
        for job in jobs:
            by_status[job.status.value] += 1
        return {
            "workers": self.n_workers,
            # jobs actually waiting to run (deferred ones included) —
            # the raw queue size also counts shutdown sentinels and
            # stale entries for already-cancelled jobs
            "queued": by_status[JobStatus.PENDING.value],
            "jobs": by_status,
            "admission": admission,
            "uptime_seconds": time.time() - self.started_at,
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    @property
    def obs(self) -> Observability:
        """The observability plane this scheduler reports into."""
        return self._obs if self._obs is not None else get_observability()

    def render_metrics(self) -> str:
        """One Prometheus-text scrape: refresh gauges, then render.

        Raises :class:`~repro.errors.ParameterError` when the plane has
        metrics disabled — the wire op and the HTTP exporter both want
        a hard error over silently empty output.
        """
        obs = self.obs
        if not obs.metrics_on:
            raise ParameterError(
                "metrics are disabled; start the service with --metrics "
                "or configure(metrics=True)"
            )
        sample_service(obs.registry, self)
        return obs.registry.render()

    # -- control -------------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: immediately when pending, cooperatively when
        running (the next emission aborts it).  Returns False when the
        job is already terminal."""
        job = self.get(job_id)
        # both branches under the lock: every terminal transition also
        # happens under it (workers finish through _finish_job), so a
        # RUNNING observed here is still RUNNING when the flag is set —
        # checked outside, the job could finish DONE in between and
        # cancel would claim success against a terminal job
        with self._lock:
            if job.status is JobStatus.PENDING:
                job._cancel.set()
                job._finish(JobStatus.CANCELLED)
                return True
            if job.status is JobStatus.RUNNING:
                job._cancel.set()
                return True
        return False

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted job is terminal.

        Raises ``TimeoutError`` when the deadline passes with work
        still in flight.  New submissions stay allowed — call
        :meth:`shutdown` for a terminal drain.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs():
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise TimeoutError("drain timed out with jobs in flight")
            job.wait(remaining)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally finish the queue and join.

        With ``wait=True`` queued work completes first (the shutdown
        sentinels sort after every job).  With ``wait=False`` every
        unfinished job is cancelled — pending ones immediately, running
        ones at their next emission (their sinks are aborted, so no
        partial output is finalized) — and workers exit right after.
        """
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
        if not wait:
            for job in self.jobs():
                if not job.done:
                    self.cancel(job.id)
        for _ in self._threads:
            # unique seq keeps heap entries totally ordered by key, so
            # the (unorderable) None payloads are never compared
            self._queue.put((_SHUTDOWN_PRIORITY + (next(self._seq),), None))
        for t in self._threads:
            t.join()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # -- worker loop ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            key, job = self._queue.get()
            if job is None:
                return
            # claim PENDING -> RUNNING under the same lock cancel()
            # holds, so a pending cancellation and a worker pickup can
            # never both win the job; the admission check rides the
            # same critical section, so two workers can never both
            # charge the last of the budget
            with self._lock:
                if job.done:  # cancelled while pending
                    continue
                if not self._admit_locked(key, job):
                    continue  # deferred; re-queued when budget frees
                job._mark_running()
            self._run_job(job)

    def _resolve_graph(
        self, ref: Graph | str | Path
    ) -> tuple[Graph, str | None]:
        """Resolve a graph ref to ``(graph, fingerprint-or-None)``.

        Path references are loaded and LRU-memoized by (path, mtime)
        together with their content fingerprint; in-memory graphs
        return no fingerprint (the caller computes one only when the
        job is actually cacheable).
        """
        if isinstance(ref, Graph):
            return ref, None
        path = str(ref)
        key = (path, os.stat(path).st_mtime_ns)
        with self._lock:
            entry = self._graphs.get(key)
            if entry is not None:
                self._graphs.move_to_end(key)
                return entry
        g = load_graph(path)
        entry = (g, graph_fingerprint(g))
        with self._lock:
            self._graphs[key] = entry
            while len(self._graphs) > self.graph_cache_size:
                self._graphs.popitem(last=False)
        return entry

    def _fold_terminal(self, job: Job) -> None:
        """Job terminal-transition hook: free budget, fold metrics.

        Runs inside :meth:`Job._finish` *before* waiters wake, so a
        client returning from ``wait()`` and scraping immediately
        always sees the finished job's counters — the round trip the
        acceptance test pins.  Budget release comes first: a waiter
        unblocked by this job may immediately submit a successor that
        should see the freed headroom.
        """
        self._release_admission(job)
        obs = self.obs
        if obs.metrics_on:
            fold_job(obs.registry, job)

    def _run_job(self, job: Job) -> None:
        """Run one claimed job under the observability plane.

        The job span covers the whole dispatch; the metrics fold runs
        via the terminal hook inside ``_finish``, so a scrape either
        sees the job still running (gauges) or fully folded (counters)
        — never half.
        """
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "job",
                id=job.id,
                backend=job.spec.config.backend,
                sink=job.spec.sink,
                label=job.spec.label,
            ) as span:
                self._dispatch_job(job)
                span.set(
                    status=job.status.value, cache_hit=job.cache_hit
                )
        else:
            self._dispatch_job(job)

    def _finish_job(
        self, job: Job, status: JobStatus, error: str | None = None
    ) -> None:
        """Move a claimed job to a terminal state, under the lock.

        Every worker-side terminal transition routes through here so it
        is serialized against :meth:`cancel`'s status check — without
        the lock, cancel could observe RUNNING an instant before the
        worker finishes and claim a cancellation the job never saw.
        """
        with self._lock:
            if job.done:
                return
            job._finish(status, error)

    def _dispatch_job(self, job: Job) -> None:
        # the worker loop already claimed the job (status RUNNING).
        # cache keying and the engine dispatch both use the *resolved*
        # config: an "auto" submission must hit/populate the entry of
        # the concrete substrate it runs on
        config = job.resolved_config
        sink = None
        try:
            g, fingerprint = self._resolve_graph(job.spec.graph)
            sink = make_sink(job.spec.sink)

            def emit(clique: tuple[int, ...]) -> None:
                if job._cancel.is_set():
                    raise _Cancelled
                sink(clique)

            cacheable = job.spec.use_cache and self.cache is not None
            if cacheable and fingerprint is None:
                fingerprint = graph_fingerprint(g)
            if cacheable:
                cached = self.cache.get(fingerprint, config)
                if cached is not None:
                    for clique in cached.cliques:
                        emit(clique)
                    if job._cancel.is_set():
                        raise _Cancelled
                    sink.close()
                    # publish sink_summary before result: to_dict keys
                    # off `result is not None`, so a concurrent status
                    # poll must never see the result without the
                    # summary (it would report n_cliques=0).  And a
                    # streaming-sink job must not expose the cached
                    # clique list through the `result` op — hit and
                    # miss have to produce the same (clique-less)
                    # payload, since the sink was chosen to avoid
                    # materializing exactly that list.
                    job.cache_hit = True
                    job.sink_summary = sink.summary()
                    job.result = (
                        cached
                        if isinstance(sink, CollectSink)
                        else replace(cached, cliques=[])
                    )
                    self._finish_job(job, JobStatus.DONE)
                    return

            result = self.engine.run(g, config, on_clique=emit)
            # emit() only sees the cancel flag when cliques flow; a
            # run with no (further) emissions must still honour a
            # cancellation acknowledged while it was RUNNING — and
            # must not finalize its sink
            if job._cancel.is_set():
                raise _Cancelled
            if isinstance(sink, CollectSink):
                # the collected cliques *are* the canonical result —
                # and what a future cache hit replays
                result.cliques = sink.cliques
                if cacheable:
                    self.cache.put(fingerprint, config, result)
            sink.close()
            # summary before result — see the cache-hit branch above
            job.sink_summary = sink.summary()
            job.result = result
            self._finish_job(job, JobStatus.DONE)
        except _Cancelled:
            self._finish_job(job, JobStatus.CANCELLED)
        except BudgetExceeded as exc:
            self._finish_job(
                job,
                JobStatus.FAILED,
                f"budget exceeded: {exc} "
                f"(emitted={exc.emitted}, level={exc.level})",
            )
        except (ReproError, OSError) as exc:
            self._finish_job(job, JobStatus.FAILED, str(exc))
        except Exception as exc:  # noqa: BLE001 — a worker must survive
            self._finish_job(
                job, JobStatus.FAILED, f"{type(exc).__name__}: {exc}"
            )
        finally:
            # a sink still open here belongs to a failed/cancelled run:
            # abort, never finalize (a close would e.g. truncate a
            # previous good jsonl output on a zero-emission failure)
            if sink is not None and not sink.closed:
                try:
                    sink.abort()
                except OSError:
                    pass
