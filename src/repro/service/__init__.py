"""Enumeration job service: queued batch enumeration over the engine.

The ROADMAP's "heavy traffic" north-star entry point: a long-lived
service that accepts enumeration jobs (graph +
:class:`~repro.engine.config.EnumerationConfig`), dispatches them
through the PR-1 engine layer on a thread pool, streams cliques into
pluggable sinks, and serves repeated queries from a graph/config-keyed
result cache.  Three cooperating pieces plus a network face:

* :mod:`~repro.service.jobs` — frozen :class:`JobSpec`, the
  ``PENDING → RUNNING → DONE | FAILED | CANCELLED`` :class:`Job`
  lifecycle;
* :mod:`~repro.service.sinks` — streaming :class:`CliqueSink`\\ s
  (``collect`` / ``count`` / ``top_k:N`` / ``jsonl:PATH``) riding the
  engine's existing ``on_clique`` callback;
* :mod:`~repro.service.cache` — LRU :class:`ResultCache` keyed by
  (graph fingerprint, config), so threshold sweeps re-serve instantly;
* :mod:`~repro.service.scheduler` — the priority-queue
  :class:`JobScheduler` thread pool;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  JSON-lines protocol behind ``repro serve`` and the blocking
  :class:`ServiceClient`.

Quickstart (in-process)::

    from repro.service import JobScheduler, JobSpec
    from repro.engine import EnumerationConfig

    with JobScheduler(workers=4) as sched:
        job = sched.submit(JobSpec(graph=g, config=EnumerationConfig(k_min=3)))
        print(job.wait().result.cliques)

Quickstart (over the wire)::

    from repro.service import EnumerationServer, ServiceClient

    with EnumerationServer() as server:
        with ServiceClient(server.address) as client:
            job_id = client.submit("ppi.json", k_min=3, sink="count")
            print(client.wait(job_id)["sink_summary"])
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobSpec, JobStatus
from repro.service.scheduler import JobScheduler
from repro.service.server import EnumerationServer, serve
from repro.service.sinks import (
    CliqueSink,
    CollectSink,
    CountSink,
    JsonlSink,
    TopKSink,
    make_sink,
    validate_sink_spec,
)

__all__ = [
    "Job",
    "JobSpec",
    "JobStatus",
    "JobScheduler",
    "ResultCache",
    "CliqueSink",
    "CollectSink",
    "CountSink",
    "TopKSink",
    "JsonlSink",
    "make_sink",
    "validate_sink_spec",
    "EnumerationServer",
    "ServiceClient",
    "serve",
]
