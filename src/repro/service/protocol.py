"""The JSON-lines wire protocol shared by server and client.

One request per line, one response per line, UTF-8 JSON objects.  A
request is ``{"op": <name>, ...fields}``; a response is always
``{"ok": true, ...}`` or ``{"ok": false, "error": <message>}`` — the
connection survives bad requests, so a client can keep a socket open
for a whole sweep.

This module owns the payload translation both ends must agree on:
:class:`~repro.engine.config.EnumerationConfig` to/from a flat dict,
and :class:`~repro.service.jobs.JobSpec` from a ``submit`` payload
(path-referenced or inline graph).
"""

from __future__ import annotations

import json

from repro.errors import ParameterError
from repro.core.graph import Graph
from repro.engine.config import EnumerationConfig
from repro.service.jobs import JobSpec

__all__ = [
    "config_to_payload",
    "config_from_payload",
    "spec_to_payload",
    "spec_from_payload",
    "encode_line",
    "decode_line",
]

#: EnumerationConfig fields carried flat in submit payloads.
_CONFIG_FIELDS = (
    "backend",
    "k_min",
    "k_max",
    "max_cliques",
    "max_candidate_bytes",
    "jobs",
    "level_store",
    "compute_domain",
    "kernel",
    "options",
)


def config_to_payload(config: EnumerationConfig) -> dict:
    """Flatten a config to JSON-safe fields (defaults omitted)."""
    defaults = EnumerationConfig()
    out = {}
    for name in _CONFIG_FIELDS:
        value = getattr(config, name)
        if value != getattr(defaults, name):
            out[name] = value
    return out


def config_from_payload(payload: dict) -> EnumerationConfig:
    """Rebuild a validated config from submit-payload fields."""
    kwargs = {k: payload[k] for k in _CONFIG_FIELDS if k in payload}
    if "options" in kwargs and not isinstance(kwargs["options"], dict):
        raise ParameterError("config options must be a JSON object")
    return EnumerationConfig(**kwargs)


def spec_to_payload(spec: JobSpec) -> dict:
    """Serialize a JobSpec for a ``submit`` request.

    In-memory graphs travel inline as ``{"n":..., "edges":[...]}``;
    path references travel as the path string (the server loads them,
    so path submissions only work when client and server share a
    filesystem — which a unix-socket deployment does by construction).
    """
    out = dict(config_to_payload(spec.config))
    if isinstance(spec.graph, Graph):
        out["graph_inline"] = {
            "n": spec.graph.n,
            "edges": [[u, v] for u, v in spec.graph.edges()],
        }
    else:
        out["graph"] = str(spec.graph)
    out["sink"] = spec.sink
    out["priority"] = spec.priority
    out["use_cache"] = spec.use_cache
    out["label"] = spec.label
    return out


#: every field a submit request may carry besides the op itself.
_SUBMIT_FIELDS = frozenset(_CONFIG_FIELDS) | {
    "op",
    "graph",
    "graph_inline",
    "sink",
    "priority",
    "use_cache",
    "label",
}


def spec_from_payload(payload: dict) -> JobSpec:
    """Parse and validate a ``submit`` payload into a JobSpec.

    Unknown fields are rejected rather than ignored — a misspelled
    config key (``kmin``) silently running the job with defaults would
    return wrong results with status ``done``, violating the repo's
    fail-before-work contract.
    """
    unknown = set(payload) - _SUBMIT_FIELDS
    if unknown:
        raise ParameterError(
            f"unknown submit field(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(_SUBMIT_FIELDS - {'op'}))}"
        )
    if "graph_inline" in payload:
        inline = payload["graph_inline"]
        if not isinstance(inline, dict) or "n" not in inline:
            raise ParameterError(
                "graph_inline must be {'n': int, 'edges': [[u, v], ...]}"
            )
        graph = Graph.from_edges(
            inline["n"],
            [(int(u), int(v)) for u, v in inline.get("edges", [])],
        )
    elif "graph" in payload:
        graph = str(payload["graph"])
    else:
        raise ParameterError("submit needs 'graph' (path) or 'graph_inline'")
    return JobSpec(
        graph=graph,
        config=config_from_payload(payload),
        sink=payload.get("sink", "collect"),
        priority=int(payload.get("priority", 0)),
        use_cache=bool(payload.get("use_cache", True)),
        label=str(payload.get("label", "")),
    )


def encode_line(message: dict) -> bytes:
    """One protocol line: compact JSON plus the newline terminator."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line into a dict; raises on malformed input."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"malformed protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ParameterError("protocol messages must be JSON objects")
    return message
