"""The enumeration job server: ``repro serve``.

A thin network face over :class:`~repro.service.scheduler.
JobScheduler`: each connection is handled by a thread, each line is one
JSON request (see :mod:`repro.service.protocol`), and every operation
maps onto a scheduler call — the server holds no enumeration logic at
all, which is the point of the PR-1 engine layer.

Listens on TCP (default) or a unix socket (``socket_path=...``), the
latter being the deployment where path-referenced graph submissions
are always valid.

Operations
----------
``ping``       liveness, version, uptime, active job count
``submit``     queue a job (path or inline graph) → ``job_id``
``status``     one job's state
``wait``       block (server-side) until a job is terminal
``result``     job state plus collected cliques
``jobs``       all jobs
``cancel``     cancel by id
``stats``      queue depth, status counts, cache hit/miss
``metrics``    one Prometheus-text scrape (requires ``--metrics``)
``trace``      newest trace records (requires ``--trace``)
``shutdown``   stop the listener (the scheduler drains separately)
"""

from __future__ import annotations

import socket
import socketserver
import stat
import threading
import time
from pathlib import Path

from repro._version import __version__
from repro.errors import ParameterError, ReproError
from repro.obs.http import MetricsExporter
from repro.obs.metrics import CONTENT_TYPE
from repro.obs.runtime import Observability, set_observability
from repro.service.protocol import (
    decode_line,
    encode_line,
    spec_from_payload,
)
from repro.service.jobs import JobStatus
from repro.service.scheduler import JobScheduler

__all__ = ["DEFAULT_PORT", "EnumerationServer", "serve"]

#: default TCP port of the enumeration job service (the CLI shares it).
DEFAULT_PORT = 7531


class _Handler(socketserver.StreamRequestHandler):
    """One thread per connection; one JSON request per line."""

    def handle(self) -> None:
        server: EnumerationServer
        server = self.server.enumeration_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = decode_line(line)
                response = server.dispatch(request)
            except ReproError as exc:
                response = {"ok": False, "error": str(exc)}
            except Exception as exc:  # noqa: BLE001 — connection must survive
                response = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            try:
                self.wfile.write(encode_line(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover — platforms without AF_UNIX
    _ThreadingUnixServer = None


class EnumerationServer:
    """JSON-lines job server over a :class:`JobScheduler`.

    Parameters
    ----------
    scheduler:
        The scheduler to expose (a default 2-worker one if unset; it is
        shut down with the server only when the server created it).
    host, port:
        TCP bind address; ``port=0`` picks a free port (read it back
        from :attr:`address`).
    socket_path:
        When given, listen on this unix socket instead of TCP.
    metrics_port:
        When given, additionally serve ``GET /metrics`` (Prometheus
        text) on this TCP port via
        :class:`~repro.obs.http.MetricsExporter`; ``0`` picks a free
        port (read it back from :attr:`metrics_address`).  Requires
        the scheduler's observability plane to have metrics enabled.

    Use :meth:`start` for a background listener (tests, embedding) or
    :meth:`serve_forever` to occupy the current thread (the CLI).
    """

    def __init__(
        self,
        scheduler: JobScheduler | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | Path | None = None,
        metrics_port: int | None = None,
    ):
        self._owns_scheduler = scheduler is None
        # the listener is bound *before* a default scheduler is
        # created, so a bind failure (EADDRINUSE, bad socket path)
        # cannot leak an owned scheduler's worker threads
        if socket_path is not None:
            if _ThreadingUnixServer is None:  # pragma: no cover
                raise ParameterError(
                    "unix sockets are not supported on this platform; "
                    "use host/port"
                )
            self._socket_path = Path(socket_path)
            if self._socket_path.exists():
                # only reclaim a *stale socket*: a regular file at a
                # mistyped path must never be unlinked, and a socket a
                # live server still accepts on must not be hijacked
                if not stat.S_ISSOCK(self._socket_path.stat().st_mode):
                    raise ParameterError(
                        f"{self._socket_path} exists and is not a "
                        "socket; refusing to replace it"
                    )
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.connect(str(self._socket_path))
                except OSError:
                    self._socket_path.unlink()
                else:
                    raise ParameterError(
                        f"socket {self._socket_path} is already served "
                        "by a live server"
                    )
                finally:
                    probe.close()
            self._server = _ThreadingUnixServer(
                str(self._socket_path), _Handler
            )
        else:
            self._socket_path = None
            self._server = _ThreadingTCPServer((host, port), _Handler)
        self.scheduler = scheduler if scheduler is not None else JobScheduler()
        self._server.enumeration_server = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._shutdown_lock = threading.Lock()
        self._stopped = False
        self._serving = False
        self.started_at = time.time()
        self._exporter: MetricsExporter | None = None
        if metrics_port is not None and not self.scheduler.obs.metrics_on:
            # fail before serving — and without leaking what __init__
            # already built (the bound listener, an owned scheduler)
            self._server.server_close()
            if self._socket_path is not None:
                self._socket_path.unlink(missing_ok=True)
            if self._owns_scheduler:
                self.scheduler.shutdown(wait=False)
            raise ParameterError(
                "metrics_port requires an observability plane with "
                "metrics enabled (repro serve --metrics, or "
                "configure(metrics=True))"
            )
        if metrics_port is not None:
            self._exporter = MetricsExporter(
                self.scheduler.render_metrics, host=host, port=metrics_port
            )

    @property
    def address(self) -> tuple[str, int] | str:
        """Where clients connect: ``(host, port)`` or the socket path."""
        if self._socket_path is not None:
            return str(self._socket_path)
        return self._server.server_address[:2]

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The scrape endpoint's ``(host, port)``, or ``None``."""
        if self._exporter is None:
            return None
        return self._exporter.address

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "EnumerationServer":
        """Serve on a background thread; returns self for chaining."""
        self._serving = True
        if self._exporter is not None:
            self._exporter.start()
        thread = threading.Thread(
            target=self._server.serve_forever,
            name="enum-server",
            daemon=True,
        )
        # publish under the shutdown lock: a concurrent shutdown() swaps
        # _thread out under it, and a bare write here could resurrect
        # the handle after shutdown already consumed (and joined) it
        with self._shutdown_lock:
            self._thread = thread
        thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the current thread until :meth:`shutdown`."""
        self._serving = True
        if self._exporter is not None:
            self._exporter.start()
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop the listener, join the thread, drain the owned scheduler.

        Idempotent and safe under concurrent invocation (the protocol
        ``shutdown`` op runs it from a helper thread while ``__exit__``
        or ``serve()``'s cleanup may run it from the main thread);
        later callers return immediately without waiting for the first
        to finish.
        """
        with self._shutdown_lock:
            if self._stopped:
                return
            self._stopped = True
            thread, self._thread = self._thread, None
        if self._exporter is not None:
            self._exporter.stop()
        if self._serving:
            # BaseServer.shutdown waits on an event only serve_forever
            # sets — calling it on a never-started server blocks forever
            self._server.shutdown()
        self._server.server_close()
        if thread is not None:
            thread.join()
        if self._socket_path is not None:
            self._socket_path.unlink(missing_ok=True)
        if self._owns_scheduler:
            self.scheduler.shutdown(wait=True)

    def __enter__(self) -> "EnumerationServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- request dispatch ----------------------------------------------------

    def dispatch(self, request: dict) -> dict:
        """Map one decoded request onto the scheduler; returns the reply."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(
            op, str
        ) and not op.startswith("_") else None
        if handler is None:
            raise ParameterError(f"unknown op {op!r}")
        return handler(request)

    def _op_ping(self, request: dict) -> dict:
        jobs = self.scheduler.jobs()
        active = sum(
            1 for job in jobs
            if job.status in (JobStatus.PENDING, JobStatus.RUNNING)
        )
        return {
            "ok": True,
            "pong": True,
            "version": __version__,
            "uptime_seconds": time.time() - self.started_at,
            "active_jobs": active,
            "workers": self.scheduler.n_workers,
        }

    def _op_submit(self, request: dict) -> dict:
        job = self.scheduler.submit(spec_from_payload(request))
        return {"ok": True, "job_id": job.id}

    def _op_status(self, request: dict) -> dict:
        job = self.scheduler.get(str(request.get("job_id")))
        return {"ok": True, "job": job.to_dict()}

    def _op_wait(self, request: dict) -> dict:
        job = self.scheduler.get(str(request.get("job_id")))
        timeout = request.get("timeout")
        try:
            job.wait(None if timeout is None else float(timeout))
        except TimeoutError as exc:
            return {"ok": False, "error": str(exc), "timeout": True}
        return {"ok": True, "job": job.to_dict()}

    def _op_result(self, request: dict) -> dict:
        job = self.scheduler.get(str(request.get("job_id")))
        if not job.done:
            return {
                "ok": False,
                "error": f"job {job.id} is still {job.status.value}",
            }
        return {"ok": True, "job": job.to_dict(include_cliques=True)}

    def _op_jobs(self, request: dict) -> dict:
        return {
            "ok": True,
            "jobs": [job.to_dict() for job in self.scheduler.jobs()],
        }

    def _op_cancel(self, request: dict) -> dict:
        cancelled = self.scheduler.cancel(str(request.get("job_id")))
        return {"ok": True, "cancelled": cancelled}

    def _op_stats(self, request: dict) -> dict:
        return {"ok": True, "stats": self.scheduler.stats()}

    def _op_metrics(self, request: dict) -> dict:
        # render_metrics raises ParameterError when the plane has
        # metrics off; the connection handler turns it into ok=False
        return {
            "ok": True,
            "content_type": CONTENT_TYPE,
            "metrics": self.scheduler.render_metrics(),
        }

    def _op_trace(self, request: dict) -> dict:
        tracer = self.scheduler.obs.tracer
        if not tracer.enabled:
            raise ParameterError(
                "tracing is disabled; start the service with --trace "
                "or configure(trace=True)"
            )
        limit = request.get("limit")
        return {
            "ok": True,
            "records": tracer.records(
                None if limit is None else int(limit)
            ),
        }

    def _op_shutdown(self, request: dict) -> dict:
        # ack first, then stop the listener from a helper thread so this
        # handler's connection gets its response before the socket dies
        threading.Thread(target=self.shutdown, daemon=True).start()
        return {"ok": True, "stopping": True}


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    socket_path: str | Path | None = None,
    workers: int = 2,
    cache_size: int = 128,
    memory_budget_bytes: int | None = None,
    metrics: bool = False,
    metrics_port: int | None = None,
    trace_path: str | Path | None = None,
) -> None:
    """Blocking entry point behind ``repro serve``.

    Builds the scheduler (with an LRU result cache of ``cache_size``
    entries; 0 disables caching) and serves until interrupted.
    ``memory_budget_bytes`` turns on admission control: workers only
    claim a job when its memory-model predicted peak fits next to the
    jobs already running (see :class:`~repro.service.scheduler.
    JobScheduler`).

    ``metrics`` (implied by ``metrics_port``) and ``trace_path``
    install an enabled observability plane for the server's lifetime —
    ``metrics_port`` additionally serves ``GET /metrics`` — and the
    previous (normally disabled) plane is restored on exit.
    """
    from repro.service.cache import ResultCache

    metrics = metrics or metrics_port is not None
    previous = None
    plane = None
    if metrics or trace_path is not None:
        plane = Observability(metrics=metrics, trace_path=trace_path)
        previous = set_observability(plane)
    try:
        cache = ResultCache(cache_size) if cache_size > 0 else None
        scheduler = JobScheduler(
            workers=workers,
            cache=cache,
            memory_budget_bytes=memory_budget_bytes,
        )
        try:
            server = EnumerationServer(
                scheduler,
                host=host,
                port=port,
                socket_path=socket_path,
                metrics_port=metrics_port,
            )
        except BaseException:
            # a failed bind must not leak the worker threads just started
            scheduler.shutdown(wait=False)
            raise
        where = server.address
        print(
            f"repro enumeration service listening on {where}", flush=True
        )
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(
                f"metrics exposed at http://{mhost}:{mport}/metrics",
                flush=True,
            )
        if trace_path is not None:
            print(f"trace records appended to {trace_path}", flush=True)
        interrupted = False
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            interrupted = True
        finally:
            server.shutdown()
            # Ctrl-C means stop *now*: every unfinished job is cancelled
            # (in-flight ones abort at their next emission, leaving no
            # partial output).  A protocol-driven stop drains the queue.
            scheduler.shutdown(wait=not interrupted)
    finally:
        if previous is not None:
            set_observability(previous)
        if plane is not None:
            plane.close()
