"""A tiny stdlib Prometheus scrape endpoint: ``GET /metrics``.

One daemon-threaded :class:`~http.server.ThreadingHTTPServer` serving
exactly two routes — ``/metrics`` (the text exposition a Prometheus
scraper pulls) and ``/healthz`` (liveness for load balancers) — over a
callback so the exporter stays decoupled from the service layer:
whoever starts it decides what a scrape renders (the job server passes
a closure that refreshes the gauges first).

No third-party dependency, by design: the container bakes in only the
scientific python stack, and a scrape endpoint needs nothing more than
``http.server``.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, cast

from repro.obs.metrics import CONTENT_TYPE

__all__ = ["MetricsExporter"]


class _ScrapeHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] == "/metrics":
            try:
                render = self.server.render  # type: ignore[attr-defined]
                body = render().encode("utf-8")
            except Exception as exc:  # noqa: BLE001 - keep serving
                self.send_error(500, explain=f"{type(exc).__name__}: {exc}")
                return
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.split("?", 1)[0] == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, explain="try /metrics or /healthz")

    def log_message(self, format: str, *args: Any) -> None:
        """Scrapes are periodic background noise; keep stdout clean."""


class MetricsExporter:
    """Background HTTP listener rendering a registry on each scrape.

    Parameters
    ----------
    render:
        Zero-argument callable returning the exposition text; invoked
        per scrape (the caller refreshes gauges inside it).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address`).
    """

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = ThreadingHTTPServer((host, port), _ScrapeHandler)
        self._server.daemon_threads = True
        self._server.render = render  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return cast("tuple[str, int]", self._server.server_address[:2])

    @property
    def url(self) -> str:
        """The scrape URL."""
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsExporter":
        """Serve scrapes on a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the listener and join its thread; idempotent."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._server.shutdown()
            thread.join()
        self._server.server_close()
