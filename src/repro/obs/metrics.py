"""The metrics registry: counters, gauges, histograms, Prometheus text.

One :class:`MetricsRegistry` is the numeric half of the observability
plane (:mod:`repro.obs`): named metric *families*, each holding one
sample per label combination, rendered on demand in the Prometheus
text exposition format (version 0.0.4 — what ``prometheus`` and every
text-format scraper parse).

Three family types, mirroring Prometheus semantics:

* :class:`Counter` — monotone tally (``inc``; ``set_to`` mirrors an
  external monotone tally such as the result-cache hit count);
* :class:`Gauge` — instantaneous value (``set`` / ``inc`` / ``get``);
* :class:`Histogram` — cumulative buckets plus sum and count
  (``observe``).

Everything is thread-safe: service workers fold finished jobs while
scrape requests render, so each family guards its samples with the
registry's lock.  Rendering is wait-free for the workers' hot path
apart from that lock — there is no per-sample allocation on the
increment path (samples live in a plain dict keyed by label values).

>>> reg = MetricsRegistry()
>>> jobs = reg.counter("repro_jobs_total", "Finished jobs.", ("status",))
>>> jobs.inc(status="done")
>>> print(reg.render().strip())
# HELP repro_jobs_total Finished jobs.
# TYPE repro_jobs_total counter
repro_jobs_total{status="done"} 1
"""

from __future__ import annotations

import math
import re
import threading
from collections.abc import Callable
from typing import Any, TypeVar, cast

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CONTENT_TYPE",
]

#: the Content-Type the text exposition format is served under.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets — spans the microsecond-to-minutes range
#: enumeration levels and jobs actually land in.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _format_value(value: float) -> str:
    """A sample value in exposition form (ints without the ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_labels(names: tuple[str, ...], values: tuple) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _Family:
    """Shared base: name, help text, label schema, sample storage."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labels: tuple[str, ...],
        lock: Any,  # any lock-like context manager (threading.RLock())
    ) -> None:
        if not _NAME_RE.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ParameterError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help = help
        self.labels = tuple(labels)
        self._lock = lock
        self._samples: dict[tuple, float] = {}

    def _key(self, label_values: dict[str, object]) -> tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise ParameterError(
                f"metric {self.name!r} takes labels "
                f"{', '.join(self.labels) or '(none)'}, got "
                f"{', '.join(sorted(label_values)) or '(none)'}"
            )
        return tuple(str(label_values[n]) for n in self.labels)

    def get(self, **label_values: object) -> float:
        """Current value of one sample (0 when never touched)."""
        key = self._key(label_values)
        with self._lock:
            return self._samples.get(key, 0)

    def samples(self) -> dict[tuple, float]:
        """Snapshot of every (label values) -> value sample."""
        with self._lock:
            return dict(self._samples)

    def _render(self, lines: list[str]) -> None:
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._samples):
            lines.append(
                f"{self.name}{_format_labels(self.labels, key)} "
                f"{_format_value(self._samples[key])}"
            )


_F = TypeVar("_F", bound=_Family)


class Counter(_Family):
    """Monotonically increasing tally."""

    kind = "counter"

    def inc(self, amount: float = 1, **label_values: object) -> None:
        """Add ``amount`` (must be >= 0) to one sample."""
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = self._key(label_values)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def set_to(self, value: float, **label_values: object) -> None:
        """Mirror an external monotone tally (e.g. cache hit counts).

        Moves the sample forward to ``value``; a value below the
        current sample raises, keeping the counter honest.
        """
        key = self._key(label_values)
        with self._lock:
            current = self._samples.get(key, 0)
            if value < current:
                raise ParameterError(
                    f"counter {self.name!r} cannot move backwards "
                    f"({current} -> {value})"
                )
            self._samples[key] = value


class Gauge(_Family):
    """Instantaneous value that may move either way."""

    kind = "gauge"

    def set(self, value: float, **label_values: object) -> None:
        """Set one sample to ``value``."""
        with self._lock:
            self._samples[self._key(label_values)] = value

    def inc(self, amount: float = 1, **label_values: object) -> None:
        """Add ``amount`` (either sign) to one sample."""
        key = self._key(label_values)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def set_max(self, value: float, **label_values: object) -> None:
        """Raise one sample to ``value`` if it is below it (high-water)."""
        key = self._key(label_values)
        with self._lock:
            if value > self._samples.get(key, 0):
                self._samples[key] = value


class Histogram(_Family):
    """Cumulative histogram: per-bucket counts plus ``_sum``/``_count``.

    Buckets are upper bounds; the implicit ``+Inf`` bucket is always
    present.  Rendered the Prometheus way — every bucket counts *all*
    observations at or below its bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: tuple[str, ...],
        lock: Any,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ParameterError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        self.buckets = bounds
        # per label key: [bucket counts..., +Inf count], sum
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}

    def observe(self, value: float, **label_values: object) -> None:
        """Record one observation."""
        key = self._key(label_values)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            counts[-1] += 1
            self._sums[key] += value
            # keep the base-class sample map as the observation count so
            # `get`/`samples` mean something uniform across family types
            self._samples[key] = counts[-1]

    def _render(self, lines: list[str]) -> None:
        lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._counts):
            counts = self._counts[key]
            for bound, count in zip(self.buckets, counts):
                labels = _format_labels(
                    self.labels + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {count}")
            inf_labels = _format_labels(
                self.labels + ("le",), key + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{inf_labels} {counts[-1]}")
            plain = _format_labels(self.labels, key)
            lines.append(
                f"{self.name}_sum{plain} {_format_value(self._sums[key])}"
            )
            lines.append(f"{self.name}_count{plain} {counts[-1]}")


class MetricsRegistry:
    """Named metric families with Prometheus text exposition.

    ``counter`` / ``gauge`` / ``histogram`` register-or-return: asking
    for an existing name with the same type and label schema returns
    the existing family (instrumented call sites never need import-time
    coordination); a conflicting redefinition raises.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(
        self,
        cls: Callable[..., _F],
        name: str,
        help: str,
        labels: tuple[str, ...],
        **kwargs: object,
    ) -> _F:
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if type(family) is not cls or family.labels != labels:
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labels}"
                    )
                return cast("_F", family)
            created = cls(name, help, labels, self._lock, **kwargs)
            self._families[name] = created
            return created

    def counter(
        self, name: str, help: str, labels: tuple[str, ...] = ()
    ) -> Counter:
        """Register (or fetch) a counter family."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str, labels: tuple[str, ...] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge family."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram family."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._families):
                self._families[name]._render(lines)
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, dict[tuple, float]]:
        """``{name: {label values: value}}`` across every family.

        The test-facing view: an untouched registry snapshots to ``{}``
        (families may be registered, but carry no samples), which is
        exactly what the disabled-observability fast path must keep
        true.
        """
        with self._lock:
            return {
                name: fam.samples()
                for name, fam in self._families.items()
                if fam.samples()
            }
