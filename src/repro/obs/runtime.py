"""The process-wide observability plane: one switchboard, zero-cost off.

Every instrumented layer — the engine level loop, the compressed-domain
expander, the threaded expander, the job scheduler — reads the ambient
:class:`Observability` through :func:`get_observability` instead of
threading a handle through every call signature.  The default plane is
**fully disabled**: the tracer is the allocation-free
:data:`~repro.obs.trace.NULL_TRACER`, and ``metrics_on`` is false so no
fold ever touches the registry.  ``repro serve --metrics/--trace`` (and
tests) install an enabled plane via :func:`configure`.

The hot-path contract, enforced by
``tests/obs/test_disabled_path.py``:

* with the plane disabled, **no** :class:`~repro.obs.trace.Span` object
  is allocated anywhere in an enumeration run, and
* the registry of a disabled plane stays byte-for-byte untouched
  (``registry.snapshot() == {}``),

so ``benchmarks/check_speed_baseline.py --check`` holds with
observability off — the instrumentation's disabled cost is one ambient
lookup per run plus one ``enabled`` check per instrumented region.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Observability",
    "get_observability",
    "set_observability",
    "configure",
    "disable",
    "rss_bytes",
]


class Observability:
    """One observability plane: a metrics registry plus a tracer.

    Parameters
    ----------
    metrics:
        Enable metric folding.  The registry object always exists (so
        callers can hold it before deciding), but nothing writes to it
        unless ``metrics_on`` is true.
    trace:
        Enable span recording (implied by ``trace_path``).
    trace_path:
        Optional JSONL file every trace record is appended to.
    ring_size:
        In-memory trace ring bound.
    registry:
        Share an existing registry instead of creating one.
    """

    def __init__(
        self,
        metrics: bool = False,
        trace: bool = False,
        trace_path: str | Path | None = None,
        ring_size: int = 4096,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics_on = bool(metrics)
        self.tracer: Tracer | NullTracer = (
            Tracer(ring_size=ring_size, jsonl_path=trace_path)
            if trace or trace_path is not None
            else NULL_TRACER
        )

    @property
    def trace_on(self) -> bool:
        """True when spans are being recorded."""
        return self.tracer.enabled

    @property
    def on(self) -> bool:
        """True when any part of the plane is live."""
        return self.metrics_on or self.tracer.enabled

    def close(self) -> None:
        """Flush and close the tracer's JSONL file, if any."""
        self.tracer.close()


#: the ambient plane; swapped atomically under :data:`_swap_lock`.
_ambient = Observability()
_swap_lock = threading.Lock()


def get_observability() -> Observability:
    """The ambient observability plane (disabled unless configured)."""
    return _ambient


def set_observability(obs: Observability) -> Observability:
    """Install ``obs`` as the ambient plane; returns the previous one.

    Callers that install a plane temporarily (tests, ``repro serve``)
    should restore the returned previous plane when done.
    """
    global _ambient
    with _swap_lock:
        previous, _ambient = _ambient, obs
    return previous


def configure(
    metrics: bool = False,
    trace: bool = False,
    trace_path: str | Path | None = None,
    ring_size: int = 4096,
) -> Observability:
    """Build an :class:`Observability` and install it as ambient.

    Returns the *new* plane (use :func:`set_observability` directly
    when the previous plane must be restored later).
    """
    obs = Observability(
        metrics=metrics,
        trace=trace,
        trace_path=trace_path,
        ring_size=ring_size,
    )
    set_observability(obs)
    return obs


def disable() -> Observability:
    """Install a fresh fully-disabled plane; returns the previous one."""
    return set_observability(Observability())


def rss_bytes() -> int | None:
    """This process's resident set size, or ``None`` when unreadable.

    Reads ``/proc/self/statm`` (Linux); falls back to
    ``resource.getrusage`` — whose ``ru_maxrss`` is the *peak* RSS, the
    closest portable analogue — and reports ``None`` on platforms with
    neither.  Exposed as the ``repro_rss_bytes`` gauge so operators can
    hold the live footprint against the
    :mod:`repro.core.memory_model` predictions the paper's Figure 9 is
    built on.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(rss_kb) * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return None
