"""Folding engine results and service state into the metrics registry.

The one place metric *names* are decided (the table in
``docs/ARCHITECTURE.md`` mirrors this module).  Two kinds of folding:

* **completion folds** — :func:`fold_result` / :func:`fold_job` run
  once per finished job and add the run's telemetry (operation
  counters, per-level candidates and seconds, WAH kernel word-ops,
  decompressed-bytes-avoided, steals, I/O traffic) into monotone
  counters.  Because every value comes verbatim from the job's
  :class:`~repro.core.clique_enumerator.EnumerationResult`, a scrape
  after one job matches that job's result *exactly* — the round-trip
  the acceptance test pins.
* **scrape samples** — :func:`sample_service` runs on every scrape and
  refreshes the instantaneous gauges (queue depth, jobs by state,
  cache tallies, sampled RSS next to the memory-model peaks).

Everything here is duck-typed against the result/scheduler surfaces so
:mod:`repro.obs` stays importable below both the engine and the
service layers.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import rss_bytes

__all__ = ["METRIC_NAMES", "fold_result", "fold_job", "sample_service"]

#: The metric-name authority.  Every ``repro_*`` series the stats plane
#: can export is declared here; ``tools/repro_lint`` (RL002) checks that
#: registry constructor calls across ``src/`` and the metric table in
#: ``docs/ARCHITECTURE.md`` agree with this tuple, and the obs test
#: suite asserts the names rendered from ``_COUNTER_FIELDS`` /
#: ``_DOMAIN_FIELDS`` stay inside it.
METRIC_NAMES = (
    # completion folds (fold_result)
    "repro_cliques_emitted_total",
    "repro_bit_and_ops_total",
    "repro_bit_exist_checks_total",
    "repro_pair_checks_total",
    "repro_cliques_generated_total",
    "repro_sublists_created_total",
    "repro_counter_extra_total",
    "repro_job_levels_total",
    "repro_level_candidates_total",
    "repro_level_sublists_total",
    "repro_level_seconds_total",
    "repro_level_seconds",
    "repro_peak_candidate_bytes",
    "repro_peak_paper_formula_bytes",
    "repro_kernel_word_ops_total",
    "repro_kernel_ands_total",
    "repro_decompressed_bytes_total",
    "repro_decompressed_bytes_avoided_total",
    "repro_adj_rows_compressed_total",
    "repro_domain_stats_total",
    "repro_transfers_total",
    "repro_io_read_bytes_total",
    "repro_io_written_bytes_total",
    "repro_load_balance_std_over_mean",
    # job lifecycle folds (fold_job)
    "repro_jobs_finished_total",
    "repro_job_queued_seconds",
    "repro_job_run_seconds",
    "repro_cache_replayed_jobs_total",
    "repro_predicted_peak_bytes",
    # scrape samples (sample_service)
    "repro_workers",
    "repro_queue_depth",
    "repro_jobs",
    "repro_cache_entries",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_evictions_total",
    "repro_admission_budget_bytes",
    "repro_admission_bytes_in_use",
    "repro_admission_admitted_total",
    "repro_admission_deferred_total",
    "repro_uptime_seconds",
    "repro_rss_bytes",
)

#: OpCounters attributes folded 1:1 into ``repro_<name>_total``.
_COUNTER_FIELDS = (
    "bit_and_ops",
    "bit_exist_checks",
    "pair_checks",
    "cliques_generated",
    "maximal_emitted",
    "sublists_created",
)

#: domain_stats keys promoted to first-class counters; anything else a
#: future expander reports folds into the labeled fallback family.
_DOMAIN_FIELDS = {
    "kernel_word_ops": "repro_kernel_word_ops_total",
    "kernel_ands": "repro_kernel_ands_total",
    "decompressed_bytes": "repro_decompressed_bytes_total",
    "decompressed_bytes_avoided": "repro_decompressed_bytes_avoided_total",
    "adj_rows_compressed": "repro_adj_rows_compressed_total",
}

_DOMAIN_HELP = {
    "kernel_word_ops": "Compressed WAH words touched by the AND kernels.",
    "kernel_ands": "Compressed-domain AND kernel invocations.",
    "decompressed_bytes": "Sub-list bytes materialised in raw form.",
    "decompressed_bytes_avoided":
        "Raw bytes that stayed WAH-compressed end to end.",
    "adj_rows_compressed": "Adjacency rows encoded into the WAH cache.",
}


def fold_result(registry: MetricsRegistry, result: Any) -> None:
    """Add one finished run's telemetry into the registry's counters.

    ``result`` is an :class:`~repro.core.clique_enumerator.
    EnumerationResult` (duck-typed).  Safe to call from scheduler
    worker threads; every family is thread-safe.
    """
    counters = result.counters
    registry.counter(
        "repro_cliques_emitted_total",
        "Maximal cliques emitted by finished jobs.",
    ).inc(counters.maximal_emitted)
    for name in _COUNTER_FIELDS:
        if name == "maximal_emitted":
            continue
        registry.counter(
            f"repro_{name}_total",
            f"OpCounters.{name} accumulated over finished jobs.",
        ).inc(getattr(counters, name))
    for key, value in counters.extra.items():
        if isinstance(value, (int, float)):
            registry.counter(
                "repro_counter_extra_total",
                "Non-canonical OpCounters.extra tallies, by key.",
                ("counter",),
            ).inc(value, counter=key)
    registry.counter(
        "repro_job_levels_total",
        "Deepest candidate level reached, summed over finished jobs.",
    ).inc(counters.levels)

    level_candidates = registry.counter(
        "repro_level_candidates_total",
        "Candidates held at each level, summed over finished jobs.",
        ("k",),
    )
    level_sublists = registry.counter(
        "repro_level_sublists_total",
        "Sub-lists held at each level, summed over finished jobs.",
        ("k",),
    )
    level_seconds_total = registry.counter(
        "repro_level_seconds_total",
        "Wall-clock seconds spent producing each level.",
        ("k",),
    )
    level_seconds = registry.histogram(
        "repro_level_seconds",
        "Per-level wall-clock seconds across finished jobs.",
    )
    peak_measured = 0
    peak_formula = 0
    for i, stats in enumerate(result.level_stats):
        level_candidates.inc(stats.n_candidates, k=stats.k)
        level_sublists.inc(stats.n_sublists, k=stats.k)
        peak_measured = max(peak_measured, stats.candidate_bytes)
        peak_formula = max(peak_formula, stats.paper_formula_bytes)
        if i < len(result.level_seconds):
            level_seconds_total.inc(result.level_seconds[i], k=stats.k)
            level_seconds.observe(result.level_seconds[i])
    if result.level_stats:
        registry.gauge(
            "repro_peak_candidate_bytes",
            "Largest measured per-level candidate storage seen so far.",
        ).set_max(peak_measured)
        registry.gauge(
            "repro_peak_paper_formula_bytes",
            "Largest paper-formula (memory model) per-level prediction "
            "seen so far.",
        ).set_max(peak_formula)

    for key, value in result.domain_stats.items():
        if not isinstance(value, (int, float)):
            continue
        name = _DOMAIN_FIELDS.get(key)
        if name is not None:
            registry.counter(name, _DOMAIN_HELP[key]).inc(value)
        else:
            registry.counter(
                "repro_domain_stats_total",
                "Future compressed-domain telemetry, by key.",
                ("stat",),
            ).inc(value, stat=key)

    if result.transfers:
        registry.counter(
            "repro_transfers_total",
            "Sub-lists migrated between workers (steals/relays).",
        ).inc(result.transfers)
    if result.io is not None:
        registry.counter(
            "repro_io_read_bytes_total",
            "Level-store bytes read back from disk.",
        ).inc(result.io.bytes_read)
        registry.counter(
            "repro_io_written_bytes_total",
            "Level-store bytes spilled to disk.",
        ).inc(result.io.bytes_written)
    balance = getattr(result, "load_balance", None)
    if balance:
        registry.gauge(
            "repro_load_balance_std_over_mean",
            "Per-worker busy-seconds std/mean of the last parallel job "
            "(the paper's <=0.10 balance criterion).",
        ).set(balance.get("std_over_mean", 0.0))


def fold_job(registry: MetricsRegistry, job: Any) -> None:
    """Fold one terminal :class:`~repro.service.jobs.Job` lifecycle.

    Counts the terminal status, observes queue/run latency, counts
    cache replays, and — for real (non-replayed) successful runs —
    delegates the result telemetry to :func:`fold_result`.
    """
    registry.counter(
        "repro_jobs_finished_total",
        "Jobs reaching a terminal state, by status.",
        ("status",),
    ).inc(status=job.status.value)
    registry.histogram(
        "repro_job_queued_seconds",
        "Seconds jobs spent waiting in the queue.",
    ).observe(job.queued_seconds)
    registry.histogram(
        "repro_job_run_seconds",
        "Seconds jobs spent executing.",
    ).observe(job.run_seconds)
    if job.cache_hit:
        registry.counter(
            "repro_cache_replayed_jobs_total",
            "Jobs served by replaying a cached result.",
        ).inc()
    elif job.result is not None:
        fold_result(registry, job.result)
    predicted = getattr(job, "predicted_peak_bytes", None)
    if predicted:
        registry.gauge(
            "repro_predicted_peak_bytes",
            "Largest memory-model admission prediction among finished "
            "jobs (compare against repro_peak_candidate_bytes, the "
            "measured peak it must bound).",
        ).set_max(predicted)


def sample_service(registry: MetricsRegistry, scheduler: Any) -> None:
    """Refresh the instantaneous gauges from live scheduler state.

    Called on every scrape (wire ``metrics`` op or the HTTP exporter),
    so gauge freshness equals scrape freshness — the live stats plane.
    """
    stats = scheduler.stats()
    registry.gauge(
        "repro_workers", "Scheduler worker threads."
    ).set(stats["workers"])
    registry.gauge(
        "repro_queue_depth", "Jobs waiting in the priority queue."
    ).set(stats["queued"])
    jobs_gauge = registry.gauge(
        "repro_jobs", "Retained jobs by lifecycle state.", ("status",)
    )
    for status, count in stats["jobs"].items():
        jobs_gauge.set(count, status=status)
    cache = stats.get("cache")
    if cache is not None:
        registry.gauge(
            "repro_cache_entries", "Result-cache entries held."
        ).set(cache["entries"])
        registry.counter(
            "repro_cache_hits_total", "Result-cache hits."
        ).set_to(cache["hits"])
        registry.counter(
            "repro_cache_misses_total", "Result-cache misses."
        ).set_to(cache["misses"])
        registry.counter(
            "repro_cache_evictions_total", "Result-cache evictions."
        ).set_to(cache["evictions"])
    admission = stats.get("admission")
    if admission is not None:
        registry.gauge(
            "repro_admission_budget_bytes",
            "Configured admission-control memory budget (0 when none).",
        ).set(admission["budget_bytes"] or 0)
        registry.gauge(
            "repro_admission_bytes_in_use",
            "Predicted bytes charged by the jobs currently admitted.",
        ).set(admission["admitted_bytes"])
        registry.counter(
            "repro_admission_admitted_total",
            "Jobs admitted past the memory-budget check.",
        ).set_to(admission["admitted_total"])
        registry.counter(
            "repro_admission_deferred_total",
            "Deferral events: claims re-queued because the predicted "
            "peak did not fit the remaining budget.",
        ).set_to(admission["deferred_total"])
    started = getattr(scheduler, "started_at", None)
    if started is not None:
        registry.gauge(
            "repro_uptime_seconds", "Seconds since the scheduler started."
        ).set(time.time() - started)
    rss = rss_bytes()
    if rss is not None:
        registry.gauge(
            "repro_rss_bytes",
            "Sampled resident set size of the service process (compare "
            "against repro_peak_paper_formula_bytes, the memory-model "
            "prediction).",
        ).set(rss)
