"""Unified observability: trace spans, metrics, and the live stats plane.

The paper's methodology is observability-driven — its speedup,
load-balance, and memory-footprint evidence (Sections 3, Figures 6–9)
are continuous signals, not one-off reports.  This package is the
substrate that emits them while a job runs:

* :mod:`~repro.obs.metrics` — a thread-safe :class:`MetricsRegistry`
  of counters/gauges/histograms with Prometheus text exposition;
* :mod:`~repro.obs.trace` — a :class:`Tracer` recording structured
  span/event dicts into a ring buffer and an optional JSONL file, with
  a strict zero-allocation no-op path while disabled;
* :mod:`~repro.obs.runtime` — the process-wide
  :class:`Observability` plane the instrumented layers (level loop,
  compressed expander, threaded expander, job scheduler) read
  ambiently; disabled by default, enabled by ``repro serve
  --metrics/--trace`` or :func:`configure`;
* :mod:`~repro.obs.bridge` — the metric-name authority: folds finished
  :class:`~repro.core.clique_enumerator.EnumerationResult`\\ s and live
  scheduler state into the registry;
* :mod:`~repro.obs.http` — a stdlib ``GET /metrics`` scrape endpoint.

The layering rule: ``repro.obs`` imports nothing from the engine or
service layers (folding is duck-typed), so every layer above it may
instrument freely without cycles.

Quickstart::

    from repro import obs

    plane = obs.configure(metrics=True, trace=True)
    ...  # run enumerations / schedule jobs
    print(plane.registry.render())          # Prometheus text
    for rec in plane.tracer.records(20):    # newest spans
        print(rec["name"], rec.get("dur_s"))
"""

from repro.obs.bridge import fold_job, fold_result, sample_service
from repro.obs.http import MetricsExporter
from repro.obs.metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runtime import (
    Observability,
    configure,
    disable,
    get_observability,
    rss_bytes,
    set_observability,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsExporter",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observability",
    "configure",
    "disable",
    "get_observability",
    "set_observability",
    "rss_bytes",
    "fold_result",
    "fold_job",
    "sample_service",
]
