"""Structured trace spans: the timeline half of the observability plane.

A :class:`Tracer` records *spans* (named, timed regions — a job, a
candidate level, an expander batch) and *events* (points in time — a
steal, a store retirement) into a bounded in-memory ring buffer and,
optionally, a JSONL file.  Records are plain dicts with a fixed schema
(:data:`REQUIRED_KEYS`; ``tools/check_trace_schema.py`` gates the JSONL
form in CI)::

    {"ts": 1754650000.123,     # wall-clock start, seconds since epoch
     "kind": "span",           # "span" | "event"
     "name": "level",          # span taxonomy: see docs/ARCHITECTURE.md
     "dur_s": 0.0123,          # spans only: wall-clock duration
     "thread": "enum-worker-0",
     "depth": 2,               # nesting depth within the thread
     "fields": {"k": 3, ...}}  # free-form instrumentation payload

Spans nest per thread (``depth`` is maintained thread-locally), so a
renderer can indent a job's levels under its job span without a span-id
protocol.

The disabled path is strict: :data:`NULL_TRACER` hands out one shared
:data:`NULL_SPAN` singleton from every :meth:`~NullTracer.span` call
and drops every event — **no span object is ever allocated** while
tracing is off, which is what keeps the enumeration hot loop clean (the
fast-path test patches :class:`Span` construction to prove it).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from types import TracebackType
from typing import Any

__all__ = [
    "REQUIRED_KEYS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
]

#: keys every trace record carries (``dur_s`` additionally on spans).
REQUIRED_KEYS = ("ts", "kind", "name", "thread", "depth", "fields")


class Span:
    """One timed region; use as a context manager.

    Only a real :class:`Tracer` constructs these — the disabled path
    reuses :data:`NULL_SPAN`.  ``set(**fields)`` adds payload fields any
    time before the span closes (e.g. counts only known at the end).
    """

    __slots__ = ("_tracer", "name", "fields", "_ts", "_t0", "_depth")

    def __init__(
        self, tracer: "Tracer", name: str, fields: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.fields = fields

    def set(self, **fields: Any) -> None:
        """Attach (or overwrite) payload fields."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self._ts = time.time()
        self._depth = self._tracer._enter_depth()
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        dur = time.perf_counter() - self._t0
        self._tracer._exit_depth()
        if exc_type is not None:
            self.fields["error"] = exc_type.__name__
        self._tracer._record(
            {
                "ts": self._ts,
                "kind": "span",
                "name": self.name,
                "dur_s": dur,
                "thread": threading.current_thread().name,
                "depth": self._depth,
                "fields": self.fields,
            }
        )


class _NullSpan:
    """The shared do-nothing span of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def set(self, **fields: Any) -> None:
        pass


#: the singleton no-op span every disabled ``span()`` call returns.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in while tracing is disabled: allocates nothing."""

    enabled = False

    def span(self, name: str, **fields: Any) -> _NullSpan:
        """Always the shared :data:`NULL_SPAN` — never a new object."""
        return NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        """Dropped."""

    def records(self, limit: int | None = None) -> list[dict]:
        """Always empty."""
        return []

    def close(self) -> None:
        """Nothing to flush."""


#: the process-wide disabled tracer (see :mod:`repro.obs.runtime`).
NULL_TRACER = NullTracer()


class Tracer:
    """Span/event recorder over a ring buffer and an optional JSONL file.

    Parameters
    ----------
    ring_size:
        Bound on in-memory records; older records fall off.  The ring
        is what the service's ``trace`` wire op and ``repro trace``
        serve.
    jsonl_path:
        When given, every record is additionally appended as one JSON
        line (flushed per record — trace volume is span-per-level, not
        span-per-operation, so durability wins over batching).

    Thread-safe: engine worker threads, scheduler workers, and scrape
    requests may all touch one tracer.
    """

    enabled = True

    def __init__(
        self,
        ring_size: int = 4096,
        jsonl_path: str | Path | None = None,
    ) -> None:
        self._ring: deque[dict] = deque(maxlen=max(1, ring_size))
        self._io_lock = threading.Lock()
        self._depth = threading.local()
        self.jsonl_path = None if jsonl_path is None else Path(jsonl_path)
        self._file = (
            None
            if self.jsonl_path is None
            else open(self.jsonl_path, "a", encoding="utf-8")
        )

    # -- depth bookkeeping (thread-local nesting) ---------------------------

    def _enter_depth(self) -> int:
        depth = getattr(self._depth, "value", 0)
        self._depth.value = depth + 1
        return depth

    def _exit_depth(self) -> None:
        self._depth.value = max(0, getattr(self._depth, "value", 1) - 1)

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **fields: Any) -> Span:
        """A new span; activate it with ``with``."""
        return Span(self, name, fields)

    def event(self, name: str, **fields: Any) -> None:
        """Record one point-in-time event."""
        self._record(
            {
                "ts": time.time(),
                "kind": "event",
                "name": name,
                "thread": threading.current_thread().name,
                "depth": getattr(self._depth, "value", 0),
                "fields": fields,
            }
        )

    def _record(self, record: dict) -> None:
        self._ring.append(record)  # deque.append is atomic
        if self._file is not None:
            line = json.dumps(record, separators=(",", ":"), default=str)
            with self._io_lock:
                if self._file is not None:
                    self._file.write(line + "\n")
                    self._file.flush()

    # -- observation --------------------------------------------------------

    def records(self, limit: int | None = None) -> list[dict]:
        """The newest ``limit`` ring records, oldest first."""
        records = list(self._ring)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def close(self) -> None:
        """Close the JSONL file (the ring stays readable); idempotent."""
        with self._io_lock:
            if self._file is not None:
                self._file.close()
                self._file = None
