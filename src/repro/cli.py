"""Command-line interface for the clique framework.

Usage::

    python -m repro.cli enumerate GRAPH [--backend NAME] [--jobs N]
                                  [--k-min K] [--k-max K] [--count]
    python -m repro.cli engines
    python -m repro.cli maxclique GRAPH
    python -m repro.cli stats GRAPH
    python -m repro.cli convert GRAPH OUTPUT

``GRAPH`` is any file readable by :mod:`repro.core.graph_io` (DIMACS
``.dimacs``/``.clq``, edge list ``.edges``/``.txt``, JSON ``.json``);
``convert`` rewrites between formats by extension.  ``enumerate`` runs
on any registered :mod:`repro.engine` backend (``engines`` lists them);
all backends print identical cliques.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import graph_io
from repro.core.maximum_clique import maximum_clique
from repro.core.stats import summarize
from repro.engine import (
    EnumerationConfig,
    EnumerationEngine,
    available_backends,
    backend_table,
)
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Genome-scale clique enumeration (Zhang et al., SC 2005 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_enum = sub.add_parser(
        "enumerate", help="enumerate maximal cliques"
    )
    p_enum.add_argument("graph", help="input graph file")
    p_enum.add_argument(
        "--backend",
        default="incore",
        choices=available_backends(),
        metavar="NAME",
        help=(
            "execution backend (see the 'engines' subcommand; default: "
            "incore; choices: %(choices)s)"
        ),
    )
    p_enum.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for parallel backends (default: cpu count)",
    )
    p_enum.add_argument(
        "--k-min", type=int, default=1, help="minimum clique size (Init_K)"
    )
    p_enum.add_argument(
        "--k-max", type=int, default=None, help="maximum clique size"
    )
    p_enum.add_argument(
        "--count",
        action="store_true",
        help="print only per-size counts, not the cliques",
    )

    sub.add_parser(
        "engines", help="list the registered enumeration backends"
    )

    p_max = sub.add_parser("maxclique", help="exact maximum clique")
    p_max.add_argument("graph", help="input graph file")

    p_stats = sub.add_parser("stats", help="graph summary statistics")
    p_stats.add_argument("graph", help="input graph file")

    p_conv = sub.add_parser(
        "convert", help="convert between graph formats by extension"
    )
    p_conv.add_argument("graph", help="input graph file")
    p_conv.add_argument("output", help="output graph file")
    return parser


def _cmd_enumerate(args) -> int:
    g = graph_io.load(args.graph)
    config = EnumerationConfig(
        backend=args.backend,
        k_min=args.k_min,
        k_max=args.k_max,
        jobs=args.jobs,
    )
    result = EnumerationEngine().run(g, config)
    if args.count:
        for size, group in sorted(result.by_size().items()):
            print(f"size {size}: {len(group)}")
        print(f"total: {len(result.cliques)}")
    else:
        for clique in result.cliques:
            print(" ".join(map(str, clique)))
    return 0


def _cmd_engines(args) -> int:
    rows = [
        (
            info.name,
            info.storage,
            "yes" if info.parallel else "no",
            info.description,
        )
        for info in backend_table()
    ]
    name_w = max(len(r[0]) for r in rows)
    print(f"{'backend':<{name_w}}  storage  parallel  description")
    for name, storage, parallel, desc in rows:
        print(f"{name:<{name_w}}  {storage:<7}  {parallel:<8}  {desc}")
    return 0


def _cmd_maxclique(args) -> int:
    g = graph_io.load(args.graph)
    clique = maximum_clique(g)
    print(f"size {len(clique)}: {' '.join(map(str, clique))}")
    return 0


def _cmd_stats(args) -> int:
    g = graph_io.load(args.graph)
    s = summarize(g)
    print(f"vertices:            {s.n}")
    print(f"edges:               {s.m}")
    print(f"density:             {s.density:.4%}")
    print(f"degree (min/mean/max): {s.min_degree} / "
          f"{s.mean_degree:.2f} / {s.max_degree}")
    print(f"triangles:           {s.triangles}")
    print(f"avg clustering:      {s.average_clustering:.4f}")
    print(f"components:          {s.n_components} "
          f"(largest {s.largest_component})")
    return 0


def _cmd_convert(args) -> int:
    g = graph_io.load(args.graph)
    graph_io.save(g, args.output)
    print(f"wrote {g.n} vertices / {g.m} edges to {args.output}")
    return 0


_COMMANDS = {
    "enumerate": _cmd_enumerate,
    "engines": _cmd_engines,
    "maxclique": _cmd_maxclique,
    "stats": _cmd_stats,
    "convert": _cmd_convert,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
