"""Command-line interface for the clique framework.

Usage::

    python -m repro.cli enumerate GRAPH [--backend NAME] [--jobs N]
                                  [--level-store NAME]
                                  [--compute-domain NAME]
                                  [--kernel NAME]
                                  [--k-min K] [--k-max K] [--sink SPEC]
    python -m repro.cli engines
    python -m repro.cli maxclique GRAPH
    python -m repro.cli stats GRAPH
    python -m repro.cli convert GRAPH OUTPUT
    python -m repro.cli serve [--port N | --socket PATH] [--workers N]
                              [--metrics [PORT]] [--trace PATH]
    python -m repro.cli submit GRAPH [--connect HOST:PORT | --socket PATH]
    python -m repro.cli jobs [--connect HOST:PORT | --socket PATH]
    python -m repro.cli stats [GRAPH | --connect HOST:PORT | --socket PATH]
    python -m repro.cli trace [--file PATH | --connect ... | --socket ...]

``GRAPH`` is any file readable by :mod:`repro.core.graph_io` (DIMACS
``.dimacs``/``.clq``, edge list ``.edges``/``.txt``, JSON ``.json``);
``convert`` rewrites between formats by extension.  ``enumerate`` runs
on any registered :mod:`repro.engine` backend (``engines`` lists them);
all backends print identical cliques.  ``--sink`` routes the output
through a streaming :mod:`repro.service.sinks` sink (``count``,
``top_k:N``, ``jsonl:PATH``) so huge outputs never materialize in RAM;
the historical ``--count`` flag is an alias for ``--sink count``.

``serve`` starts the long-lived enumeration job service
(:mod:`repro.service`); ``submit`` and ``jobs`` talk to it over its
JSON-lines protocol.  ``serve --metrics [PORT]`` enables the metrics
plane (and, with a port, a ``GET /metrics`` Prometheus endpoint);
``serve --trace PATH`` appends structured span records to a JSONL
file.  ``stats`` without a graph shows a live service snapshot, and
``trace`` renders span records from a running service or a JSONL file.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import graph_io
from repro.core.maximum_clique import maximum_clique
from repro.core.stats import summarize
from repro.engine import (
    COMPUTE_DOMAINS,
    KERNELS,
    LEVEL_STORE_AUTO,
    LEVEL_STORES,
    EnumerationConfig,
    EnumerationEngine,
    available_backends,
    backend_table,
)
from repro.errors import ReproError

__all__ = ["main", "build_parser"]

#: default TCP port of the enumeration job service (one shared
#: definition — importing the service package here is deliberate so
#: the CLI and `repro.service.serve` cannot drift apart).
from repro.service.server import DEFAULT_PORT  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Genome-scale clique enumeration (Zhang et al., SC 2005 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_enum = sub.add_parser(
        "enumerate", help="enumerate maximal cliques"
    )
    p_enum.add_argument("graph", help="input graph file")
    p_enum.add_argument(
        "--backend",
        default="incore",
        choices=available_backends(),
        metavar="NAME",
        help=(
            "execution backend (see the 'engines' subcommand; default: "
            "incore; choices: %(choices)s)"
        ),
    )
    p_enum.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "workers for parallel backends — threads for 'threads', "
            "processes for 'multiprocess' (default: cpu count)"
        ),
    )
    p_enum.add_argument(
        "--level-store",
        default=None,
        choices=(*LEVEL_STORES, LEVEL_STORE_AUTO),
        metavar="NAME",
        help=(
            "candidate-level storage substrate: %(choices)s "
            "(default: the backend's own; 'wah' holds levels "
            "WAH-compressed to cut the memory peak on sparse graphs; "
            "'auto' picks the cheapest substrate whose memory-model "
            "predicted peak fits the available memory)"
        ),
    )
    p_enum.add_argument(
        "--compute-domain",
        default="auto",
        choices=COMPUTE_DOMAINS,
        metavar="NAME",
        help=(
            "word representation of the generation step: %(choices)s "
            "(default: auto — 'wah' level stores run the "
            "compressed-domain AND kernels, everything else raw "
            "bit strings)"
        ),
    )
    p_enum.add_argument(
        "--kernel",
        default="auto",
        choices=KERNELS,
        metavar="NAME",
        help=(
            "WAH word-kernel implementation: %(choices)s (default: "
            "auto — the batched numpy kernels wherever the backend "
            "advertises them; output is byte-identical either way)"
        ),
    )
    p_enum.add_argument(
        "--k-min", type=int, default=1, help="minimum clique size (Init_K)"
    )
    p_enum.add_argument(
        "--k-max", type=int, default=None, help="maximum clique size"
    )
    p_enum.add_argument(
        "--sink",
        default=None,
        metavar="SPEC",
        help=(
            "stream cliques into a sink instead of printing them: "
            "count, top_k:N, jsonl:PATH (default: collect and print)"
        ),
    )
    p_enum.add_argument(
        "--count",
        action="store_true",
        help="alias for --sink count (per-size counts only)",
    )

    sub.add_parser(
        "engines", help="list the registered enumeration backends"
    )

    p_max = sub.add_parser("maxclique", help="exact maximum clique")
    p_max.add_argument("graph", help="input graph file")

    p_stats = sub.add_parser(
        "stats",
        help="graph summary statistics, or live service stats",
    )
    p_stats.add_argument(
        "graph", nargs="?", default=None,
        help="input graph file (omit to query a running service)",
    )
    p_stats.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="show live stats of the service at this TCP address",
    )
    p_stats.add_argument(
        "--socket", default=None, metavar="PATH",
        help="show live stats of the service on this unix socket",
    )

    p_conv = sub.add_parser(
        "convert", help="convert between graph formats by extension"
    )
    p_conv.add_argument("graph", help="input graph file")
    p_conv.add_argument("output", help="output graph file")

    p_serve = sub.add_parser(
        "serve", help="run the enumeration job service"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host"
    )
    p_serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="TCP port (default: %(default)s; 0 picks a free port)",
    )
    p_serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on a unix socket instead of TCP",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="scheduler worker threads (default: %(default)s)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=128,
        help="result-cache entries, 0 disables (default: %(default)s)",
    )
    p_serve.add_argument(
        "--memory-budget", default=None, metavar="SIZE",
        help=(
            "admission-control memory budget, e.g. 512M or 2GB: "
            "workers only claim a job when its memory-model predicted "
            "peak fits next to the jobs already running (default: no "
            "admission control)"
        ),
    )
    p_serve.add_argument(
        "--metrics", nargs="?", const=True, default=None,
        metavar="PORT",
        help=(
            "enable the metrics plane (the 'metrics' wire op); with a "
            "PORT, additionally serve GET /metrics there (0 picks a "
            "free port)"
        ),
    )
    p_serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "enable span tracing and append every record to this "
            "JSONL file (the 'trace' wire op reads the in-memory ring)"
        ),
    )

    def add_connect(p):
        p.add_argument(
            "--connect", default=f"127.0.0.1:{DEFAULT_PORT}",
            metavar="HOST:PORT", help="service TCP address",
        )
        p.add_argument(
            "--socket", default=None, metavar="PATH",
            help="service unix socket (overrides --connect)",
        )

    p_submit = sub.add_parser(
        "submit", help="submit an enumeration job to a running service"
    )
    p_submit.add_argument("graph", help="graph file (server-side path)")
    add_connect(p_submit)
    p_submit.add_argument(
        "--backend", default="incore", metavar="NAME",
        help="execution backend (default: incore)",
    )
    p_submit.add_argument("--jobs", type=int, default=None, metavar="N")
    p_submit.add_argument(
        "--level-store", default=None,
        choices=(*LEVEL_STORES, LEVEL_STORE_AUTO),
        metavar="NAME",
        help=(
            "candidate-level storage substrate (default: backend's "
            "own; 'auto' lets the service pick the cheapest one whose "
            "predicted peak fits its memory budget)"
        ),
    )
    p_submit.add_argument(
        "--compute-domain", default="auto", choices=COMPUTE_DOMAINS,
        metavar="NAME",
        help="generation-step word representation (default: auto)",
    )
    p_submit.add_argument(
        "--kernel", default="auto", choices=KERNELS,
        metavar="NAME",
        help="WAH word-kernel implementation (default: auto)",
    )
    p_submit.add_argument("--k-min", type=int, default=1)
    p_submit.add_argument("--k-max", type=int, default=None)
    p_submit.add_argument(
        "--sink", default="count", metavar="SPEC",
        help="job sink spec (default: count)",
    )
    p_submit.add_argument(
        "--priority", type=int, default=0, help="higher runs first"
    )
    p_submit.add_argument(
        "--label", default="", help="free-form tag shown in listings"
    )
    p_submit.add_argument(
        "--no-cache", action="store_true",
        help="bypass the service result cache for this job",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its summary",
    )

    p_jobs = sub.add_parser(
        "jobs", help="list the jobs of a running service"
    )
    add_connect(p_jobs)

    p_trace = sub.add_parser(
        "trace", help="show trace spans from a service or a JSONL file"
    )
    add_connect(p_trace)
    p_trace.add_argument(
        "--file", default=None, metavar="PATH",
        help="read records from a trace JSONL file instead of a service",
    )
    p_trace.add_argument(
        "--limit", type=int, default=40, metavar="N",
        help="newest records to show (default: %(default)s)",
    )
    return parser


def _print_size_counts(by_size: dict[int, int], total: int) -> None:
    for size, count in sorted(by_size.items()):
        print(f"size {size}: {count}")
    print(f"total: {total}")


def _cmd_enumerate(args) -> int:
    from repro.service.sinks import (
        CollectSink, JsonlSink, TopKSink, make_sink,
    )

    g = graph_io.load(args.graph)
    config = EnumerationConfig(
        backend=args.backend,
        k_min=args.k_min,
        k_max=args.k_max,
        jobs=args.jobs,
        level_store=args.level_store,
        compute_domain=args.compute_domain,
        kernel=args.kernel,
    )
    spec = args.sink
    if args.count:
        if spec is not None and spec != "count":
            raise ReproError(
                "--count is an alias for --sink count; drop one of them"
            )
        spec = "count"
    if spec is None:
        result = EnumerationEngine().run(g, config)
        for clique in result.cliques:
            print(" ".join(map(str, clique)))
        return 0
    sink = make_sink(spec)
    EnumerationEngine().run_with_sink(g, config, sink)
    if isinstance(sink, CollectSink):
        for clique in sink.cliques:
            print(" ".join(map(str, clique)))
    elif isinstance(sink, TopKSink):
        for clique in sink.top:
            print(" ".join(map(str, clique)))
    elif isinstance(sink, JsonlSink):
        print(
            f"wrote {sink.count} cliques "
            f"({sink.bytes_written} bytes) to {sink.path}"
        )
    else:
        # count — and any future sink type: the uniform base-class
        # accounting always supports a per-size report
        _print_size_counts(sink.by_size, sink.count)
    return 0


def _cmd_engines(args) -> int:
    rows = [
        (
            info.name,
            info.storage,
            ",".join(info.level_stores) or "-",
            ",".join(info.compute_domains) or "-",
            ",".join(info.kernels) or "-",
            "yes" if info.parallel else "no",
            info.description,
        )
        for info in backend_table()
    ]
    name_w = max(len(r[0]) for r in rows)
    stores_w = max(len("level stores"), max(len(r[2]) for r in rows))
    domains_w = max(len("domains"), max(len(r[3]) for r in rows))
    kernels_w = max(len("kernels"), max(len(r[4]) for r in rows))
    print(f"{'backend':<{name_w}}  storage  "
          f"{'level stores':<{stores_w}}  {'domains':<{domains_w}}  "
          f"{'kernels':<{kernels_w}}  parallel  description")
    for name, storage, stores, domains, kernels, parallel, desc in rows:
        print(f"{name:<{name_w}}  {storage:<7}  {stores:<{stores_w}}  "
              f"{domains:<{domains_w}}  {kernels:<{kernels_w}}  "
              f"{parallel:<8}  {desc}")
    return 0


def _cmd_maxclique(args) -> int:
    g = graph_io.load(args.graph)
    clique = maximum_clique(g)
    print(f"size {len(clique)}: {' '.join(map(str, clique))}")
    return 0


def _cmd_stats(args) -> int:
    if args.graph is None:
        if args.connect is None and args.socket is None:
            raise ReproError(
                "stats needs a graph file, or --connect/--socket to "
                "query a running service"
            )
        return _cmd_service_stats(args)
    g = graph_io.load(args.graph)
    s = summarize(g)
    print(f"vertices:            {s.n}")
    print(f"edges:               {s.m}")
    print(f"density:             {s.density:.4%}")
    print(f"degree (min/mean/max): {s.min_degree} / "
          f"{s.mean_degree:.2f} / {s.max_degree}")
    print(f"triangles:           {s.triangles}")
    print(f"avg clustering:      {s.average_clustering:.4f}")
    print(f"components:          {s.n_components} "
          f"(largest {s.largest_component})")
    print(f"fingerprint:         {graph_io.graph_fingerprint(g)}")
    return 0


def _cmd_service_stats(args) -> int:
    """``repro stats --connect/--socket``: one live service snapshot."""
    from repro.service import ServiceClient

    with ServiceClient(_service_address(args)) as client:
        ping = client.ping()
        stats = client.stats()
    print(f"service:     version {ping['version']}, "
          f"up {ping.get('uptime_seconds', 0.0):.1f}s")
    print(f"workers:     {stats['workers']}")
    print(f"queued:      {stats['queued']}")
    states = " ".join(
        f"{state}={count}" for state, count in stats["jobs"].items()
    )
    print(f"jobs:        {states}")
    cache = stats.get("cache")
    if cache is not None:
        print(f"cache:       {cache['entries']}/{cache['max_entries']} "
              f"entries, {cache['hits']} hits / {cache['misses']} "
              f"misses / {cache['evictions']} evictions")
    else:
        print("cache:       disabled")
    return 0


def _cmd_trace(args) -> int:
    """``repro trace``: render span records, newest ``--limit``.

    Reads the service's in-memory ring over the wire, or — with
    ``--file`` — a JSONL file written by ``serve --trace``.
    """
    import json

    if args.file is not None:
        records = []
        with open(args.file, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        if args.limit is not None and args.limit >= 0:
            records = records[-args.limit:]
    else:
        from repro.service import ServiceClient

        with ServiceClient(_service_address(args)) as client:
            records = client.trace(limit=args.limit)
    for rec in records:
        indent = "  " * int(rec.get("depth", 0))
        name = rec.get("name", "?")
        fields = " ".join(
            f"{key}={value}"
            for key, value in (rec.get("fields") or {}).items()
        )
        stamp = f"{rec.get('ts', 0.0):.6f}"
        if rec.get("kind") == "span":
            dur_ms = rec.get("dur_s", 0.0) * 1000.0
            line = f"{stamp}  {indent}{name} [{dur_ms:.2f} ms] {fields}"
        else:
            line = f"{stamp}  {indent}* {name} {fields}"
        print(line.rstrip())
    return 0


def _cmd_convert(args) -> int:
    g = graph_io.load(args.graph)
    graph_io.save(g, args.output)
    print(f"wrote {g.n} vertices / {g.m} edges to {args.output}")
    return 0


def _cmd_serve(args) -> int:
    from repro.core.memory_model import parse_byte_size
    from repro.service import serve

    # --metrics alone enables the plane (wire-op scrapes only);
    # --metrics PORT additionally serves GET /metrics on that port
    metrics_port = None
    if args.metrics is not None and args.metrics is not True:
        metrics_port = int(args.metrics)
    budget = (
        parse_byte_size(args.memory_budget)
        if args.memory_budget is not None
        else None
    )
    serve(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        workers=args.workers,
        cache_size=args.cache_size,
        memory_budget_bytes=budget,
        metrics=args.metrics is not None,
        metrics_port=metrics_port,
        trace_path=args.trace,
    )
    return 0


def _service_address(args):
    """The client address from --socket / --connect."""
    if args.socket is not None:
        return args.socket
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(
            f"--connect must look like HOST:PORT, got {args.connect!r}"
        )
    return (host, int(port))


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient

    config = EnumerationConfig(
        backend=args.backend,
        k_min=args.k_min,
        k_max=args.k_max,
        jobs=args.jobs,
        level_store=args.level_store,
        compute_domain=args.compute_domain,
        kernel=args.kernel,
    )
    with ServiceClient(_service_address(args)) as client:
        job_id = client.submit(
            args.graph,
            config=config,
            sink=args.sink,
            priority=args.priority,
            use_cache=not args.no_cache,
            label=args.label,
        )
        if not args.wait:
            print(job_id)
            return 0
        job = client.wait(job_id)
    print(f"{job['id']}: {job['status']}"
          + (" (cache hit)" if job.get("cache_hit") else ""))
    if job["status"] != "done":
        # failed *and* cancelled jobs produced no usable output; a
        # pipeline must not treat them as success
        if job.get("error"):
            print(f"error: {job['error']}", file=sys.stderr)
        return 1
    summary = job.get("sink_summary") or {}
    if summary:
        _print_size_counts(
            {int(k): v for k, v in summary.get("by_size", {}).items()},
            summary.get("cliques", 0),
        )
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient

    with ServiceClient(_service_address(args)) as client:
        jobs = client.jobs()
    print(f"{'id':<12} {'status':<10} {'backend':<12} {'domain':<7} "
          f"{'kernel':<7} {'sink':<14} {'cliques':>8} {'transfers':>9} "
          f"{'hit':<3}  label")
    for job in jobs:
        summary = job.get("sink_summary") or {}
        n = summary.get("cliques", job.get("n_cliques", ""))
        # resolved values when the job ran (an "auto" submission shows
        # what it actually executed on); the spec's otherwise
        domain = job.get("compute_domain") or "-"
        kernel = job.get("kernel") or "-"
        transfers = job.get("transfers", "")
        hit = "yes" if job.get("cache_hit") else ""
        print(f"{job['id']:<12} {job['status']:<10} "
              f"{job['backend']:<12} {domain:<7} {kernel:<7} "
              f"{job['sink']:<14} {n!s:>8} {transfers!s:>9} {hit:<3}  "
              f"{job['label']}")
    return 0


_COMMANDS = {
    "enumerate": _cmd_enumerate,
    "engines": _cmd_engines,
    "maxclique": _cmd_maxclique,
    "stats": _cmd_stats,
    "convert": _cmd_convert,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ConnectionError as exc:
        print(f"error: cannot reach the service: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # e.g. `serve` on an already-bound port or unwritable socket
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
