"""Descriptive graph statistics for network analysis and reports.

Supporting utilities for the examples and the experiment reports: degree
summaries, clustering coefficients (triangle counting runs on the bitmap
index — one AND plus a popcount per edge), and connected components.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.graph import Graph

__all__ = [
    "GraphSummary",
    "degree_histogram",
    "triangle_count",
    "clustering_coefficient",
    "average_clustering",
    "connected_components",
    "summarize",
]


def degree_histogram(g: Graph) -> dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    values, counts = np.unique(g.degrees(), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def triangle_count(g: Graph) -> int:
    """Number of triangles, via bitmap intersections per edge."""
    total = 0
    for u, v in g.edges():
        total += int(
            np.bitwise_count(g.adj[u] & g.adj[v]).sum()
        )
    return total // 3


def clustering_coefficient(g: Graph, v: int) -> float:
    """Fraction of neighbor pairs of ``v`` that are adjacent."""
    d = g.degree(v)
    if d < 2:
        return 0.0
    nbrs = g.neighbors(v)
    links = 0
    for u in nbrs.tolist():
        links += int(np.bitwise_count(g.adj[u] & g.adj[v]).sum())
    return links / (d * (d - 1))


def average_clustering(g: Graph) -> float:
    """Mean clustering coefficient over all vertices (0 for empty)."""
    if g.n == 0:
        return 0.0
    return sum(clustering_coefficient(g, v) for v in range(g.n)) / g.n


def connected_components(g: Graph) -> list[list[int]]:
    """Vertex lists of the connected components, largest first."""
    seen = np.zeros(g.n, dtype=bool)
    components: list[list[int]] = []
    for start in range(g.n):
        if seen[start]:
            continue
        comp = []
        q = deque([start])
        seen[start] = True
        while q:
            v = q.popleft()
            comp.append(v)
            for u in g.neighbors(v).tolist():
                if not seen[u]:
                    seen[u] = True
                    q.append(u)
        components.append(sorted(comp))
    components.sort(key=lambda c: (-len(c), c))
    return components


@dataclass(frozen=True)
class GraphSummary:
    """One-glance description of a graph."""

    n: int
    m: int
    density: float
    min_degree: int
    max_degree: int
    mean_degree: float
    triangles: int
    average_clustering: float
    n_components: int
    largest_component: int


def summarize(g: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary`."""
    degs = g.degrees()
    comps = connected_components(g)
    return GraphSummary(
        n=g.n,
        m=g.m,
        density=g.density(),
        min_degree=int(degs.min()) if g.n else 0,
        max_degree=int(degs.max()) if g.n else 0,
        mean_degree=float(degs.mean()) if g.n else 0.0,
        triangles=triangle_count(g),
        average_clustering=average_clustering(g),
        n_components=len(comps),
        largest_component=len(comps[0]) if comps else 0,
    )
