"""Operation counters shared by the enumeration algorithms.

The simulated shared-memory machine (:mod:`repro.parallel.machine`) charges
virtual time per *unit of algorithmic work*, so every enumerator counts the
operations the paper's analysis talks about:

* ``bit_and_ops`` — bitwise ANDs of length-n bit strings (common-neighbor
  computation),
* ``bit_exist_checks`` — "does a 1-bit exist" tests (maximality checks),
* ``pair_checks`` — adjacency checks between common neighbors inside a
  sub-list (the O((n-k)^2) term of the paper's run-time analysis),
* ``cliques_generated`` / ``maximal_emitted`` — output volume.

Counters are plain integers on a small object; the overhead is one Python
attribute increment per counted operation, identical for every algorithm,
so relative comparisons stay fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OpCounters", "IOStats"]


@dataclass
class OpCounters:
    """Mutable tally of enumeration work.

    Use :meth:`snapshot` to freeze values for reporting and :meth:`merge`
    to combine per-thread counters after a parallel level.
    """

    bit_and_ops: int = 0
    bit_exist_checks: int = 0
    pair_checks: int = 0
    cliques_generated: int = 0
    maximal_emitted: int = 0
    sublists_created: int = 0
    levels: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "OpCounters") -> None:
        """Add another counter set into this one (for parallel reduction)."""
        self.bit_and_ops += other.bit_and_ops
        self.bit_exist_checks += other.bit_exist_checks
        self.pair_checks += other.pair_checks
        self.cliques_generated += other.cliques_generated
        self.maximal_emitted += other.maximal_emitted
        self.sublists_created += other.sublists_created
        self.levels = max(self.levels, other.levels)
        for key, val in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + val

    def snapshot(self) -> dict:
        """Immutable dict view for reports."""
        out = {
            "bit_and_ops": self.bit_and_ops,
            "bit_exist_checks": self.bit_exist_checks,
            "pair_checks": self.pair_checks,
            "cliques_generated": self.cliques_generated,
            "maximal_emitted": self.maximal_emitted,
            "sublists_created": self.sublists_created,
            "levels": self.levels,
        }
        out.update(self.extra)
        return out

    #: canonical integer fields a snapshot can be folded back into.
    _FIELDS = (
        "bit_and_ops",
        "bit_exist_checks",
        "pair_checks",
        "cliques_generated",
        "maximal_emitted",
        "sublists_created",
    )

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict back into this counter set.

        Canonical fields add into their attributes (so cross-process
        reductions stay comparable with in-process counters); unknown
        keys accumulate in ``extra``; ``levels`` takes the maximum.
        """
        for key, val in snap.items():
            if key == "levels":
                self.levels = max(self.levels, val)
            elif key in self._FIELDS:
                setattr(self, key, getattr(self, key) + val)
            else:
                self.extra[key] = self.extra.get(key, 0) + val

    def total_work(self) -> int:
        """Scalar work measure used by the machine model.

        Pair checks and bit operations dominate the run time of the real
        algorithm; the weights approximate their relative cost on the
        bit-matrix representation (a length-n AND touches n/64 words; a
        pair check is O(1)).
        """
        return (
            self.pair_checks
            + 4 * self.bit_and_ops
            + 2 * self.bit_exist_checks
            + self.cliques_generated
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.bit_and_ops = 0
        self.bit_exist_checks = 0
        self.pair_checks = 0
        self.cliques_generated = 0
        self.maximal_emitted = 0
        self.sublists_created = 0
        self.levels = 0
        self.extra.clear()


@dataclass
class IOStats:
    """Disk traffic accounting for a disk-backed enumeration run.

    Shared by every :class:`~repro.core.out_of_core.DiskLevelStore` of one
    run, so ``total_bytes`` is the run's full spill-and-stream volume —
    the quantity the paper's in-core algorithm exists to avoid.
    """

    bytes_written: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    read_ops: int = 0

    @property
    def total_bytes(self) -> int:
        """Written plus read bytes."""
        return self.bytes_written + self.bytes_read
