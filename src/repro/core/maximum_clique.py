"""Maximum clique: bounds and exact solvers (Section 2.1).

The paper computes a graph's maximum clique size first, as the upper bound
that closes the Clique Enumerator's size range: "Using a maximum clique
algorithm to determine an upper bound on clique size, we then enumerate all
k-cliques ...".

Provided here:

bounds
    * :func:`greedy_clique` — fast lower bound (and seed clique);
    * :func:`greedy_coloring_bound` — chromatic upper bound;
    * :func:`degeneracy_bound` — degeneracy + 1 upper bound.

exact solvers
    * :func:`maximum_clique` — branch-and-bound with greedy-coloring
      pruning (Tomita-style), the practical default on the paper's sparse
      correlation graphs;
    * :func:`maximum_clique_via_vertex_cover` — the paper's FPT route:
      maximum clique = n − minVC(complement).  Exponential in ``n - ω`` so
      only sensible on small or dense graphs; included because it is the
      method the paper describes, and cross-validated against the
      branch-and-bound solver in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.core import bitset as bs
from repro.core.degeneracy import degeneracy_ordering
from repro.core.graph import Graph
from repro.core.vertex_cover import minimum_vertex_cover

__all__ = [
    "greedy_clique",
    "greedy_coloring_bound",
    "degeneracy_bound",
    "maximum_clique",
    "maximum_clique_via_vertex_cover",
    "maximum_clique_size",
]


def greedy_clique(g: Graph) -> list[int]:
    """Greedy lower bound: grow from the highest-degree vertex.

    Repeatedly adds the candidate with the most neighbors among the
    remaining candidates.  Returns a (not necessarily maximum) maximal
    clique; empty list for the empty graph.
    """
    if g.n == 0:
        return []
    adj = g.adj
    start = int(np.argmax(g.degrees()))
    clique = [start]
    cand = adj[start].copy()
    while cand.any():
        members = bs.words_to_indices(cand, g.n)
        # pick the candidate with most neighbors inside the candidate set
        best_v, best_score = -1, -1
        for v in members.tolist():
            score = int(np.bitwise_count(cand & adj[v]).sum())
            if score > best_score:
                best_score, best_v = score, v
        clique.append(best_v)
        np.bitwise_and(cand, adj[best_v], out=cand)
    return sorted(clique)


def greedy_coloring_bound(g: Graph) -> int:
    """Number of colors used by largest-first greedy coloring (ω ≤ χ)."""
    if g.n == 0:
        return 0
    order = sorted(range(g.n), key=lambda v: -g.degree(v))
    color = np.full(g.n, -1, dtype=np.int64)
    n_colors = 0
    for v in order:
        used = {int(color[u]) for u in g.neighbors(v).tolist()
                if color[u] >= 0}
        c = 0
        while c in used:
            c += 1
        color[v] = c
        n_colors = max(n_colors, c + 1)
    return n_colors


def degeneracy_bound(g: Graph) -> int:
    """Degeneracy + 1, an upper bound on the maximum clique size."""
    if g.n == 0:
        return 0
    return degeneracy_ordering(g)[1] + 1


def _color_sort(cand: np.ndarray, g: Graph) -> tuple[list[int], list[int]]:
    """Greedy-color the candidate set; return (order, colors) ascending.

    ``order[i]`` is the i-th vertex, ``colors[i]`` its 1-based color; a
    vertex with color ``c`` can extend the current clique by at most ``c``
    vertices, giving the branch-and-bound pruning rule.
    """
    n = g.n
    adj = g.adj
    classes: list[list[int]] = []
    class_words: list[np.ndarray] = []
    for v in bs.words_to_indices(cand, n).tolist():
        placed = False
        for ci in range(len(classes)):
            # v joins class ci when it has no neighbor inside it
            if not (class_words[ci] & adj[v]).any():
                classes[ci].append(v)
                class_words[ci][v >> 6] |= np.uint64(1) << np.uint64(v & 63)
                placed = True
                break
        if not placed:
            w = np.zeros(bs.n_words(n), dtype=np.uint64)
            w[v >> 6] |= np.uint64(1) << np.uint64(v & 63)
            classes.append([v])
            class_words.append(w)
    order: list[int] = []
    colors: list[int] = []
    for ci, cls in enumerate(classes):
        for v in cls:
            order.append(v)
            colors.append(ci + 1)
    return order, colors


def maximum_clique(g: Graph) -> list[int]:
    """Exact maximum clique by branch-and-bound with coloring bounds.

    Returns a sorted vertex list; the empty list for the empty graph.
    """
    if g.n == 0:
        return []
    best: list[int] = greedy_clique(g)

    adj = g.adj

    def expand(r: list[int], cand: np.ndarray) -> None:
        nonlocal best
        order, colors = _color_sort(cand, g)
        # iterate highest color first; prune when even the best color
        # cannot beat the incumbent
        for i in range(len(order) - 1, -1, -1):
            if len(r) + colors[i] <= len(best):
                return
            v = order[i]
            r.append(v)
            new_cand = cand & adj[v]
            if new_cand.any():
                expand(r, new_cand)
            elif len(r) > len(best):
                best = sorted(r)
            r.pop()
            cand[v >> 6] &= ~(np.uint64(1) << np.uint64(v & 63))

    full = np.zeros(bs.n_words(g.n), dtype=np.uint64)
    full[:] = ~np.uint64(0)
    full[-1] &= bs.tail_mask(g.n)
    expand([], full)
    if not g.is_clique(best):
        raise SolverError("branch-and-bound produced a non-clique")
    return best


def maximum_clique_via_vertex_cover(g: Graph) -> list[int]:
    """The paper's FPT route: clique(G) = V − minVC(complement(G)).

    A minimum vertex cover of the complement leaves behind a maximum
    independent set of the complement, which is a maximum clique of ``g``.
    Cost grows exponentially in ``n − ω(G)``; use on small graphs.
    """
    if g.n == 0:
        return []
    comp = g.complement()
    cover = set(minimum_vertex_cover(comp))
    clique = sorted(v for v in range(g.n) if v not in cover)
    if not g.is_clique(clique):
        raise SolverError("complement-VC produced a non-clique")
    return clique


def maximum_clique_size(g: Graph) -> int:
    """Size of the maximum clique (branch-and-bound solver)."""
    return len(maximum_clique(g))
