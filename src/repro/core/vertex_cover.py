"""Fixed-parameter-tractable vertex cover (Section 2.1 substrate).

The paper solves maximum clique through "reduction to vertex cover and
employing the notion of fixed parameter tractability": a graph has a clique
of size ``s`` iff its complement has a vertex cover of size ``n - s``.

This module implements the classic FPT machinery:

kernelization
    * isolated vertices are discarded;
    * a degree-1 vertex forces its neighbor into the cover;
    * a vertex of degree greater than ``k`` must itself be in the cover
      (otherwise all its neighbors are, exceeding the budget);
    * the Buss kernel bound — after the rules stabilise, a yes-instance
      has at most ``k^2`` edges and ``k^2 + k`` non-isolated vertices.

bounded search tree
    Branch on a maximum-degree vertex ``v``: either ``v`` is in the cover
    (budget ``k-1``) or all of ``N(v)`` is (budget ``k - deg(v)``).  With
    the kernel rules this realises the classic ``O(2^k · poly)`` search;
    the paper cites the refined ``O(1.2759^k k^{1.5} + kn)`` bound of
    Chandran and Grandoni — the branching here is the standard simple
    variant, adequate for validation at library scale.

Solutions are verified before being returned (:class:`~repro.errors.
SolverError` guards the invariant), and the decision/optimisation split
mirrors how the FPT literature (and the paper) uses the parameter.
"""

from __future__ import annotations


from repro.errors import ParameterError, SolverError
from repro.core.graph import Graph

__all__ = [
    "vertex_cover_decision",
    "minimum_vertex_cover",
    "greedy_vertex_cover",
    "matching_lower_bound",
    "is_vertex_cover",
]


def is_vertex_cover(g: Graph, cover: set[int] | list[int]) -> bool:
    """True when every edge of ``g`` has an endpoint in ``cover``."""
    cov = set(cover)
    return all(u in cov or v in cov for u, v in g.edges())


def greedy_vertex_cover(g: Graph) -> list[int]:
    """2-approximation: take both endpoints of a maximal matching."""
    cover: set[int] = set()
    for u, v in g.edges():
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return sorted(cover)


def matching_lower_bound(g: Graph) -> int:
    """Size of a greedy maximal matching — a lower bound on any cover."""
    matched: set[int] = set()
    size = 0
    for u, v in g.edges():
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            size += 1
    return size


def _adj_sets(g: Graph) -> dict[int, set[int]]:
    return {
        v: set(g.neighbors(v).tolist())
        for v in range(g.n)
        if g.degree(v) > 0
    }


def _remove_vertex(adj: dict[int, set[int]], v: int) -> list[int]:
    """Remove ``v`` and its incident edges; return affected neighbors."""
    nbrs = list(adj.pop(v, ()))
    for u in nbrs:
        s = adj.get(u)
        if s is not None:
            s.discard(v)
            if not s:
                del adj[u]
    return nbrs


def _solve(adj: dict[int, set[int]], k: int) -> list[int] | None:
    """Bounded search tree on a mutable adjacency dict (copied per branch)."""
    cover: list[int] = []
    # --- kernelization to a fixed point -------------------------------
    changed = True
    while changed:
        changed = False
        if not adj:
            return cover
        if k <= 0:
            return None
        # high-degree rule
        for v in list(adj):
            if v in adj and len(adj[v]) > k:
                _remove_vertex(adj, v)
                cover.append(v)
                k -= 1
                changed = True
                if k < 0:
                    return None
        # degree-1 rule: cover the neighbor
        for v in list(adj):
            if v in adj and len(adj[v]) == 1:
                (u,) = adj[v]
                _remove_vertex(adj, u)
                cover.append(u)
                k -= 1
                changed = True
                if k < 0:
                    return None
    if not adj:
        return cover
    if k <= 0:
        return None
    # Buss bound: max degree is now <= k, so a yes-instance has <= k^2 edges
    m = sum(len(s) for s in adj.values()) // 2
    if m > k * k:
        return None
    # --- branch on a maximum-degree vertex ------------------------------
    v = max(adj, key=lambda u: (len(adj[u]), -u))
    nbrs = sorted(adj[v])
    # branch 1: v in the cover
    adj1 = {u: set(s) for u, s in adj.items()}
    _remove_vertex(adj1, v)
    sub = _solve(adj1, k - 1)
    if sub is not None:
        return cover + [v] + sub
    # branch 2: N(v) in the cover
    if len(nbrs) <= k:
        adj2 = {u: set(s) for u, s in adj.items()}
        for u in nbrs:
            _remove_vertex(adj2, u)
        sub = _solve(adj2, k - len(nbrs))
        if sub is not None:
            return cover + nbrs + sub
    return None


def vertex_cover_decision(g: Graph, k: int) -> list[int] | None:
    """Find a vertex cover of size at most ``k``, or ``None``.

    Parameters
    ----------
    g: input graph.
    k: cover budget, ``k >= 0``.

    Returns
    -------
    Sorted list of cover vertices (possibly fewer than ``k``) or ``None``
    when no cover of size ``<= k`` exists.
    """
    if k < 0:
        raise ParameterError(f"cover budget must be >= 0, got {k}")
    sol = _solve(_adj_sets(g), k)
    if sol is None:
        return None
    sol = sorted(set(sol))
    if len(sol) > k or not is_vertex_cover(g, sol):
        raise SolverError(
            f"internal error: produced invalid cover of size {len(sol)}"
        )
    return sol


def minimum_vertex_cover(g: Graph) -> list[int]:
    """Exact minimum vertex cover via the FPT decision procedure.

    Starts at the greedy-matching lower bound and increments the parameter
    until the decision version succeeds — the standard way the paper's
    framework turns an FPT decision algorithm into an optimiser.
    """
    lo = matching_lower_bound(g)
    hi = len(greedy_vertex_cover(g))
    for k in range(lo, hi + 1):
        sol = vertex_cover_decision(g, k)
        if sol is not None:
            return sol
    raise SolverError("greedy cover bound violated")  # pragma: no cover
