"""Out-of-core level store — the bottleneck the paper escaped.

The paper's motivation (Section 1): "we have previously developed an
out-of-core algorithm ... However, the algorithm could not finish after
one week of execution ... Intensive disk I/O access has been the major
bottleneck."  The in-memory Clique Enumerator on a large shared-memory
machine is the paper's answer.

This module provides the disk-backed level store so the comparison is
measurable: a :class:`DiskLevelStore` spills each level's candidate
sub-lists to disk and streams them back for expansion, touching memory
with only one read-chunk at a time.  Every byte written/read is counted,
so the ablation report and ``benchmarks/bench_engines.py`` can show the
I/O volume that the in-core algorithm avoids.

The enumeration logic is the unmodified
:func:`~repro.core.clique_enumerator.generate_next_level`; only the
storage layer changes — exactly the framing of the paper's argument.
The level loop itself lives in :mod:`repro.engine.level_loop`;
:func:`enumerate_maximal_cliques_ooc` is a compatibility shim over the
engine's ``"ooc"`` backend.
"""

from __future__ import annotations

import itertools
import pickle
import tempfile
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.errors import LevelStoreError, ParameterError
from repro.core.clique_enumerator import (
    INDEX_BYTES,
    POINTER_BYTES,
    EnumerationResult,
)
from repro.core.counters import IOStats
from repro.core.graph import Graph
from repro.core.sublist import CliqueSubList

__all__ = ["IOStats", "DiskLevelStore", "enumerate_maximal_cliques_ooc"]


class DiskLevelStore:
    """Spill-and-stream storage for one level of candidate sub-lists.

    Sub-lists are appended in chunks (pickled), then streamed back in
    insertion order exactly once.  The store is single-pass by design —
    the level-wise algorithm never revisits a consumed level.

    Implements the :class:`repro.engine.level_store.LevelStore` interface
    (including the ``n_sublists`` / ``n_candidates`` / ``candidate_bytes``
    accounting the unified level loop reads for per-level statistics and
    memory budgets).

    Parameters
    ----------
    directory: where the spill file lives (a temp dir when omitted).
        Each store gets a unique spill filename, so consecutive levels
        can safely share one directory (the writer of level k+1 must
        not truncate the file level k is still streaming from).
    chunk_size: sub-lists per pickle record (amortises the per-record
        overhead that killed the original out-of-core implementation).
    stats: shared I/O counter, updated on every operation.
    """

    _seq = itertools.count()

    def __init__(
        self,
        directory: str | Path | None = None,
        chunk_size: int = 256,
        stats: IOStats | None = None,
    ):
        if chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._own_dir = directory is None
        self._tmp = (
            tempfile.TemporaryDirectory(prefix="repro-ooc-")
            if directory is None
            else None
        )
        self.directory = Path(
            self._tmp.name if self._tmp else directory
        )
        self.chunk_size = chunk_size
        self.stats = stats if stats is not None else IOStats()
        self._path: Path | None = None
        self._write_buffer: list[CliqueSubList] = []
        self._fh = None
        self._count = 0
        self._n_candidates = 0
        self._candidate_bytes = 0
        self._streamed = False

    def __len__(self) -> int:
        return self._count

    @property
    def n_sublists(self) -> int:
        """Number of stored sub-lists (the paper's ``N[k]``)."""
        return self._count

    @property
    def n_candidates(self) -> int:
        """Total candidate cliques stored (the paper's ``M[k]``)."""
        return self._n_candidates

    @property
    def candidate_bytes(self) -> int:
        """Measured bytes of the stored sub-lists (as if held in memory).

        This is the *algorithmic* candidate footprint, comparable across
        storage substrates; the actual disk traffic is in :attr:`stats`.
        """
        return self._candidate_bytes

    # -- writing ------------------------------------------------------------

    def append(self, sl: CliqueSubList) -> None:
        """Queue one sub-list; flushes a chunk when the buffer fills."""
        if self._streamed:
            raise LevelStoreError(
                "append() after stream(): the level store is single-pass"
            )
        self._write_buffer.append(sl)
        self._count += 1
        self._n_candidates += len(sl)
        self._candidate_bytes += sl.nbytes(INDEX_BYTES, POINTER_BYTES)
        if len(self._write_buffer) >= self.chunk_size:
            self._flush()

    def _ensure_open(self):
        if self._fh is None:
            self._path = (
                self.directory / f"level-{next(self._seq)}.spill"
            )
            self._fh = self._path.open("wb")
        return self._fh

    def _flush(self) -> None:
        if not self._write_buffer:
            return
        payload = pickle.dumps(
            self._write_buffer, protocol=pickle.HIGHEST_PROTOCOL
        )
        fh = self._ensure_open()
        fh.write(len(payload).to_bytes(8, "little"))
        fh.write(payload)
        self.stats.bytes_written += len(payload) + 8
        self.stats.write_ops += 1
        self._write_buffer.clear()

    # -- reading --------------------------------------------------------------

    def stream(self) -> Iterator[list[CliqueSubList]]:
        """Yield the stored sub-lists chunk by chunk, then delete the file.

        Single-pass: a second ``stream()`` — or an ``append()`` once
        streaming began — raises :class:`~repro.errors.LevelStoreError`.
        """
        if self._streamed:
            raise LevelStoreError(
                "stream() called twice on a single-pass level store"
            )
        self._streamed = True
        self._flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return self._read_chunks()

    def _read_chunks(self) -> Iterator[list[CliqueSubList]]:
        if self._path is None:
            return
        with self._path.open("rb") as fh:
            while True:
                header = fh.read(8)
                if not header:
                    break
                size = int.from_bytes(header, "little")
                payload = fh.read(size)
                self.stats.bytes_read += size + 8
                self.stats.read_ops += 1
                yield pickle.loads(payload)
        self._path.unlink()
        self._path = None

    def close(self) -> None:
        """Release backing storage: spill file and temp dir removed."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._path is not None:
            self._path.unlink(missing_ok=True)
            self._path = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "DiskLevelStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def enumerate_maximal_cliques_ooc(
    g: Graph,
    k_min: int = 2,
    k_max: int | None = None,
    directory: str | Path | None = None,
    chunk_size: int = 256,
    on_clique: Callable[[tuple[int, ...]], None] | None = None,
) -> EnumerationResult:
    """Out-of-core Clique Enumerator: candidates live on disk.

    Compatibility shim over the ``"ooc"`` backend of :mod:`repro.engine`.
    Identical output to the in-core driver with the same bounds; every
    level is spilled and re-read once, and the result's ``io`` field
    (an :class:`IOStats`) records the traffic.  ``k_min`` below 2 is
    promoted to 2.
    """
    if k_max is not None and k_max < max(2, k_min):
        raise ParameterError(
            f"k_max ({k_max}) must be >= the effective k_min "
            f"({max(2, k_min)}; values below 2 are promoted)"
        )
    from repro.engine import EnumerationConfig, run_enumeration

    config = EnumerationConfig(
        backend="ooc",
        k_min=max(2, k_min),
        k_max=k_max,
        options={"directory": directory, "chunk_size": chunk_size},
    )
    return run_enumeration(g, config, on_clique=on_clique)
