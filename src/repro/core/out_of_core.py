"""Out-of-core level store — the bottleneck the paper escaped.

The paper's motivation (Section 1): "we have previously developed an
out-of-core algorithm ... However, the algorithm could not finish after
one week of execution ... Intensive disk I/O access has been the major
bottleneck."  The in-memory Clique Enumerator on a large shared-memory
machine is the paper's answer.

This module rebuilds the out-of-core mode so the comparison is
measurable: a :class:`DiskLevelStore` spills each level's candidate
sub-lists to disk and streams them back for expansion, touching memory
with only one read-chunk at a time.  Every byte written/read is counted,
so the ablation benchmark (``benchmarks/bench_ablations_ooc.py``) can
show the I/O volume that the in-core algorithm avoids.

The enumeration logic is the unmodified
:func:`~repro.core.clique_enumerator.generate_next_level`; only the
storage layer changes — exactly the framing of the paper's argument.
"""

from __future__ import annotations

import pickle
import tempfile
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ParameterError
from repro.core.clique_enumerator import (
    build_initial_sublists,
    build_sublists_from_k_cliques,
    generate_next_level,
)
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.kclique import enumerate_k_cliques
from repro.core.sublist import CliqueSubList

__all__ = ["IOStats", "DiskLevelStore", "enumerate_maximal_cliques_ooc"]


@dataclass
class IOStats:
    """Disk traffic accounting for one out-of-core run."""

    bytes_written: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    read_ops: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_written + self.bytes_read


class DiskLevelStore:
    """Spill-and-stream storage for one level of candidate sub-lists.

    Sub-lists are appended in chunks (pickled), then streamed back in
    insertion order exactly once.  The store is single-pass by design —
    the level-wise algorithm never revisits a consumed level.

    Parameters
    ----------
    directory: where the spill file lives (a temp dir when omitted).
    chunk_size: sub-lists per pickle record (amortises the per-record
        overhead that killed the original out-of-core implementation).
    stats: shared I/O counter, updated on every operation.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        chunk_size: int = 256,
        stats: IOStats | None = None,
    ):
        if chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._own_dir = directory is None
        self._tmp = (
            tempfile.TemporaryDirectory(prefix="repro-ooc-")
            if directory is None
            else None
        )
        self.directory = Path(
            self._tmp.name if self._tmp else directory
        )
        self.chunk_size = chunk_size
        self.stats = stats if stats is not None else IOStats()
        self._path: Path | None = None
        self._write_buffer: list[CliqueSubList] = []
        self._fh = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- writing ------------------------------------------------------------

    def append(self, sl: CliqueSubList) -> None:
        """Queue one sub-list; flushes a chunk when the buffer fills."""
        self._write_buffer.append(sl)
        self._count += 1
        if len(self._write_buffer) >= self.chunk_size:
            self._flush()

    def _ensure_open(self):
        if self._fh is None:
            self._path = self.directory / "level.spill"
            self._fh = self._path.open("wb")
        return self._fh

    def _flush(self) -> None:
        if not self._write_buffer:
            return
        payload = pickle.dumps(
            self._write_buffer, protocol=pickle.HIGHEST_PROTOCOL
        )
        fh = self._ensure_open()
        fh.write(len(payload).to_bytes(8, "little"))
        fh.write(payload)
        self.stats.bytes_written += len(payload) + 8
        self.stats.write_ops += 1
        self._write_buffer.clear()

    # -- reading --------------------------------------------------------------

    def stream(self) -> Iterator[list[CliqueSubList]]:
        """Yield the stored sub-lists chunk by chunk, then delete the file.

        The store must not be appended to after streaming begins.
        """
        self._flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._path is None:
            return
        with self._path.open("rb") as fh:
            while True:
                header = fh.read(8)
                if not header:
                    break
                size = int.from_bytes(header, "little")
                payload = fh.read(size)
                self.stats.bytes_read += size + 8
                self.stats.read_ops += 1
                yield pickle.loads(payload)
        self._path.unlink()
        self._path = None

    def close(self) -> None:
        """Release the backing directory (temp dirs are removed)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "DiskLevelStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class OocResult:
    """Output of :func:`enumerate_maximal_cliques_ooc`."""

    cliques: list[tuple[int, ...]] = field(default_factory=list)
    io: IOStats = field(default_factory=IOStats)
    counters: OpCounters = field(default_factory=OpCounters)
    levels: int = 0


def enumerate_maximal_cliques_ooc(
    g: Graph,
    k_min: int = 2,
    k_max: int | None = None,
    directory: str | Path | None = None,
    chunk_size: int = 256,
    on_clique: Callable[[tuple[int, ...]], None] | None = None,
) -> OocResult:
    """Out-of-core Clique Enumerator: candidates live on disk.

    Identical output to the in-core driver with the same bounds; every
    level is spilled and re-read once, and :class:`IOStats` records the
    traffic.  ``k_min`` below 2 is promoted to 2.
    """
    k_min = max(2, k_min)
    if k_max is not None and k_max < k_min:
        raise ParameterError(f"k_max ({k_max}) must be >= k_min ({k_min})")
    result = OocResult()
    counters = result.counters
    emit = on_clique if on_clique is not None else result.cliques.append

    if k_min == 2:
        seed = build_initial_sublists(
            g, counters, emit, emit_maximal_edges=True
        )
    else:
        kres = enumerate_k_cliques(g, k_min, counters)
        for clique in kres.maximal:
            emit(clique)
        seed = build_sublists_from_k_cliques(
            g, k_min, kres.non_maximal, counters
        )

    store = DiskLevelStore(directory, chunk_size, result.io)
    try:
        for sl in seed:
            store.append(sl)
        k = k_min
        while len(store) and (k_max is None or k < k_max):
            next_store = DiskLevelStore(
                directory, chunk_size, result.io
            )
            for chunk in store.stream():
                for child in generate_next_level(
                    chunk, g, counters, emit
                ):
                    next_store.append(child)
            store.close()
            store = next_store
            k += 1
        result.levels = k
    finally:
        store.close()
    return result
