"""Bron–Kerbosch maximal-clique enumeration baselines.

Section 2.2 of the paper describes the two classic recursive backtracking
algorithms it compares against:

Base BK
    "always chooses [the selected vertex] in the order in which the
    vertices are presented in CANDIDATES" — plain depth-first extension
    with no pivoting.

Improved BK
    "initially chooses a v with the highest number of connections to the
    remaining members of CANDIDATES" and afterwards only considers vertices
    not connected to the pivot — the pivoting variant, efficient on graphs
    with many overlapping cliques.

Both maintain the three classic sets:

* ``COMPSUB`` (here ``R``) — the clique in progress,
* ``CANDIDATES`` (``P``) — vertices adjacent to everything in ``R`` that
  may still be added,
* ``NOT`` (``X``) — vertices adjacent to everything in ``R`` already
  expanded elsewhere, used to recognise non-maximal dead ends.

A degeneracy-ordered variant (Eppstein–Löffler–Strash) is included as an
extension; it is not in the paper but is the modern reference point for
sparse graphs and is used in the baseline benchmarks.

All functions yield cliques as sorted tuples.  These algorithms discover
maximal cliques in quasi-random size order — the limitation the paper's
Clique Enumerator removes.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core import bitset as bs
from repro.core.counters import OpCounters
from repro.core.degeneracy import degeneracy_ordering
from repro.core.graph import Graph

__all__ = [
    "bron_kerbosch_base",
    "bron_kerbosch_pivot",
    "bron_kerbosch_degeneracy",
]

_ONE = np.uint64(1)


def _clear_bit(words: np.ndarray, v: int) -> None:
    words[v >> 6] &= ~(_ONE << np.uint64(v & 63))


def _set_bit(words: np.ndarray, v: int) -> None:
    words[v >> 6] |= _ONE << np.uint64(v & 63)


def bron_kerbosch_base(
    g: Graph, counters: OpCounters | None = None
) -> Iterator[tuple[int, ...]]:
    """Base Bron–Kerbosch: candidate scan in presentation (index) order.

    Yields every maximal clique exactly once, as a sorted tuple.  Isolated
    vertices are yielded as 1-cliques.
    """
    n = g.n
    if n == 0:
        return
    adj = g.adj
    c = counters if counters is not None else OpCounters()
    out: list[tuple[int, ...]] = []

    def extend(r: list[int], p: np.ndarray, x: np.ndarray) -> None:
        c.bit_exist_checks += 2
        if not p.any() and not x.any():
            out.append(tuple(r))
            c.maximal_emitted += 1
            return
        for v in bs.words_to_indices(p, n).tolist():
            _clear_bit(p, v)
            c.bit_and_ops += 2
            new_p = p & adj[v]
            new_x = x & adj[v]
            r.append(v)
            extend(r, new_p, new_x)
            r.pop()
            _set_bit(x, v)

    p0 = np.zeros(bs.n_words(n), dtype=np.uint64)
    if n:
        p0[:] = ~np.uint64(0)
        p0[-1] &= bs.tail_mask(n)
    x0 = np.zeros_like(p0)
    extend([], p0, x0)
    # Depth-first emission order is not sorted by size; hand cliques out in
    # discovery order, matching the original algorithm's behaviour.
    yield from out


def bron_kerbosch_pivot(
    g: Graph, counters: OpCounters | None = None
) -> Iterator[tuple[int, ...]]:
    """Improved Bron–Kerbosch: pivot on max connections to CANDIDATES.

    The pivot ``u`` is chosen from ``P ∪ X`` to maximise ``|P ∩ N(u)|``;
    only vertices of ``P`` not adjacent to ``u`` are expanded, which prunes
    heavily on graphs with overlapping cliques (paper Section 2.2).
    """
    n = g.n
    if n == 0:
        return
    adj = g.adj
    c = counters if counters is not None else OpCounters()
    out: list[tuple[int, ...]] = []

    def pick_pivot(p: np.ndarray, x: np.ndarray) -> int:
        best_v = -1
        best_score = -1
        for v in bs.words_to_indices(p | x, n).tolist():
            c.bit_and_ops += 1
            score = int(np.bitwise_count(p & adj[v]).sum())
            if score > best_score:
                best_score = score
                best_v = v
        return best_v

    def extend(r: list[int], p: np.ndarray, x: np.ndarray) -> None:
        c.bit_exist_checks += 2
        if not p.any() and not x.any():
            out.append(tuple(r))
            c.maximal_emitted += 1
            return
        if not p.any():
            return
        u = pick_pivot(p, x)
        ext = p & ~adj[u]
        for v in bs.words_to_indices(ext, n).tolist():
            _clear_bit(p, v)
            c.bit_and_ops += 2
            new_p = p & adj[v]
            new_x = x & adj[v]
            r.append(v)
            extend(r, new_p, new_x)
            r.pop()
            _set_bit(x, v)

    p0 = np.zeros(bs.n_words(n), dtype=np.uint64)
    if n:
        p0[:] = ~np.uint64(0)
        p0[-1] &= bs.tail_mask(n)
    x0 = np.zeros_like(p0)
    extend([], p0, x0)
    for r in out:
        yield tuple(sorted(r))


def bron_kerbosch_degeneracy(
    g: Graph, counters: OpCounters | None = None
) -> Iterator[tuple[int, ...]]:
    """Degeneracy-ordered Bron–Kerbosch (Eppstein–Löffler–Strash).

    Outer loop over a degeneracy ordering keeps each top-level candidate
    set no larger than the degeneracy; inner recursion uses pivoting.
    Extension beyond the paper's baselines, included for the baseline
    comparison benchmarks.
    """
    n = g.n
    if n == 0:
        return
    adj = g.adj
    c = counters if counters is not None else OpCounters()
    order, _ = degeneracy_ordering(g)
    rank = np.zeros(n, dtype=np.int64)
    for i, v in enumerate(order):
        rank[v] = i

    out: list[tuple[int, ...]] = []

    def pick_pivot(p: np.ndarray, x: np.ndarray) -> int:
        best_v, best_score = -1, -1
        for v in bs.words_to_indices(p | x, n).tolist():
            c.bit_and_ops += 1
            score = int(np.bitwise_count(p & adj[v]).sum())
            if score > best_score:
                best_score, best_v = score, v
        return best_v

    def extend(r: list[int], p: np.ndarray, x: np.ndarray) -> None:
        c.bit_exist_checks += 2
        if not p.any() and not x.any():
            out.append(tuple(sorted(r)))
            c.maximal_emitted += 1
            return
        if not p.any():
            return
        u = pick_pivot(p, x)
        for v in bs.words_to_indices(p & ~adj[u], n).tolist():
            _clear_bit(p, v)
            c.bit_and_ops += 2
            new_p = p & adj[v]
            new_x = x & adj[v]
            r.append(v)
            extend(r, new_p, new_x)
            r.pop()
            _set_bit(x, v)

    for v in order:
        later = np.zeros(bs.n_words(n), dtype=np.uint64)
        earlier = np.zeros_like(later)
        for u in g.neighbors(v).tolist():
            if rank[u] > rank[v]:
                _set_bit(later, u)
            else:
                _set_bit(earlier, u)
        extend([v], later, earlier)
    yield from out
