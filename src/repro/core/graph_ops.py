"""Boolean graph algebra over multiple observation graphs.

Section 1 of the paper describes cleaning noisy protein-interaction data by
representing each experiment as an undirected graph and running "queries
consisting of Boolean graph operations (e.g., graph intersection and
at-least-k-of-n over multiple graphs)".  These operations are implemented
here directly on the bit-adjacency matrices, so an intersection over graphs
is one vectorised AND over their word matrices.

All operations require operands over the same vertex universe.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import GraphError, ParameterError
from repro.core import bitset as bs
from repro.core.graph import Graph

__all__ = [
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
    "at_least_k_of_n",
    "edge_agreement",
]


def _check_same_universe(graphs: Sequence[Graph]) -> int:
    if not graphs:
        raise ParameterError("need at least one graph")
    n = graphs[0].n
    for g in graphs[1:]:
        if g.n != n:
            raise GraphError(
                f"graphs have different vertex counts: {n} vs {g.n}"
            )
    return n


def _from_words(n: int, words: np.ndarray) -> Graph:
    """Build a Graph from a raw (symmetric, zero-diagonal) word matrix."""
    g = Graph(n)
    g.adj[:] = words
    degrees = np.bitwise_count(g.adj).sum(axis=1).astype(np.int64)
    g._degrees[:] = degrees
    g._m = int(degrees.sum()) // 2
    return g


def intersection(graphs: Sequence[Graph]) -> Graph:
    """Edges present in *every* input graph (bitwise AND of adjacencies)."""
    n = _check_same_universe(graphs)
    acc = graphs[0].adj.copy()
    for g in graphs[1:]:
        np.bitwise_and(acc, g.adj, out=acc)
    return _from_words(n, acc)


def union(graphs: Sequence[Graph]) -> Graph:
    """Edges present in *any* input graph (bitwise OR of adjacencies)."""
    n = _check_same_universe(graphs)
    acc = graphs[0].adj.copy()
    for g in graphs[1:]:
        np.bitwise_or(acc, g.adj, out=acc)
    return _from_words(n, acc)


def difference(a: Graph, b: Graph) -> Graph:
    """Edges of ``a`` not present in ``b`` (AND-NOT)."""
    _check_same_universe([a, b])
    return _from_words(a.n, a.adj & ~b.adj)


def symmetric_difference(a: Graph, b: Graph) -> Graph:
    """Edges present in exactly one of ``a`` and ``b`` (XOR)."""
    _check_same_universe([a, b])
    return _from_words(a.n, a.adj ^ b.adj)


def at_least_k_of_n(graphs: Sequence[Graph], k: int) -> Graph:
    """Edges present in at least ``k`` of the ``n`` input graphs.

    This is the paper's replicate-voting query for separating true
    interactions from false positives: an edge survives when it was
    observed in at least ``k`` independent experiments.

    ``k = 1`` degenerates to :func:`union`, ``k = len(graphs)`` to
    :func:`intersection`.
    """
    n = _check_same_universe(graphs)
    if not 1 <= k <= len(graphs):
        raise ParameterError(
            f"k must be in [1, {len(graphs)}], got {k}"
        )
    if k == 1:
        return union(graphs)
    if k == len(graphs):
        return intersection(graphs)
    # Bit-sliced counter: per adjacency bit position, count how many graphs
    # set it, carried across ceil(log2(n_graphs+1)) bit planes.  This keeps
    # the whole vote inside word-parallel logic (no per-edge loop).
    planes: list[np.ndarray] = []  # planes[i] = i-th bit of the running sum
    for g in graphs:
        carry = g.adj.copy()
        for plane in planes:
            new_carry = plane & carry
            np.bitwise_xor(plane, carry, out=plane)
            carry = new_carry
        if carry.any():
            planes.append(carry)
        elif not planes:
            planes.append(carry)
    # An edge passes when the binary counter value >= k.  Compare the
    # per-position counter against k from the most significant plane down,
    # maintaining "already proven greater" and "still equal so far" masks.
    ge = np.zeros_like(graphs[0].adj)          # count > k proven
    eq = np.full_like(ge, np.uint64(0xFFFFFFFFFFFFFFFF))  # prefix equal
    if eq.size:
        eq[:, -1] &= bs.tail_mask(n)
    if (1 << len(planes)) <= k:
        # Counts are bounded by 2**len(planes) - 1 < k: nothing can pass.
        return _from_words(n, np.zeros_like(ge))
    for bit in range(len(planes) - 1, -1, -1):
        kbit = (k >> bit) & 1
        plane = planes[bit]
        if kbit == 0:
            # count bit 1 while k bit 0 -> count > k on this prefix
            ge |= eq & plane
            eq &= ~plane
        else:
            # count bit 0 while k bit 1 -> count < k, drop from eq
            eq &= plane
    result = ge | eq  # eq now marks count == k exactly
    return _from_words(n, result)


def edge_agreement(a: Graph, b: Graph) -> float:
    """Jaccard similarity of the edge sets of two graphs.

    Returns 1.0 for two empty graphs (they agree perfectly on nothing).
    """
    _check_same_universe([a, b])
    inter = int(np.bitwise_count(a.adj & b.adj).sum()) // 2
    uni = int(np.bitwise_count(a.adj | b.adj).sum()) // 2
    if uni == 0:
        return 1.0
    return inter / uni
