"""Graph readers and writers.

Supported formats:

DIMACS clique format (``.dimacs``, ``.clq``)
    The de-facto exchange format of the maximum-clique community the paper
    builds on.  Lines: ``c`` comments, one ``p edge <n> <m>`` problem line,
    ``e <u> <v>`` edge lines with 1-based vertex ids.

Edge list (``.edges``, ``.txt``)
    Whitespace-separated ``u v`` pairs with 0-based ids; ``#`` comments.
    An optional header line ``n <count>`` pins the vertex count, otherwise
    it is inferred as ``max_id + 1``.

JSON (``.json``)
    ``{"n": int, "edges": [[u, v], ...]}`` — stable for round-trips and
    easy to diff.

All readers validate and raise :class:`~repro.errors.ParseError` with the
offending line number on malformed input.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import ParseError
from repro.core.graph import Graph

__all__ = [
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "read_json",
    "write_json",
    "load",
    "save",
    "graph_fingerprint",
]


def graph_fingerprint(g: Graph) -> str:
    """Stable content hash of a graph: same edges, same fingerprint.

    The digest covers the vertex count and the sorted edge set — the
    adjacency bitmap rows are exactly the edge set in canonical order,
    so hashing the raw words is equivalent to hashing ``sorted(
    g.edges())`` while staying O(n^2/64) with no Python-level edge
    loop.  The fingerprint is independent of construction order and
    changes whenever an edge is added or removed, which is what makes
    it safe as a cache key (:mod:`repro.service.cache`) and useful in
    ``repro stats`` output.
    """
    h = hashlib.sha256()
    h.update(f"graph:{g.n}:".encode())
    h.update(g.adj.tobytes())
    return h.hexdigest()


def read_dimacs(path: str | Path) -> Graph:
    """Read a DIMACS ``p edge`` file with 1-based vertex ids."""
    path = Path(path)
    n = None
    declared_m = None
    edges: list[tuple[int, int]] = []
    with path.open() as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if n is not None:
                    raise ParseError(
                        f"{path}:{lineno}: duplicate problem line"
                    )
                if len(parts) != 4 or parts[1] not in ("edge", "col"):
                    raise ParseError(
                        f"{path}:{lineno}: malformed problem line {line!r}"
                    )
                try:
                    n = int(parts[2])
                    declared_m = int(parts[3])
                except ValueError as exc:
                    raise ParseError(
                        f"{path}:{lineno}: non-integer sizes in {line!r}"
                    ) from exc
            elif parts[0] == "e":
                if n is None:
                    raise ParseError(
                        f"{path}:{lineno}: edge before problem line"
                    )
                if len(parts) != 3:
                    raise ParseError(
                        f"{path}:{lineno}: malformed edge line {line!r}"
                    )
                try:
                    u, v = int(parts[1]), int(parts[2])
                except ValueError as exc:
                    raise ParseError(
                        f"{path}:{lineno}: non-integer endpoint in {line!r}"
                    ) from exc
                if not (1 <= u <= n and 1 <= v <= n):
                    raise ParseError(
                        f"{path}:{lineno}: endpoint out of range in {line!r}"
                    )
                if u != v:
                    edges.append((u - 1, v - 1))
            else:
                raise ParseError(
                    f"{path}:{lineno}: unknown record {parts[0]!r}"
                )
    if n is None:
        raise ParseError(f"{path}: missing problem line")
    g = Graph.from_edges(n, edges)
    if declared_m is not None and g.m != declared_m and declared_m != len(
        edges
    ):
        # Many published instances count each edge once; some count both
        # directions.  Accept either but reject anything else.
        if g.m * 2 != declared_m:
            raise ParseError(
                f"{path}: problem line declares {declared_m} edges, "
                f"file contains {g.m} unique edges"
            )
    return g


def write_dimacs(g: Graph, path: str | Path, comment: str = "") -> None:
    """Write a graph in DIMACS ``p edge`` format (1-based ids)."""
    path = Path(path)
    with path.open("w") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p edge {g.n} {g.m}\n")
        for u, v in g.edges():
            fh.write(f"e {u + 1} {v + 1}\n")


def read_edge_list(path: str | Path) -> Graph:
    """Read a 0-based whitespace edge list, optional ``n <count>`` header."""
    path = Path(path)
    n_declared = None
    edges: list[tuple[int, int]] = []
    max_id = -1
    with path.open() as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if parts[0] == "n":
                if len(parts) != 2:
                    raise ParseError(
                        f"{path}:{lineno}: malformed header {line!r}"
                    )
                try:
                    n_declared = int(parts[1])
                except ValueError as exc:
                    raise ParseError(
                        f"{path}:{lineno}: non-integer count"
                    ) from exc
                continue
            if len(parts) != 2:
                raise ParseError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise ParseError(
                    f"{path}:{lineno}: non-integer endpoint in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise ParseError(
                    f"{path}:{lineno}: negative vertex id in {line!r}"
                )
            if u != v:
                edges.append((u, v))
            max_id = max(max_id, u, v)
    n = n_declared if n_declared is not None else max_id + 1
    if max_id >= n:
        raise ParseError(
            f"{path}: vertex id {max_id} exceeds declared count {n}"
        )
    return Graph.from_edges(n, edges)


def write_edge_list(g: Graph, path: str | Path) -> None:
    """Write a 0-based edge list with an ``n`` header."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"n {g.n}\n")
        for u, v in g.edges():
            fh.write(f"{u} {v}\n")


def read_json(path: str | Path) -> Graph:
    """Read the JSON graph format."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ParseError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "n" not in payload:
        raise ParseError(f"{path}: expected object with 'n' and 'edges'")
    n = payload["n"]
    edges = payload.get("edges", [])
    if not isinstance(n, int) or n < 0:
        raise ParseError(f"{path}: 'n' must be a non-negative integer")
    try:
        pairs = [(int(u), int(v)) for u, v in edges]
    except (TypeError, ValueError) as exc:
        raise ParseError(f"{path}: malformed edge entry") from exc
    return Graph.from_edges(n, pairs)


def write_json(g: Graph, path: str | Path) -> None:
    """Write the JSON graph format."""
    payload = {"n": g.n, "edges": [[u, v] for u, v in g.edges()]}
    Path(path).write_text(json.dumps(payload))


_READERS = {
    ".dimacs": read_dimacs,
    ".clq": read_dimacs,
    ".edges": read_edge_list,
    ".txt": read_edge_list,
    ".json": read_json,
}

_WRITERS = {
    ".dimacs": write_dimacs,
    ".clq": write_dimacs,
    ".edges": write_edge_list,
    ".txt": write_edge_list,
    ".json": write_json,
}


def load(path: str | Path) -> Graph:
    """Dispatch on file extension to the matching reader."""
    suffix = Path(path).suffix.lower()
    reader = _READERS.get(suffix)
    if reader is None:
        raise ParseError(
            f"unknown graph format {suffix!r}; "
            f"expected one of {sorted(_READERS)}"
        )
    return reader(path)


def save(g: Graph, path: str | Path) -> None:
    """Dispatch on file extension to the matching writer."""
    suffix = Path(path).suffix.lower()
    writer = _WRITERS.get(suffix)
    if writer is None:
        raise ParseError(
            f"unknown graph format {suffix!r}; "
            f"expected one of {sorted(_WRITERS)}"
        )
    writer(g, path)
