"""Word-Aligned Hybrid (WAH) compressed bitmaps.

The paper observes that its bitmap memory index is sparse and that "the
sparcity of the bitmap memory index can potentially provide high compression
rate and allow for bitwise operations to be performed on the compressed
data.  The work in this direction is underway."  This module implements that
direction: the classic WAH encoding of Wu, Otoo and Shoshani, in which a
bitmap is split into 31-bit *groups* and encoded as a sequence of 32-bit
words of two kinds:

literal word
    Most-significant bit 0; the low 31 bits hold one group verbatim.

fill word
    Most-significant bit 1; bit 30 holds the fill bit value; the low 30
    bits hold the run length measured in groups.  A fill word of length
    ``L`` represents ``L`` consecutive all-zero or all-one groups.

Logical AND/OR run directly on the compressed form without decompression,
which is what makes the representation attractive for the paper's
common-neighbor intersections on very sparse genome-scale graphs.

The encoder always produces *canonical* output: adjacent fills of the same
bit value are merged and a fill of length 1 is still a fill (one word), so
equal bitmaps encode to equal word sequences.  The full word layout, the
fill encoding, and the group-coverage invariant the constructor enforces
are documented in ``docs/wah-format.md``.

Two layers are provided, mirroring :mod:`repro.core.bitset`:

:class:`WahBitmap`
    A safe, validated wrapper with set algebra on the compressed form,
    used by the level stores and the public API.

word-array kernels (:func:`wah_and_into`, :func:`wah_and_any`,
:func:`wah_and_count`, :func:`wah_indices_above`,
:func:`wah_from_sorted_indices`)
    Allocation-light primitives over raw WAH word lists used by the
    compressed-domain generation step
    (:class:`repro.core.compressed_domain.CompressedExpander`), where
    constructing wrapper objects per candidate clique would dominate run
    time.  A reusable :class:`WahScratch` carries the output buffer and
    the word-op tally between calls.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import BitSetError
from repro.core.bitset import WORD_BITS, BitSet

__all__ = [
    "WahBitmap",
    "GROUP_BITS",
    "WahScratch",
    "wah_and_into",
    "wah_and_any",
    "wah_and_count",
    "wah_indices_above",
    "wah_from_sorted_indices",
]

#: Number of payload bits per WAH group/literal.
GROUP_BITS = 31

_LITERAL_MASK = (1 << GROUP_BITS) - 1          # 0x7FFFFFFF
_FILL_FLAG = 1 << 31
_FILL_BIT = 1 << 30
_FILL_LEN_MASK = (1 << 30) - 1


def _is_fill(word: int) -> bool:
    return bool(word & _FILL_FLAG)


def _fill_bit(word: int) -> int:
    return 1 if word & _FILL_BIT else 0


def _fill_len(word: int) -> int:
    return word & _FILL_LEN_MASK


def _make_fill(bit: int, length: int) -> int:
    if not 0 < length <= _FILL_LEN_MASK:
        raise BitSetError(f"fill run length {length} out of range")
    return _FILL_FLAG | (_FILL_BIT if bit else 0) | length


class _GroupReader:
    """Sequential reader yielding one 31-bit group per ``next_group`` call."""

    __slots__ = ("words", "pos", "pending_fill", "pending_bit")

    def __init__(self, words: list[int]):
        self.words = words
        self.pos = 0
        self.pending_fill = 0
        self.pending_bit = 0

    def next_group(self) -> int:
        if self.pending_fill:
            self.pending_fill -= 1
            return _LITERAL_MASK if self.pending_bit else 0
        word = self.words[self.pos]
        self.pos += 1
        if _is_fill(word):
            self.pending_bit = _fill_bit(word)
            self.pending_fill = _fill_len(word) - 1
            return _LITERAL_MASK if self.pending_bit else 0
        return word


class _Builder:
    """Accumulates groups into canonical WAH words."""

    __slots__ = ("out", "run_bit", "run_len")

    def __init__(self) -> None:
        self.out: list[int] = []
        self.run_bit = -1
        self.run_len = 0

    def _flush_run(self) -> None:
        if self.run_len:
            self.out.append(_make_fill(self.run_bit, self.run_len))
            self.run_len = 0
            self.run_bit = -1

    def add_group(self, group: int) -> None:
        if group == 0 or group == _LITERAL_MASK:
            bit = 1 if group else 0
            if self.run_bit == bit and self.run_len < _FILL_LEN_MASK:
                self.run_len += 1
            else:
                self._flush_run()
                self.run_bit = bit
                self.run_len = 1
        else:
            self._flush_run()
            self.out.append(group)

    def finish(self) -> list[int]:
        self._flush_run()
        return self.out


class WahBitmap:
    """A WAH-compressed bitmap over a fixed universe of ``n`` bits.

    Construct via :meth:`from_bitset`, :meth:`from_indices`, or the boolean
    operators on existing instances.  Instances are immutable.

    Examples
    --------
    >>> a = WahBitmap.from_indices(100, [0, 50, 99])
    >>> b = WahBitmap.from_indices(100, [50, 60])
    >>> sorted((a & b).to_bitset())
    [50]
    >>> a.count()
    3
    """

    __slots__ = ("n", "_words", "_n_groups")

    def __init__(self, n: int, words):
        if n < 0:
            raise BitSetError(f"universe size must be non-negative, got {n}")
        self.n = n
        self._n_groups = (n + GROUP_BITS - 1) // GROUP_BITS
        if isinstance(words, np.ndarray):
            if words.dtype != np.uint32:
                raise BitSetError(
                    f"WAH word array must be uint32, got {words.dtype}"
                )
            # never freeze (or share mutable state with) a caller array
            arr = words.copy() if words.flags.writeable else words
        else:
            try:
                arr = np.asarray(words, dtype=np.uint32)
            except (OverflowError, ValueError, TypeError):
                for i, word in enumerate(words):
                    if not 0 <= word < (1 << 32):
                        raise BitSetError(
                            f"WAH word {i} out of 32-bit range: {word!r}"
                        ) from None
                raise
        # Validate group coverage up front: a truncated or padded stream
        # must fail here with a precise message, not surface later as a
        # confusing group-count error from count() or a wrong __eq__.
        is_fill = (arr & np.uint32(_FILL_FLAG)) != 0
        fill_len = (arr & np.uint32(_FILL_LEN_MASK)).astype(np.int64)
        zero_fill = is_fill & (fill_len == 0)
        if zero_fill.any():
            raise BitSetError(
                f"WAH word {int(zero_fill.argmax())} is a fill of "
                f"zero run length"
            )
        covered = int(np.where(is_fill, fill_len, 1).sum())
        if covered != self._n_groups:
            raise BitSetError(
                f"WAH stream covers {covered} group(s), expected "
                f"{self._n_groups} for a {n}-bit universe"
            )
        # The final group's padding bits must be zero, or count(),
        # iteration, and __eq__ all go wrong (e.g. iter_indices would
        # yield vertex indices >= n).
        rem = n % GROUP_BITS
        if rem and arr.size:
            last = int(arr[-1])
            padding_set = (
                _fill_bit(last)
                if _is_fill(last)
                else last >> rem
            )
            if padding_set:
                raise BitSetError(
                    f"WAH stream sets padding bits beyond the "
                    f"{n}-bit universe in its final group"
                )
        if arr.flags.writeable:
            arr.setflags(write=False)
        self._words = arr

    @classmethod
    def _trusted(cls, n: int, words: np.ndarray) -> "WahBitmap":
        """Wrap an already-canonical ``uint32`` word array, unvalidated.

        Internal fast path for streams produced by this module's own
        encoders and by the :mod:`~repro.core.wah_kernels` batch codecs,
        whose outputs are canonical by construction.  The array is
        frozen in place; callers hand over ownership.
        """
        bm = object.__new__(cls)
        bm.n = n
        bm._n_groups = (n + GROUP_BITS - 1) // GROUP_BITS
        if words.flags.writeable:
            words.setflags(write=False)
        bm._words = words
        return bm

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bitset(cls, bs: BitSet) -> "WahBitmap":
        """Compress a :class:`BitSet`."""
        n = bs.n
        n_groups = (n + GROUP_BITS - 1) // GROUP_BITS
        if n_groups == 0:
            return cls(n, [])
        # Expand to single bits once, then pack 31 at a time.  This is an
        # O(n) encode; fine because encoding happens off the hot path.
        bits = np.unpackbits(bs.words.view(np.uint8), bitorder="little")[:n]
        padded = np.zeros(n_groups * GROUP_BITS, dtype=np.uint8)
        padded[:n] = bits
        groups = padded.reshape(n_groups, GROUP_BITS)
        weights = (1 << np.arange(GROUP_BITS, dtype=np.int64))
        vals = (groups.astype(np.int64) * weights).sum(axis=1)
        builder = _Builder()
        for v in vals.tolist():
            builder.add_group(int(v))
        return cls._trusted(
            n, np.asarray(builder.finish(), dtype=np.uint32)
        )

    @classmethod
    def from_indices(cls, n: int, indices: Iterable[int]) -> "WahBitmap":
        """Compress the set containing exactly ``indices``."""
        return cls.from_bitset(BitSet.from_indices(n, indices))

    @classmethod
    def from_words(
        cls, words: np.ndarray, n: int | None = None
    ) -> "WahBitmap":
        """Compress a raw ``uint64`` bit-string word array.

        ``words`` is the :class:`~repro.core.bitset.BitSet` layout used
        by the enumeration hot loops (``CliqueSubList.cn_words``).  When
        ``n`` is omitted the full ``64 * len(words)``-bit universe is
        used, which round-trips exactly through :meth:`to_words` for any
        word array whose tail invariant holds.

        Examples
        --------
        >>> import numpy as np
        >>> bm = WahBitmap.from_words(np.array([0b1011], dtype=np.uint64))
        >>> (bm.n, sorted(bm.iter_indices()))
        (64, [0, 1, 3])
        >>> np.array_equal(
        ...     bm.to_words(), np.array([0b1011], dtype=np.uint64)
        ... )
        True
        """
        arr = np.ascontiguousarray(words, dtype=np.uint64)
        if n is None:
            n = WORD_BITS * int(arr.size)
        return cls.from_bitset(BitSet(n, arr))

    @classmethod
    def zeros(cls, n: int) -> "WahBitmap":
        """All-zero bitmap."""
        return cls.from_bitset(BitSet.zeros(n))

    # -- decompression -----------------------------------------------------

    def to_bitset(self) -> BitSet:
        """Decompress to a :class:`BitSet`."""
        if self._n_groups == 0:
            return BitSet.zeros(self.n)
        reader = _GroupReader(self._words.tolist())
        vals = np.fromiter(
            (reader.next_group() for _ in range(self._n_groups)),
            dtype=np.int64,
            count=self._n_groups,
        )
        shifts = np.arange(GROUP_BITS, dtype=np.int64)
        bits = ((vals[:, None] >> shifts) & 1).astype(np.uint8)
        flat = bits.reshape(-1)[: self.n]
        out = BitSet.zeros(self.n)
        idx = np.flatnonzero(flat)
        if idx.size:
            out.words[:] = BitSet.from_indices(self.n, idx).words
        return out

    def to_words(self) -> np.ndarray:
        """Decompress to raw ``uint64`` bit-string words.

        Inverse of :meth:`from_words`: the returned array is the
        :class:`~repro.core.bitset.BitSet` word layout the enumeration
        hot loops operate on.  Like :meth:`wah_words`, the array is
        returned read-only; copy it before mutating.
        """
        words = self.to_bitset().words
        words.setflags(write=False)
        return words

    def iter_indices(self) -> Iterator[int]:
        """Yield the set-bit indices, ascending, without decompressing.

        Zero fills advance the cursor in O(1) whatever their run
        length; only literal words and one-fills cost time, so
        iteration is proportional to the *compressed* size plus the
        population count — the op the paper's "bitwise operations ...
        on the compressed data" remark asks for.
        """
        base = 0
        for word in self._words.tolist():
            if _is_fill(word):
                span = _fill_len(word) * GROUP_BITS
                if _fill_bit(word):
                    yield from range(base, min(base + span, self.n))
                base += span
            else:
                value = int(word)
                while value:
                    low = value & -value
                    yield base + low.bit_length() - 1
                    value ^= low
                base += GROUP_BITS

    def __iter__(self) -> Iterator[int]:
        return self.iter_indices()

    # -- compressed-domain operations ---------------------------------------

    def _check(self, other: "WahBitmap") -> None:
        if not isinstance(other, WahBitmap):
            raise TypeError(f"expected WahBitmap, got {type(other).__name__}")
        if other.n != self.n:
            raise BitSetError(f"universe mismatch: {self.n} vs {other.n}")

    def _binary(self, other: "WahBitmap", op) -> "WahBitmap":
        """Group-synchronous merge.

        Runs of fills are consumed in bulk when both operands are mid-fill,
        so the cost is proportional to the *compressed* sizes, not ``n``.
        """
        self._check(other)
        ra = _GroupReader(self._words.tolist())
        rb = _GroupReader(other._words.tolist())
        builder = _Builder()
        remaining = self._n_groups
        while remaining:
            ga = ra.next_group()
            gb = rb.next_group()
            # Bulk-skip: while both readers sit inside fills, the op result
            # is constant; emit it for the overlapping run length.
            bulk = min(ra.pending_fill, rb.pending_fill, remaining - 1)
            g = op(ga, gb) & _LITERAL_MASK
            builder.add_group(g)
            if bulk > 0 and (ga in (0, _LITERAL_MASK)) and (
                gb in (0, _LITERAL_MASK)
            ):
                for _ in range(bulk):
                    builder.add_group(g)
                ra.pending_fill -= bulk
                rb.pending_fill -= bulk
                remaining -= bulk
            remaining -= 1
        return WahBitmap._trusted(
            self.n, np.asarray(builder.finish(), dtype=np.uint32)
        )

    def __and__(self, other: "WahBitmap") -> "WahBitmap":
        return self._binary(other, lambda a, b: a & b)

    def __or__(self, other: "WahBitmap") -> "WahBitmap":
        return self._binary(other, lambda a, b: a | b)

    def __xor__(self, other: "WahBitmap") -> "WahBitmap":
        return self._binary(other, lambda a, b: a ^ b)

    def andnot(self, other: "WahBitmap") -> "WahBitmap":
        """Compressed-domain ``self & ~other``."""
        return self._binary(other, lambda a, b: a & ~b)

    def intersect_any(self, other: "WahBitmap") -> bool:
        """``(self & other).any()`` without materialising the AND.

        The paper's ``BitOneExists`` maximality test on compressed
        operands: the merged scan stops at the first overlapping group
        and bulk-skips aligned fill runs, so a hit costs only the
        compressed prefix before the overlap.

        Examples
        --------
        >>> a = WahBitmap.from_indices(10_000, [3, 9_000])
        >>> a.intersect_any(WahBitmap.from_indices(10_000, [9_000]))
        True
        >>> a.intersect_any(WahBitmap.from_indices(10_000, [4, 8_999]))
        False
        """
        self._check(other)
        ra = _GroupReader(self._words.tolist())
        rb = _GroupReader(other._words.tolist())
        remaining = self._n_groups
        while remaining:
            ga = ra.next_group()
            gb = rb.next_group()
            if ga & gb:
                return True
            # both mid-fill with a zero AND: at least one side is a
            # zero fill, so the AND stays zero for the whole overlap
            bulk = min(ra.pending_fill, rb.pending_fill, remaining - 1)
            if bulk > 0:
                ra.pending_fill -= bulk
                rb.pending_fill -= bulk
                remaining -= bulk
            remaining -= 1
        return False

    def any(self) -> bool:
        """True when any bit is set, without decompression."""
        for w in self._words.tolist():
            if _is_fill(w):
                if _fill_bit(w):
                    return True
            elif w:
                return True
        return False

    def count(self) -> int:
        """Population count, computed on the compressed form."""
        total = 0
        for w in self._words.tolist():
            if _is_fill(w):
                if _fill_bit(w):
                    total += _fill_len(w) * GROUP_BITS
            else:
                total += int(w).bit_count()
        # group coverage and zero padding are validated at
        # construction, so no tail correction is needed here
        return total

    # -- storage metrics ----------------------------------------------------

    def wah_words(self) -> np.ndarray:
        """The raw compressed WAH words, for the word-array kernels.

        Returns the internal canonical word array — a *read-only*
        ``np.uint32`` ndarray, shared without copying (``.tolist()`` it
        for the pure-Python kernels' fastest indexing).  This is the
        representation :func:`wah_and_into` / :func:`wah_and_any` /
        :func:`wah_and_count` and the :mod:`~repro.core.wah_kernels`
        batch kernels operate on, paired with the bitmap's group count
        ``(n + 30) // 31``.

        Examples
        --------
        >>> [hex(w) for w in WahBitmap.from_indices(93, [0]).wah_words()]
        ['0x1', '0x80000002']
        """
        return self._words

    def compressed_words(self) -> int:
        """Number of 32-bit words in the compressed encoding."""
        return len(self._words)

    def nbytes(self) -> int:
        """Bytes of compressed payload."""
        return 4 * len(self._words)

    def compression_ratio(self) -> float:
        """Uncompressed bitmap bytes divided by compressed bytes.

        Ratios above 1 mean the compression helps; very sparse or very
        dense bitmaps compress best.  Returns ``inf`` for an empty stream
        over a non-empty universe (cannot happen for canonical encodings)
        and 1.0 for the empty universe.
        """
        raw = 4 * self._n_groups
        if raw == 0:
            return 1.0
        if self._words.size == 0:
            return float("inf")
        return raw / self.nbytes()

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitmap):
            return NotImplemented
        return self.n == other.n and np.array_equal(
            self._words, other._words
        )

    def __hash__(self) -> int:
        return hash((self.n, self._words.tobytes()))

    def __repr__(self) -> str:
        return (
            f"WahBitmap(n={self.n}, words={len(self._words)}, "
            f"count={self.count()})"
        )


# ---------------------------------------------------------------------------
# Word-array kernels: the compressed-domain hot path
# ---------------------------------------------------------------------------
#
# These functions operate on raw canonical WAH word lists (as returned by
# :meth:`WahBitmap.wah_words`) plus an explicit group count, skipping the
# per-call universe validation the `WahBitmap` constructor performs.  They
# are what the compressed-domain generation step
# (:class:`repro.core.compressed_domain.CompressedExpander`) runs once or
# more per candidate clique, so the contract is deliberately lean:
#
# * both operands must be canonical encodings covering exactly `n_groups`
#   groups (every `WahBitmap` guarantees this at construction);
# * outputs are canonical, so kernel results and encoder results for the
#   same bit content are byte-identical word sequences;
# * fill runs are consumed in bulk on both operands, so the cost is
#   proportional to the *compressed* sizes, never to the universe.


class WahScratch:
    """Reusable workspace and op tally for the word-array kernels.

    One scratch serves one thread of kernel calls: ``buf`` is the
    reusable output buffer :func:`wah_and_into` writes into (cleared at
    each call, so a result that must outlive the next call has to be
    copied with ``list(...)``), and the counters record the kernel
    traffic the compressed-domain benchmarks report:

    ``word_ops``
        Compressed 32-bit words consumed plus produced across all calls.
    ``and_ops``
        Kernel invocations (one per compressed-domain AND / test).

    Examples
    --------
    >>> scratch = WahScratch()
    >>> a = WahBitmap.from_indices(62, [0, 40])
    >>> b = WahBitmap.from_indices(62, [40, 41])
    >>> out = wah_and_into(a.wah_words(), b.wah_words(), 2, scratch)
    >>> (out is scratch.buf, scratch.and_ops)
    (True, 1)
    >>> sorted(WahBitmap(62, list(out)).iter_indices())
    [40]
    """

    __slots__ = ("buf", "word_ops", "and_ops")

    def __init__(self) -> None:
        self.buf: list[int] = []
        self.word_ops = 0
        self.and_ops = 0

    def reset_stats(self) -> None:
        """Zero the tallies (the buffer is managed by the kernels)."""
        self.word_ops = 0
        self.and_ops = 0


def _flush_run(out: list[int], bit: int, length: int) -> None:
    """Append a canonical fill run, chunked at the 30-bit length cap."""
    while length > _FILL_LEN_MASK:
        out.append(_make_fill(bit, _FILL_LEN_MASK))
        length -= _FILL_LEN_MASK
    if length:
        out.append(_make_fill(bit, length))


def wah_and_into(
    a: Sequence[int],
    b: Sequence[int],
    n_groups: int,
    scratch: WahScratch | None = None,
) -> list[int]:
    """AND two canonical WAH word streams without decompressing either.

    Returns the canonical word list of ``a & b`` — written into
    ``scratch.buf`` when a scratch is given (copy it before the next
    kernel call if it must survive), a fresh list otherwise.  Aligned
    fill runs are consumed in bulk, so the merge touches each compressed
    word exactly once.

    Examples
    --------
    >>> a = WahBitmap.from_indices(10_000, [5, 9_000])
    >>> b = WahBitmap.from_indices(10_000, [5, 70, 9_001])
    >>> n_groups = (10_000 + 30) // 31
    >>> out = wah_and_into(a.wah_words(), b.wah_words(), n_groups)
    >>> sorted(WahBitmap(10_000, out).iter_indices())
    [5]
    >>> out == (a & b).wah_words().tolist()   # canonical == encoder
    True
    """
    if isinstance(a, np.ndarray):
        a = a.tolist()
    if isinstance(b, np.ndarray):
        b = b.tolist()
    if scratch is None:
        out: list[int] = []
    else:
        out = scratch.buf
        out.clear()
    ia = ib = 0
    a_pend = b_pend = 0
    a_val = b_val = 0
    a_fill = b_fill = False
    run_bit = -1
    run_len = 0
    remaining = n_groups
    while remaining:
        if not a_pend:
            w = a[ia]
            ia += 1
            if w & _FILL_FLAG:
                a_pend = w & _FILL_LEN_MASK
                a_val = _LITERAL_MASK if w & _FILL_BIT else 0
                a_fill = True
            else:
                a_pend = 1
                a_val = w
                a_fill = False
        if not b_pend:
            w = b[ib]
            ib += 1
            if w & _FILL_FLAG:
                b_pend = w & _FILL_LEN_MASK
                b_val = _LITERAL_MASK if w & _FILL_BIT else 0
                b_fill = True
            else:
                b_pend = 1
                b_val = w
                b_fill = False
        # overlap of the two current runs; >1 only when both sides are
        # mid-fill, in which case the AND is constant over the overlap
        take = a_pend if a_pend < b_pend else b_pend
        g = a_val & b_val
        if g == 0 or g == _LITERAL_MASK:
            bit = 1 if g else 0
            if run_bit == bit:
                run_len += take
            else:
                if run_len:
                    _flush_run(out, run_bit, run_len)
                run_bit = bit
                run_len = take
        else:
            # a literal result implies at least one literal operand,
            # whose run length is 1 — so take == 1 here
            if run_len:
                _flush_run(out, run_bit, run_len)
                run_len = 0
                run_bit = -1
            out.append(g)
        a_pend -= take
        b_pend -= take
        remaining -= take
    if run_len:
        _flush_run(out, run_bit, run_len)
    if scratch is not None:
        scratch.word_ops += ia + ib + len(out)
        scratch.and_ops += 1
    return out


def wah_and_any(
    a: Sequence[int],
    b: Sequence[int],
    n_groups: int,
    scratch: WahScratch | None = None,
) -> bool:
    """``BitOneExists(a & b)`` on compressed operands, allocation-free.

    The per-candidate maximality test of the compressed-domain
    generation step: stops at the first overlapping group and bulk-skips
    aligned fill runs, so a hit costs only the compressed prefix before
    the overlap and a miss costs one pass over the compressed words.

    Examples
    --------
    >>> a = WahBitmap.from_indices(10_000, [5, 9_000])
    >>> n_groups = (10_000 + 30) // 31
    >>> wah_and_any(
    ...     a.wah_words(),
    ...     WahBitmap.from_indices(10_000, [9_000]).wah_words(),
    ...     n_groups,
    ... )
    True
    >>> wah_and_any(
    ...     a.wah_words(), WahBitmap.zeros(10_000).wah_words(), n_groups
    ... )
    False
    """
    if isinstance(a, np.ndarray):
        a = a.tolist()
    if isinstance(b, np.ndarray):
        b = b.tolist()
    ia = ib = 0
    a_pend = b_pend = 0
    a_val = b_val = 0
    remaining = n_groups
    hit = False
    while remaining:
        if not a_pend:
            w = a[ia]
            ia += 1
            if w & _FILL_FLAG:
                a_pend = w & _FILL_LEN_MASK
                a_val = _LITERAL_MASK if w & _FILL_BIT else 0
            else:
                a_pend = 1
                a_val = w
        if not b_pend:
            w = b[ib]
            ib += 1
            if w & _FILL_FLAG:
                b_pend = w & _FILL_LEN_MASK
                b_val = _LITERAL_MASK if w & _FILL_BIT else 0
            else:
                b_pend = 1
                b_val = w
        if a_val & b_val:
            hit = True
            break
        take = a_pend if a_pend < b_pend else b_pend
        a_pend -= take
        b_pend -= take
        remaining -= take
    if scratch is not None:
        scratch.word_ops += ia + ib
        scratch.and_ops += 1
    return hit


def wah_and_count(
    a: Sequence[int],
    b: Sequence[int],
    n_groups: int,
    scratch: WahScratch | None = None,
) -> int:
    """Population count of ``a & b`` without materialising the AND.

    Examples
    --------
    >>> a = WahBitmap.from_indices(200, range(0, 200, 2))
    >>> b = WahBitmap.from_indices(200, range(0, 200, 3))
    >>> wah_and_count(a.wah_words(), b.wah_words(), (200 + 30) // 31)
    34
    >>> len([i for i in range(200) if i % 6 == 0])
    34
    """
    if isinstance(a, np.ndarray):
        a = a.tolist()
    if isinstance(b, np.ndarray):
        b = b.tolist()
    ia = ib = 0
    a_pend = b_pend = 0
    a_val = b_val = 0
    remaining = n_groups
    total = 0
    while remaining:
        if not a_pend:
            w = a[ia]
            ia += 1
            if w & _FILL_FLAG:
                a_pend = w & _FILL_LEN_MASK
                a_val = _LITERAL_MASK if w & _FILL_BIT else 0
            else:
                a_pend = 1
                a_val = w
        if not b_pend:
            w = b[ib]
            ib += 1
            if w & _FILL_FLAG:
                b_pend = w & _FILL_LEN_MASK
                b_val = _LITERAL_MASK if w & _FILL_BIT else 0
            else:
                b_pend = 1
                b_val = w
        take = a_pend if a_pend < b_pend else b_pend
        g = a_val & b_val
        if g == _LITERAL_MASK:
            total += GROUP_BITS * take
        elif g:
            total += g.bit_count()
        a_pend -= take
        b_pend -= take
        remaining -= take
    if scratch is not None:
        scratch.word_ops += ia + ib
        scratch.and_ops += 1
    return total


def wah_indices_above(words: Sequence[int], lo: int) -> Iterator[int]:
    """Yield the set-bit indices strictly greater than ``lo``, ascending.

    The compressed-domain partner scan of the bit-scan generation
    variant: zero fills advance the cursor in O(1) whatever their run
    length, and literal groups entirely at or below ``lo`` are skipped
    without a bit scan, so the cost is the compressed size plus the
    yielded population.

    Examples
    --------
    >>> bm = WahBitmap.from_indices(10_000, [3, 800, 801, 9_000])
    >>> list(wah_indices_above(bm.wah_words(), 800))
    [801, 9000]
    """
    if isinstance(words, np.ndarray):
        words = words.tolist()
    base = 0
    floor = lo + 1
    for w in words:
        if w & _FILL_FLAG:
            span = (w & _FILL_LEN_MASK) * GROUP_BITS
            if w & _FILL_BIT:
                start = base if base >= floor else floor
                end = base + span
                if start < end:
                    yield from range(start, end)
            base += span
        else:
            if w and base + GROUP_BITS > floor:
                value = w
                while value:
                    low = value & -value
                    idx = base + low.bit_length() - 1
                    if idx >= floor:
                        yield idx
                    value ^= low
            base += GROUP_BITS


def wah_from_sorted_indices(n: int, indices: Sequence[int]) -> list[int]:
    """Canonically encode ascending set-bit indices as WAH words.

    The compressed-domain tail encoder: builds the word stream directly
    from the indices (cost proportional to the output, not to ``n``),
    producing exactly the words :meth:`WahBitmap.from_indices` would —
    so compressed-domain children and encoder-built children are
    byte-identical.

    Examples
    --------
    >>> words = wah_from_sorted_indices(10_000, [5, 310, 311])
    >>> sorted(WahBitmap(10_000, words).iter_indices())
    [5, 310, 311]
    >>> words == WahBitmap.from_indices(
    ...     10_000, [5, 310, 311]
    ... ).wah_words().tolist()
    True
    """
    n_groups = (n + GROUP_BITS - 1) // GROUP_BITS
    out: list[int] = []
    run_bit = -1
    run_len = 0
    cur_group = 0
    i = 0
    n_idx = len(indices)
    while i < n_idx:
        gi = indices[i] // GROUP_BITS
        if gi >= n_groups:
            raise BitSetError(
                f"index {indices[i]} outside the {n}-bit universe"
            )
        if gi > cur_group:
            gap = gi - cur_group
            if run_bit == 0:
                run_len += gap
            else:
                if run_len:
                    _flush_run(out, run_bit, run_len)
                run_bit = 0
                run_len = gap
            cur_group = gi
        group = 0
        base = gi * GROUP_BITS
        while i < n_idx and indices[i] < base + GROUP_BITS:
            group |= 1 << (indices[i] - base)
            i += 1
        if group == _LITERAL_MASK:
            if run_bit == 1:
                run_len += 1
            else:
                if run_len:
                    _flush_run(out, run_bit, run_len)
                run_bit = 1
                run_len = 1
        else:
            if run_len:
                _flush_run(out, run_bit, run_len)
                run_bit = -1
                run_len = 0
            out.append(group)
        cur_group = gi + 1
    if cur_group < n_groups:
        gap = n_groups - cur_group
        if run_bit == 0:
            run_len += gap
        else:
            if run_len:
                _flush_run(out, run_bit, run_len)
            run_bit = 0
            run_len = gap
    if run_len:
        _flush_run(out, run_bit, run_len)
    return out
