"""Word-Aligned Hybrid (WAH) compressed bitmaps.

The paper observes that its bitmap memory index is sparse and that "the
sparcity of the bitmap memory index can potentially provide high compression
rate and allow for bitwise operations to be performed on the compressed
data.  The work in this direction is underway."  This module implements that
direction: the classic WAH encoding of Wu, Otoo and Shoshani, in which a
bitmap is split into 31-bit *groups* and encoded as a sequence of 32-bit
words of two kinds:

literal word
    Most-significant bit 0; the low 31 bits hold one group verbatim.

fill word
    Most-significant bit 1; bit 30 holds the fill bit value; the low 30
    bits hold the run length measured in groups.  A fill word of length
    ``L`` represents ``L`` consecutive all-zero or all-one groups.

Logical AND/OR run directly on the compressed form without decompression,
which is what makes the representation attractive for the paper's
common-neighbor intersections on very sparse genome-scale graphs.

The encoder always produces *canonical* output: adjacent fills of the same
bit value are merged and a fill of length 1 is still a fill (one word), so
equal bitmaps encode to equal word sequences.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import BitSetError
from repro.core.bitset import WORD_BITS, BitSet

__all__ = ["WahBitmap", "GROUP_BITS"]

#: Number of payload bits per WAH group/literal.
GROUP_BITS = 31

_LITERAL_MASK = (1 << GROUP_BITS) - 1          # 0x7FFFFFFF
_FILL_FLAG = 1 << 31
_FILL_BIT = 1 << 30
_FILL_LEN_MASK = (1 << 30) - 1


def _is_fill(word: int) -> bool:
    return bool(word & _FILL_FLAG)


def _fill_bit(word: int) -> int:
    return 1 if word & _FILL_BIT else 0


def _fill_len(word: int) -> int:
    return word & _FILL_LEN_MASK


def _make_fill(bit: int, length: int) -> int:
    if not 0 < length <= _FILL_LEN_MASK:
        raise BitSetError(f"fill run length {length} out of range")
    return _FILL_FLAG | (_FILL_BIT if bit else 0) | length


class _GroupReader:
    """Sequential reader yielding one 31-bit group per ``next_group`` call."""

    __slots__ = ("words", "pos", "pending_fill", "pending_bit")

    def __init__(self, words: list[int]):
        self.words = words
        self.pos = 0
        self.pending_fill = 0
        self.pending_bit = 0

    def next_group(self) -> int:
        if self.pending_fill:
            self.pending_fill -= 1
            return _LITERAL_MASK if self.pending_bit else 0
        word = self.words[self.pos]
        self.pos += 1
        if _is_fill(word):
            self.pending_bit = _fill_bit(word)
            self.pending_fill = _fill_len(word) - 1
            return _LITERAL_MASK if self.pending_bit else 0
        return word


class _Builder:
    """Accumulates groups into canonical WAH words."""

    __slots__ = ("out", "run_bit", "run_len")

    def __init__(self) -> None:
        self.out: list[int] = []
        self.run_bit = -1
        self.run_len = 0

    def _flush_run(self) -> None:
        if self.run_len:
            self.out.append(_make_fill(self.run_bit, self.run_len))
            self.run_len = 0
            self.run_bit = -1

    def add_group(self, group: int) -> None:
        if group == 0 or group == _LITERAL_MASK:
            bit = 1 if group else 0
            if self.run_bit == bit and self.run_len < _FILL_LEN_MASK:
                self.run_len += 1
            else:
                self._flush_run()
                self.run_bit = bit
                self.run_len = 1
        else:
            self._flush_run()
            self.out.append(group)

    def finish(self) -> list[int]:
        self._flush_run()
        return self.out


class WahBitmap:
    """A WAH-compressed bitmap over a fixed universe of ``n`` bits.

    Construct via :meth:`from_bitset`, :meth:`from_indices`, or the boolean
    operators on existing instances.  Instances are immutable.

    Examples
    --------
    >>> a = WahBitmap.from_indices(100, [0, 50, 99])
    >>> b = WahBitmap.from_indices(100, [50, 60])
    >>> sorted((a & b).to_bitset())
    [50]
    >>> a.count()
    3
    """

    __slots__ = ("n", "_words", "_n_groups")

    def __init__(self, n: int, words: list[int]):
        if n < 0:
            raise BitSetError(f"universe size must be non-negative, got {n}")
        self.n = n
        self._n_groups = (n + GROUP_BITS - 1) // GROUP_BITS
        # Validate group coverage up front: a truncated or padded stream
        # must fail here with a precise message, not surface later as a
        # confusing group-count error from count() or a wrong __eq__.
        covered = 0
        for i, word in enumerate(words):
            if not 0 <= word < (1 << 32):
                raise BitSetError(
                    f"WAH word {i} out of 32-bit range: {word!r}"
                )
            if _is_fill(word):
                length = _fill_len(word)
                if length == 0:
                    raise BitSetError(
                        f"WAH word {i} is a fill of zero run length"
                    )
                covered += length
            else:
                covered += 1
        if covered != self._n_groups:
            raise BitSetError(
                f"WAH stream covers {covered} group(s), expected "
                f"{self._n_groups} for a {n}-bit universe"
            )
        # The final group's padding bits must be zero, or count(),
        # iteration, and __eq__ all go wrong (e.g. iter_indices would
        # yield vertex indices >= n).
        rem = n % GROUP_BITS
        if rem and words:
            last = words[-1]
            padding_set = (
                _fill_bit(last)
                if _is_fill(last)
                else last >> rem
            )
            if padding_set:
                raise BitSetError(
                    f"WAH stream sets padding bits beyond the "
                    f"{n}-bit universe in its final group"
                )
        self._words = words

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bitset(cls, bs: BitSet) -> "WahBitmap":
        """Compress a :class:`BitSet`."""
        n = bs.n
        n_groups = (n + GROUP_BITS - 1) // GROUP_BITS
        if n_groups == 0:
            return cls(n, [])
        # Expand to single bits once, then pack 31 at a time.  This is an
        # O(n) encode; fine because encoding happens off the hot path.
        bits = np.unpackbits(bs.words.view(np.uint8), bitorder="little")[:n]
        padded = np.zeros(n_groups * GROUP_BITS, dtype=np.uint8)
        padded[:n] = bits
        groups = padded.reshape(n_groups, GROUP_BITS)
        weights = (1 << np.arange(GROUP_BITS, dtype=np.int64))
        vals = (groups.astype(np.int64) * weights).sum(axis=1)
        builder = _Builder()
        for v in vals.tolist():
            builder.add_group(int(v))
        return cls(n, builder.finish())

    @classmethod
    def from_indices(cls, n: int, indices: Iterable[int]) -> "WahBitmap":
        """Compress the set containing exactly ``indices``."""
        return cls.from_bitset(BitSet.from_indices(n, indices))

    @classmethod
    def from_words(
        cls, words: np.ndarray, n: int | None = None
    ) -> "WahBitmap":
        """Compress a raw ``uint64`` bit-string word array.

        ``words`` is the :class:`~repro.core.bitset.BitSet` layout used
        by the enumeration hot loops (``CliqueSubList.cn_words``).  When
        ``n`` is omitted the full ``64 * len(words)``-bit universe is
        used, which round-trips exactly through :meth:`to_words` for any
        word array whose tail invariant holds.
        """
        arr = np.ascontiguousarray(words, dtype=np.uint64)
        if n is None:
            n = WORD_BITS * int(arr.size)
        return cls.from_bitset(BitSet(n, arr))

    @classmethod
    def zeros(cls, n: int) -> "WahBitmap":
        """All-zero bitmap."""
        return cls.from_bitset(BitSet.zeros(n))

    # -- decompression -----------------------------------------------------

    def to_bitset(self) -> BitSet:
        """Decompress to a :class:`BitSet`."""
        if self._n_groups == 0:
            return BitSet.zeros(self.n)
        reader = _GroupReader(self._words)
        vals = np.fromiter(
            (reader.next_group() for _ in range(self._n_groups)),
            dtype=np.int64,
            count=self._n_groups,
        )
        shifts = np.arange(GROUP_BITS, dtype=np.int64)
        bits = ((vals[:, None] >> shifts) & 1).astype(np.uint8)
        flat = bits.reshape(-1)[: self.n]
        out = BitSet.zeros(self.n)
        idx = np.flatnonzero(flat)
        if idx.size:
            out.words[:] = BitSet.from_indices(self.n, idx).words
        return out

    def to_words(self) -> np.ndarray:
        """Decompress to raw ``uint64`` bit-string words.

        Inverse of :meth:`from_words`: the returned array is the
        :class:`~repro.core.bitset.BitSet` word layout the enumeration
        hot loops operate on.
        """
        return self.to_bitset().words

    def iter_indices(self) -> Iterator[int]:
        """Yield the set-bit indices, ascending, without decompressing.

        Zero fills advance the cursor in O(1) whatever their run
        length; only literal words and one-fills cost time, so
        iteration is proportional to the *compressed* size plus the
        population count — the op the paper's "bitwise operations ...
        on the compressed data" remark asks for.
        """
        base = 0
        for word in self._words:
            if _is_fill(word):
                span = _fill_len(word) * GROUP_BITS
                if _fill_bit(word):
                    yield from range(base, min(base + span, self.n))
                base += span
            else:
                value = int(word)
                while value:
                    low = value & -value
                    yield base + low.bit_length() - 1
                    value ^= low
                base += GROUP_BITS

    def __iter__(self) -> Iterator[int]:
        return self.iter_indices()

    # -- compressed-domain operations ---------------------------------------

    def _check(self, other: "WahBitmap") -> None:
        if not isinstance(other, WahBitmap):
            raise TypeError(f"expected WahBitmap, got {type(other).__name__}")
        if other.n != self.n:
            raise BitSetError(f"universe mismatch: {self.n} vs {other.n}")

    def _binary(self, other: "WahBitmap", op) -> "WahBitmap":
        """Group-synchronous merge.

        Runs of fills are consumed in bulk when both operands are mid-fill,
        so the cost is proportional to the *compressed* sizes, not ``n``.
        """
        self._check(other)
        ra, rb = _GroupReader(self._words), _GroupReader(other._words)
        builder = _Builder()
        remaining = self._n_groups
        while remaining:
            ga = ra.next_group()
            gb = rb.next_group()
            # Bulk-skip: while both readers sit inside fills, the op result
            # is constant; emit it for the overlapping run length.
            bulk = min(ra.pending_fill, rb.pending_fill, remaining - 1)
            g = op(ga, gb) & _LITERAL_MASK
            builder.add_group(g)
            if bulk > 0 and (ga in (0, _LITERAL_MASK)) and (
                gb in (0, _LITERAL_MASK)
            ):
                for _ in range(bulk):
                    builder.add_group(g)
                ra.pending_fill -= bulk
                rb.pending_fill -= bulk
                remaining -= bulk
            remaining -= 1
        return WahBitmap(self.n, builder.finish())

    def __and__(self, other: "WahBitmap") -> "WahBitmap":
        return self._binary(other, lambda a, b: a & b)

    def __or__(self, other: "WahBitmap") -> "WahBitmap":
        return self._binary(other, lambda a, b: a | b)

    def __xor__(self, other: "WahBitmap") -> "WahBitmap":
        return self._binary(other, lambda a, b: a ^ b)

    def andnot(self, other: "WahBitmap") -> "WahBitmap":
        """Compressed-domain ``self & ~other``."""
        return self._binary(other, lambda a, b: a & ~b)

    def intersect_any(self, other: "WahBitmap") -> bool:
        """``(self & other).any()`` without materialising the AND.

        The paper's ``BitOneExists`` maximality test on compressed
        operands: the merged scan stops at the first overlapping group
        and bulk-skips aligned fill runs, so a hit costs only the
        compressed prefix before the overlap.
        """
        self._check(other)
        ra, rb = _GroupReader(self._words), _GroupReader(other._words)
        remaining = self._n_groups
        while remaining:
            ga = ra.next_group()
            gb = rb.next_group()
            if ga & gb:
                return True
            # both mid-fill with a zero AND: at least one side is a
            # zero fill, so the AND stays zero for the whole overlap
            bulk = min(ra.pending_fill, rb.pending_fill, remaining - 1)
            if bulk > 0:
                ra.pending_fill -= bulk
                rb.pending_fill -= bulk
                remaining -= bulk
            remaining -= 1
        return False

    def any(self) -> bool:
        """True when any bit is set, without decompression."""
        for w in self._words:
            if _is_fill(w):
                if _fill_bit(w):
                    return True
            elif w:
                return True
        return False

    def count(self) -> int:
        """Population count, computed on the compressed form."""
        total = 0
        for w in self._words:
            if _is_fill(w):
                if _fill_bit(w):
                    total += _fill_len(w) * GROUP_BITS
            else:
                total += int(w).bit_count()
        # group coverage and zero padding are validated at
        # construction, so no tail correction is needed here
        return total

    # -- storage metrics ----------------------------------------------------

    def compressed_words(self) -> int:
        """Number of 32-bit words in the compressed encoding."""
        return len(self._words)

    def nbytes(self) -> int:
        """Bytes of compressed payload."""
        return 4 * len(self._words)

    def compression_ratio(self) -> float:
        """Uncompressed bitmap bytes divided by compressed bytes.

        Ratios above 1 mean the compression helps; very sparse or very
        dense bitmaps compress best.  Returns ``inf`` for an empty stream
        over a non-empty universe (cannot happen for canonical encodings)
        and 1.0 for the empty universe.
        """
        raw = 4 * self._n_groups
        if raw == 0:
            return 1.0
        if not self._words:
            return float("inf")
        return raw / self.nbytes()

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitmap):
            return NotImplemented
        return self.n == other.n and self._words == other._words

    def __hash__(self) -> int:
        return hash((self.n, tuple(self._words)))

    def __repr__(self) -> str:
        return (
            f"WahBitmap(n={self.n}, words={len(self._words)}, "
            f"count={self.count()})"
        )
