"""The k-clique sub-list: the Clique Enumerator's working data structure.

Section 2.3 of the paper: "the k-cliques generated from a same (k-1)-clique
naturally form a sub-list consisting of the (k-1)-clique with a list of
common neighbors of this (k-1)-clique.  [...] to avoid the duplication of
cliques, only the common neighbors whose indices [are] higher than the
index of the (k-1)-th vertex need to be kept" and "the algorithm keeps the
common neighbors of the shared (k-1)-clique for each k-clique sub-list
instead of each k-clique, which avoids large memory requirement as well as
repetitive bit operations."

A :class:`CliqueSubList` therefore stores

* ``prefix`` — the shared (k-1)-clique, an ascending vertex tuple stored
  once for the whole sub-list,
* ``tails`` — the k-th vertices, ascending, all greater than
  ``prefix[-1]``; entry ``t`` represents the k-clique ``prefix + (t,)``,
* ``cn_words`` — the common-neighbor bit string of *the prefix* (not of
  each member clique), so a member's common neighbors cost one AND.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bitset import WORD_BITS, words_to_indices
from repro.core.compressed import WahBitmap
from repro.core.wah_kernels import (
    batch_decode_indices,
    batch_decode_words,
    batch_encode_indices,
    batch_encode_words,
    concat_streams,
)

__all__ = ["CliqueSubList", "CompressedSubList", "CompressedLevelBatch"]


@dataclass(frozen=True)
class CliqueSubList:
    """One sub-list of candidate k-cliques sharing a (k-1)-clique prefix.

    Attributes
    ----------
    prefix:
        The shared (k-1)-clique, ascending vertex indices.
    tails:
        ``int64`` array of k-th vertices, ascending, each greater than
        ``prefix[-1]``.  ``len(tails)`` is the number of candidate
        k-cliques in the sub-list.
    cn_words:
        ``uint64`` bit-string words of the common neighbors of ``prefix``.
    """

    prefix: tuple[int, ...]
    tails: np.ndarray
    cn_words: np.ndarray

    @property
    def k(self) -> int:
        """Size of the cliques this sub-list holds."""
        return len(self.prefix) + 1

    def __len__(self) -> int:
        return int(self.tails.size)

    def cliques(self) -> list[tuple[int, ...]]:
        """Materialise the member k-cliques (for tests and debugging)."""
        return [self.prefix + (int(t),) for t in self.tails.tolist()]

    def nbytes(self, index_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Measured storage: prefix + tails + bit string + list pointer.

        Mirrors the paper's space accounting
        ``M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(pointer)``
        contribution of a single sub-list with ``c = index_bytes``.
        """
        return (
            self.tails.size * index_bytes
            + len(self.prefix) * index_bytes
            + self.cn_words.nbytes
            + pointer_bytes
        )

    def work_estimate(self) -> int:
        """Units of generation work this sub-list will cost.

        Dominated by the pairwise adjacency checks among tails —
        ``O(|tails|^2)`` — plus one length-n AND per tail.  The load
        balancer (:mod:`repro.parallel.load_balancer`) divides sub-lists
        across threads by this estimate.
        """
        t = int(self.tails.size)
        return t * (t - 1) // 2 + t * max(1, self.cn_words.size // 8)

    def __repr__(self) -> str:
        return (
            f"CliqueSubList(prefix={self.prefix}, "
            f"tails={self.tails.tolist()[:8]}"
            f"{'...' if self.tails.size > 8 else ''}, k={self.k})"
        )


@dataclass(frozen=True)
class CompressedSubList:
    """A :class:`CliqueSubList` with both arrays WAH-compressed.

    The paper closes by observing that the sparsity of the bitmap memory
    index "can potentially provide high compression rate"; this is the
    candidate representation that realises it.  Tails are ascending and
    unique, so they are losslessly held as a bitmap over the same
    vertex universe as the common-neighbor string — on sparse
    genome-scale graphs both compress to a handful of words.

    Attributes
    ----------
    prefix:
        The shared (k-1)-clique, stored uncompressed (it is k-1 small
        integers).
    n_tails:
        ``len(tails)``, cached so accounting never pays a
        compressed-domain :meth:`~repro.core.compressed.WahBitmap.count`.
    tails:
        Compressed bitmap of the k-th vertices.
    cn:
        Compressed common-neighbor string of ``prefix``.
    """

    prefix: tuple[int, ...]
    n_tails: int
    tails: WahBitmap
    cn: WahBitmap

    @classmethod
    def from_sublist(cls, sl: CliqueSubList) -> "CompressedSubList":
        """Compress one sub-list (universe = the cn word span)."""
        n_bits = WORD_BITS * int(sl.cn_words.size)
        return cls(
            prefix=sl.prefix,
            n_tails=int(sl.tails.size),
            tails=WahBitmap.from_indices(n_bits, sl.tails),
            cn=WahBitmap.from_words(sl.cn_words),
        )

    def to_sublist(self) -> CliqueSubList:
        """Decompress back to the hot-loop representation.

        Exact inverse of :meth:`from_sublist`: tails come back as the
        ascending ``int64`` array, ``cn_words`` as the ``uint64``
        bit-string words the generation step ANDs against adjacency.
        """
        return CliqueSubList(
            prefix=self.prefix,
            tails=words_to_indices(self.tails.to_words(), self.tails.n),
            cn_words=self.cn.to_words(),
        )

    def __len__(self) -> int:
        return self.n_tails

    def nbytes(self, index_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Measured compressed storage, comparable to
        :meth:`CliqueSubList.nbytes` (prefix + both compressed payloads
        + the list pointer)."""
        return (
            len(self.prefix) * index_bytes
            + self.tails.nbytes()
            + self.cn.nbytes()
            + pointer_bytes
        )

    def uncompressed_nbytes(
        self, index_bytes: int = 8, pointer_bytes: int = 8
    ) -> int:
        """What :meth:`CliqueSubList.nbytes` would charge for this
        sub-list, computed without decompressing anything.

        The tails array would be ``n_tails`` indices and the
        common-neighbor string ``cn.n / 8`` bytes of raw ``uint64``
        words (the universe is always a whole number of 64-bit words,
        see :meth:`from_sublist`).  This is the per-entry baseline the
        compressed paths report as *decompressed bytes avoided*.
        """
        return (
            self.n_tails * index_bytes
            + len(self.prefix) * index_bytes
            + self.cn.n // 8
            + pointer_bytes
        )

    def work_estimate(self) -> int:
        """Generation-work units, identical to
        :meth:`CliqueSubList.work_estimate` for the same content.

        Computed from the cached tail count and the universe size so the
        parallel load balancer partitions compressed and uncompressed
        levels identically (``cn.n // 64`` is the raw word count the
        uncompressed estimate reads from ``cn_words.size``).
        """
        t = self.n_tails
        return t * (t - 1) // 2 + t * max(1, (self.cn.n // WORD_BITS) // 8)

    def __repr__(self) -> str:
        return (
            f"CompressedSubList(prefix={self.prefix}, "
            f"n_tails={self.n_tails}, "
            f"words={self.tails.compressed_words()}"
            f"+{self.cn.compressed_words()})"
        )


@dataclass(frozen=True)
class CompressedLevelBatch:
    """A whole level chunk of compressed sub-lists, structure-of-arrays.

    The batch counterpart of a ``list[CompressedSubList]``: instead of
    one Python object (and two :class:`~repro.core.compressed.WahBitmap`
    wrappers) per sub-list, the level chunk holds **two flat ``uint32``
    word arrays** — every tails stream concatenated, every CN stream
    concatenated — plus ``int64`` offset arrays, the layout the
    :mod:`repro.core.wah_kernels` batch kernels consume directly.  All
    streams share one bit universe (the graph's 64-bit-padded vertex
    span), so the batch AND / decode / encode kernels can treat the
    whole chunk as run-boundary arithmetic on two arrays.

    Attributes
    ----------
    prefixes:
        The shared (k-1)-clique of each sub-list, in level order.
    universe:
        Bit universe of every tails/CN stream (``64 * ceil(n / 64)``).
    n_tails:
        ``int64`` per-entry tail counts (cached like
        :attr:`CompressedSubList.n_tails`).
    tails_words / tails_offsets:
        SoA batch of the compressed tails bitmaps; stream ``i`` is
        ``tails_words[tails_offsets[i]:tails_offsets[i + 1]]``.
    cn_words / cn_offsets:
        SoA batch of the compressed common-neighbor strings.
    tails_idx:
        Optional decoded-tails cache ``(flat_idx, idx_offsets)`` —
        exactly what :func:`~repro.core.wah_kernels.
        batch_decode_indices` would return for the tails batch.
        Constructors that already hold the indices (the batch encoder,
        the numpy generation step) attach them so consumers never pay
        the round-trip decode; purely derived data, excluded from
        comparison and repr.
    """

    prefixes: tuple[tuple[int, ...], ...]
    universe: int
    n_tails: np.ndarray
    tails_words: np.ndarray
    tails_offsets: np.ndarray
    cn_words: np.ndarray
    cn_offsets: np.ndarray
    tails_idx: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, compare=False, repr=False
    )

    def decoded_tails(self) -> tuple[np.ndarray, np.ndarray]:
        """``(flat_idx, idx_offsets)`` of every tails stream, cached."""
        if self.tails_idx is not None:
            return self.tails_idx
        return batch_decode_indices(
            self.tails_words, self.tails_offsets,
            self.n_groups, self.universe,
        )

    def __len__(self) -> int:
        return len(self.prefixes)

    @property
    def n_groups(self) -> int:
        """Shared WAH group count of every stream in the batch."""
        return (self.universe + 30) // 31

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_sublists(
        cls, sublists: list[CliqueSubList]
    ) -> "CompressedLevelBatch":
        """Batch-compress raw sub-lists (one vectorised encode each way).

        Produces byte-identical streams to
        :meth:`CompressedSubList.from_sublist` entry by entry — the
        canonicalisation lives in one shared kernel — so accounting and
        storage measurements are independent of which path compressed a
        chunk.
        """
        if not sublists:
            return cls.empty(0)
        universe = WORD_BITS * int(sublists[0].cn_words.size)
        cn_words, cn_offsets = batch_encode_words(
            np.stack([sl.cn_words for sl in sublists]), universe
        )
        counts = np.fromiter(
            (sl.tails.size for sl in sublists),
            dtype=np.int64,
            count=len(sublists),
        )
        idx_offsets = np.zeros(len(sublists) + 1, dtype=np.int64)
        np.cumsum(counts, out=idx_offsets[1:])
        flat_idx = (
            np.concatenate([sl.tails for sl in sublists])
            if idx_offsets[-1]
            else np.zeros(0, dtype=np.int64)
        )
        tails_words, tails_offsets = batch_encode_indices(
            flat_idx, idx_offsets, universe
        )
        return cls(
            prefixes=tuple(sl.prefix for sl in sublists),
            universe=universe,
            n_tails=counts,
            tails_words=tails_words,
            tails_offsets=tails_offsets,
            cn_words=cn_words,
            cn_offsets=cn_offsets,
            tails_idx=(flat_idx, idx_offsets),
        )

    @classmethod
    def from_entries(
        cls, entries: list[CompressedSubList]
    ) -> "CompressedLevelBatch":
        """Assemble a batch from per-entry compressed sub-lists."""
        if not entries:
            return cls.empty(0)
        universe = entries[0].cn.n
        tails_words, tails_offsets = concat_streams(
            [e.tails.wah_words() for e in entries]
        )
        cn_words, cn_offsets = concat_streams(
            [e.cn.wah_words() for e in entries]
        )
        return cls(
            prefixes=tuple(e.prefix for e in entries),
            universe=universe,
            n_tails=np.fromiter(
                (e.n_tails for e in entries),
                dtype=np.int64,
                count=len(entries),
            ),
            tails_words=tails_words,
            tails_offsets=tails_offsets,
            cn_words=cn_words,
            cn_offsets=cn_offsets,
        )

    @classmethod
    def concat(
        cls, batches: "list[CompressedLevelBatch]"
    ) -> "CompressedLevelBatch":
        """Concatenate batches over the same universe, in order.

        Pure array concatenation — streams are copied verbatim, never
        re-encoded — so the result is byte-for-byte the batch that would
        have been built from the combined entries.  The decoded-tails
        cache survives when every input carries one.
        """
        if len(batches) == 1:
            return batches[0]
        if not batches:
            return cls.empty(0)

        def _cat(words, offsets):
            lens = np.concatenate([np.diff(o) for o in offsets])
            out = np.zeros(lens.size + 1, dtype=np.int64)
            np.cumsum(lens, out=out[1:])
            return np.concatenate(words), out

        tw, to = _cat(
            [b.tails_words for b in batches],
            [b.tails_offsets for b in batches],
        )
        cw, co = _cat(
            [b.cn_words for b in batches],
            [b.cn_offsets for b in batches],
        )
        idx = None
        if all(b.tails_idx is not None for b in batches):
            flat, offs = _cat(
                [b.tails_idx[0] for b in batches],
                [b.tails_idx[1] for b in batches],
            )
            idx = (flat, offs)
        return cls(
            prefixes=tuple(
                p for b in batches for p in b.prefixes
            ),
            universe=batches[0].universe,
            n_tails=np.concatenate([b.n_tails for b in batches]),
            tails_words=tw,
            tails_offsets=to,
            cn_words=cw,
            cn_offsets=co,
            tails_idx=idx,
        )

    @classmethod
    def empty(cls, universe: int) -> "CompressedLevelBatch":
        """The zero-entry batch over ``universe`` bits."""
        return cls(
            prefixes=(),
            universe=universe,
            n_tails=np.zeros(0, dtype=np.int64),
            tails_words=np.zeros(0, dtype=np.uint32),
            tails_offsets=np.zeros(1, dtype=np.int64),
            cn_words=np.zeros(0, dtype=np.uint32),
            cn_offsets=np.zeros(1, dtype=np.int64),
        )

    # -- conversions -------------------------------------------------------

    def to_entries(self) -> list[CompressedSubList]:
        """Per-entry view: ``CompressedSubList`` objects sharing the
        flat word arrays (zero word copies — the bitmap wrappers are
        read-only views into the batch)."""
        universe = self.universe
        to = self.tails_offsets
        co = self.cn_offsets
        tw = self.tails_words
        cw = self.cn_words
        tw.setflags(write=False)
        cw.setflags(write=False)
        return [
            CompressedSubList(
                prefix=self.prefixes[i],
                n_tails=int(self.n_tails[i]),
                tails=WahBitmap._trusted(
                    universe, tw[to[i]:to[i + 1]]
                ),
                cn=WahBitmap._trusted(universe, cw[co[i]:co[i + 1]]),
            )
            for i in range(len(self.prefixes))
        ]

    def to_sublists(self) -> list[CliqueSubList]:
        """Batch-decompress to the raw hot-loop representation.

        Entry-by-entry equal to :meth:`CompressedSubList.to_sublist`,
        via two vectorised decodes instead of ``2 N`` group walks.
        """
        if not self.prefixes:
            return []
        mat = batch_decode_words(
            self.cn_words, self.cn_offsets, self.n_groups, self.universe
        )
        flat_idx, idx_offsets = self.decoded_tails()
        return [
            CliqueSubList(
                prefix=self.prefixes[i],
                tails=flat_idx[idx_offsets[i]:idx_offsets[i + 1]],
                cn_words=mat[i],
            )
            for i in range(len(self.prefixes))
        ]

    # -- accounting --------------------------------------------------------

    def nbytes(self, index_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Sum of the per-entry :meth:`CompressedSubList.nbytes`."""
        prefix_len = sum(len(p) for p in self.prefixes)
        return (
            prefix_len * index_bytes
            + 4 * int(self.tails_words.size + self.cn_words.size)
            + pointer_bytes * len(self.prefixes)
        )

    def uncompressed_nbytes(
        self, index_bytes: int = 8, pointer_bytes: int = 8
    ) -> int:
        """Sum of the per-entry
        :meth:`CompressedSubList.uncompressed_nbytes`."""
        prefix_len = sum(len(p) for p in self.prefixes)
        return (
            int(self.n_tails.sum()) * index_bytes
            + prefix_len * index_bytes
            + (self.universe // 8 + pointer_bytes) * len(self.prefixes)
        )

    def __repr__(self) -> str:
        return (
            f"CompressedLevelBatch(entries={len(self.prefixes)}, "
            f"universe={self.universe}, "
            f"words={int(self.tails_words.size + self.cn_words.size)})"
        )
