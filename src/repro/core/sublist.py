"""The k-clique sub-list: the Clique Enumerator's working data structure.

Section 2.3 of the paper: "the k-cliques generated from a same (k-1)-clique
naturally form a sub-list consisting of the (k-1)-clique with a list of
common neighbors of this (k-1)-clique.  [...] to avoid the duplication of
cliques, only the common neighbors whose indices [are] higher than the
index of the (k-1)-th vertex need to be kept" and "the algorithm keeps the
common neighbors of the shared (k-1)-clique for each k-clique sub-list
instead of each k-clique, which avoids large memory requirement as well as
repetitive bit operations."

A :class:`CliqueSubList` therefore stores

* ``prefix`` — the shared (k-1)-clique, an ascending vertex tuple stored
  once for the whole sub-list,
* ``tails`` — the k-th vertices, ascending, all greater than
  ``prefix[-1]``; entry ``t`` represents the k-clique ``prefix + (t,)``,
* ``cn_words`` — the common-neighbor bit string of *the prefix* (not of
  each member clique), so a member's common neighbors cost one AND.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CliqueSubList"]


@dataclass(frozen=True)
class CliqueSubList:
    """One sub-list of candidate k-cliques sharing a (k-1)-clique prefix.

    Attributes
    ----------
    prefix:
        The shared (k-1)-clique, ascending vertex indices.
    tails:
        ``int64`` array of k-th vertices, ascending, each greater than
        ``prefix[-1]``.  ``len(tails)`` is the number of candidate
        k-cliques in the sub-list.
    cn_words:
        ``uint64`` bit-string words of the common neighbors of ``prefix``.
    """

    prefix: tuple[int, ...]
    tails: np.ndarray
    cn_words: np.ndarray

    @property
    def k(self) -> int:
        """Size of the cliques this sub-list holds."""
        return len(self.prefix) + 1

    def __len__(self) -> int:
        return int(self.tails.size)

    def cliques(self) -> list[tuple[int, ...]]:
        """Materialise the member k-cliques (for tests and debugging)."""
        return [self.prefix + (int(t),) for t in self.tails.tolist()]

    def nbytes(self, index_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Measured storage: prefix + tails + bit string + list pointer.

        Mirrors the paper's space accounting
        ``M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(pointer)``
        contribution of a single sub-list with ``c = index_bytes``.
        """
        return (
            self.tails.size * index_bytes
            + len(self.prefix) * index_bytes
            + self.cn_words.nbytes
            + pointer_bytes
        )

    def work_estimate(self) -> int:
        """Units of generation work this sub-list will cost.

        Dominated by the pairwise adjacency checks among tails —
        ``O(|tails|^2)`` — plus one length-n AND per tail.  The load
        balancer (:mod:`repro.parallel.load_balancer`) divides sub-lists
        across threads by this estimate.
        """
        t = int(self.tails.size)
        return t * (t - 1) // 2 + t * max(1, self.cn_words.size // 8)

    def __repr__(self) -> str:
        return (
            f"CliqueSubList(prefix={self.prefix}, "
            f"tails={self.tails.tolist()[:8]}"
            f"{'...' if self.tails.size > 8 else ''}, k={self.k})"
        )
