"""The k-clique sub-list: the Clique Enumerator's working data structure.

Section 2.3 of the paper: "the k-cliques generated from a same (k-1)-clique
naturally form a sub-list consisting of the (k-1)-clique with a list of
common neighbors of this (k-1)-clique.  [...] to avoid the duplication of
cliques, only the common neighbors whose indices [are] higher than the
index of the (k-1)-th vertex need to be kept" and "the algorithm keeps the
common neighbors of the shared (k-1)-clique for each k-clique sub-list
instead of each k-clique, which avoids large memory requirement as well as
repetitive bit operations."

A :class:`CliqueSubList` therefore stores

* ``prefix`` — the shared (k-1)-clique, an ascending vertex tuple stored
  once for the whole sub-list,
* ``tails`` — the k-th vertices, ascending, all greater than
  ``prefix[-1]``; entry ``t`` represents the k-clique ``prefix + (t,)``,
* ``cn_words`` — the common-neighbor bit string of *the prefix* (not of
  each member clique), so a member's common neighbors cost one AND.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitset import WORD_BITS, words_to_indices
from repro.core.compressed import WahBitmap

__all__ = ["CliqueSubList", "CompressedSubList"]


@dataclass(frozen=True)
class CliqueSubList:
    """One sub-list of candidate k-cliques sharing a (k-1)-clique prefix.

    Attributes
    ----------
    prefix:
        The shared (k-1)-clique, ascending vertex indices.
    tails:
        ``int64`` array of k-th vertices, ascending, each greater than
        ``prefix[-1]``.  ``len(tails)`` is the number of candidate
        k-cliques in the sub-list.
    cn_words:
        ``uint64`` bit-string words of the common neighbors of ``prefix``.
    """

    prefix: tuple[int, ...]
    tails: np.ndarray
    cn_words: np.ndarray

    @property
    def k(self) -> int:
        """Size of the cliques this sub-list holds."""
        return len(self.prefix) + 1

    def __len__(self) -> int:
        return int(self.tails.size)

    def cliques(self) -> list[tuple[int, ...]]:
        """Materialise the member k-cliques (for tests and debugging)."""
        return [self.prefix + (int(t),) for t in self.tails.tolist()]

    def nbytes(self, index_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Measured storage: prefix + tails + bit string + list pointer.

        Mirrors the paper's space accounting
        ``M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(pointer)``
        contribution of a single sub-list with ``c = index_bytes``.
        """
        return (
            self.tails.size * index_bytes
            + len(self.prefix) * index_bytes
            + self.cn_words.nbytes
            + pointer_bytes
        )

    def work_estimate(self) -> int:
        """Units of generation work this sub-list will cost.

        Dominated by the pairwise adjacency checks among tails —
        ``O(|tails|^2)`` — plus one length-n AND per tail.  The load
        balancer (:mod:`repro.parallel.load_balancer`) divides sub-lists
        across threads by this estimate.
        """
        t = int(self.tails.size)
        return t * (t - 1) // 2 + t * max(1, self.cn_words.size // 8)

    def __repr__(self) -> str:
        return (
            f"CliqueSubList(prefix={self.prefix}, "
            f"tails={self.tails.tolist()[:8]}"
            f"{'...' if self.tails.size > 8 else ''}, k={self.k})"
        )


@dataclass(frozen=True)
class CompressedSubList:
    """A :class:`CliqueSubList` with both arrays WAH-compressed.

    The paper closes by observing that the sparsity of the bitmap memory
    index "can potentially provide high compression rate"; this is the
    candidate representation that realises it.  Tails are ascending and
    unique, so they are losslessly held as a bitmap over the same
    vertex universe as the common-neighbor string — on sparse
    genome-scale graphs both compress to a handful of words.

    Attributes
    ----------
    prefix:
        The shared (k-1)-clique, stored uncompressed (it is k-1 small
        integers).
    n_tails:
        ``len(tails)``, cached so accounting never pays a
        compressed-domain :meth:`~repro.core.compressed.WahBitmap.count`.
    tails:
        Compressed bitmap of the k-th vertices.
    cn:
        Compressed common-neighbor string of ``prefix``.
    """

    prefix: tuple[int, ...]
    n_tails: int
    tails: WahBitmap
    cn: WahBitmap

    @classmethod
    def from_sublist(cls, sl: CliqueSubList) -> "CompressedSubList":
        """Compress one sub-list (universe = the cn word span)."""
        n_bits = WORD_BITS * int(sl.cn_words.size)
        return cls(
            prefix=sl.prefix,
            n_tails=int(sl.tails.size),
            tails=WahBitmap.from_indices(n_bits, sl.tails),
            cn=WahBitmap.from_words(sl.cn_words),
        )

    def to_sublist(self) -> CliqueSubList:
        """Decompress back to the hot-loop representation.

        Exact inverse of :meth:`from_sublist`: tails come back as the
        ascending ``int64`` array, ``cn_words`` as the ``uint64``
        bit-string words the generation step ANDs against adjacency.
        """
        return CliqueSubList(
            prefix=self.prefix,
            tails=words_to_indices(self.tails.to_words(), self.tails.n),
            cn_words=self.cn.to_words(),
        )

    def __len__(self) -> int:
        return self.n_tails

    def nbytes(self, index_bytes: int = 8, pointer_bytes: int = 8) -> int:
        """Measured compressed storage, comparable to
        :meth:`CliqueSubList.nbytes` (prefix + both compressed payloads
        + the list pointer)."""
        return (
            len(self.prefix) * index_bytes
            + self.tails.nbytes()
            + self.cn.nbytes()
            + pointer_bytes
        )

    def uncompressed_nbytes(
        self, index_bytes: int = 8, pointer_bytes: int = 8
    ) -> int:
        """What :meth:`CliqueSubList.nbytes` would charge for this
        sub-list, computed without decompressing anything.

        The tails array would be ``n_tails`` indices and the
        common-neighbor string ``cn.n / 8`` bytes of raw ``uint64``
        words (the universe is always a whole number of 64-bit words,
        see :meth:`from_sublist`).  This is the per-entry baseline the
        compressed paths report as *decompressed bytes avoided*.
        """
        return (
            self.n_tails * index_bytes
            + len(self.prefix) * index_bytes
            + self.cn.n // 8
            + pointer_bytes
        )

    def work_estimate(self) -> int:
        """Generation-work units, identical to
        :meth:`CliqueSubList.work_estimate` for the same content.

        Computed from the cached tail count and the universe size so the
        parallel load balancer partitions compressed and uncompressed
        levels identically (``cn.n // 64`` is the raw word count the
        uncompressed estimate reads from ``cn_words.size``).
        """
        t = self.n_tails
        return t * (t - 1) // 2 + t * max(1, (self.cn.n // WORD_BITS) // 8)

    def __repr__(self) -> str:
        return (
            f"CompressedSubList(prefix={self.prefix}, "
            f"n_tails={self.n_tails}, "
            f"words={self.tails.compressed_words()}"
            f"+{self.cn.compressed_words()})"
        )
