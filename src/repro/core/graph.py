"""Undirected graphs stored as bit-adjacency matrices.

The paper's framework keeps the whole graph in memory as an array of
neighbor bit strings: row ``i`` of the adjacency bitmap holds one bit per
vertex, set when ``{i, j}`` is an edge (Figure 2 of the paper).  This makes
the two clique-enumeration primitives — common-neighbor intersection and
maximality testing — single vectorised word operations.

:class:`Graph` is that representation: an ``(n, ceil(n/64))`` ``uint64``
matrix plus a degree vector.  Vertices are the integers ``0 .. n-1``; the
graph is simple (no self loops, no parallel edges) and undirected (the
matrix is kept symmetric by construction).

The raw word matrix is exposed as the ``adj`` attribute for the enumeration
hot loops; everything else should go through the methods.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError
from repro.core import bitset as bs
from repro.core.bitset import BitSet, WORD_BITS

__all__ = ["Graph"]

_ONE = np.uint64(1)


class Graph:
    """A simple undirected graph over vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.

    Attributes
    ----------
    n:
        Number of vertices.
    adj:
        ``uint64`` array of shape ``(n, n_words(n))``; row ``v`` is the
        neighbor bitmap of ``v``.  Treat as read-only outside this class.

    Examples
    --------
    >>> g = Graph(4)
    >>> g.add_edge(0, 1); g.add_edge(1, 2)
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(1).tolist())
    [0, 2]
    """

    __slots__ = ("n", "adj", "_degrees", "_m")

    def __init__(self, n: int):
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self.n = n
        self.adj = np.zeros((n, bs.n_words(n)), dtype=np.uint64)
        self._degrees = np.zeros(n, dtype=np.int64)
        self._m = 0

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges are ignored; self loops raise :class:`GraphError`.
        """
        g = cls(n)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    @classmethod
    def from_adjacency(cls, matrix: np.ndarray) -> "Graph":
        """Build from a square boolean/0-1 adjacency matrix.

        The matrix must be symmetric with a zero diagonal.
        """
        a = np.asarray(matrix)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got {a.shape}")
        a = a.astype(bool)
        if a.diagonal().any():
            raise GraphError("adjacency matrix has non-zero diagonal entries")
        if not np.array_equal(a, a.T):
            raise GraphError("adjacency matrix is not symmetric")
        n = a.shape[0]
        g = cls(n)
        ui, vi = np.nonzero(np.triu(a, k=1))
        for u, v in zip(ui.tolist(), vi.tolist()):
            g.add_edge(u, v)
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Build from a ``networkx`` graph with integer-convertible nodes.

        Nodes are sorted and relabelled to ``0..n-1``; the mapping is
        returned on the graph as plain relabelling is positional.
        """
        nodes = sorted(nxg.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        g = cls(len(nodes))
        for u, v in nxg.edges():
            if u == v:
                continue
            g.add_edge(index[u], index[v])
        return g

    def copy(self) -> "Graph":
        """Deep copy."""
        g = Graph(self.n)
        g.adj[:] = self.adj
        g._degrees[:] = self._degrees
        g._m = self._m
        return g

    # -- mutation ------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise GraphError(f"vertex {v} out of range [0, {self.n})")

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``{u, v}``; no-op when already present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self loop at vertex {u} is not allowed")
        if self.has_edge(u, v):
            return
        self.adj[u, v // WORD_BITS] |= _ONE << np.uint64(v % WORD_BITS)
        self.adj[v, u // WORD_BITS] |= _ONE << np.uint64(u % WORD_BITS)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._m += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}``; raises when absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) not present")
        self.adj[u, v // WORD_BITS] &= ~(_ONE << np.uint64(v % WORD_BITS))
        self.adj[v, u // WORD_BITS] &= ~(_ONE << np.uint64(u % WORD_BITS))
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self._m -= 1

    # -- queries -------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        return bool(
            (self.adj[u, v // WORD_BITS] >> np.uint64(v % WORD_BITS)) & _ONE
        )

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v``."""
        self._check_vertex(v)
        return int(self._degrees[v])

    def degrees(self) -> np.ndarray:
        """Copy of the degree vector."""
        return self._degrees.copy()

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def density(self) -> float:
        """Edge density ``m / C(n, 2)``; zero for ``n < 2``."""
        if self.n < 2:
            return 0.0
        return self._m / (self.n * (self.n - 1) / 2)

    def neighbors(self, v: int) -> np.ndarray:
        """Ascending array of neighbors of ``v``."""
        self._check_vertex(v)
        return bs.words_to_indices(self.adj[v], self.n)

    def neighbor_bitset(self, v: int) -> BitSet:
        """Neighbor set of ``v`` as a :class:`BitSet` (shares storage)."""
        self._check_vertex(v)
        return BitSet(self.n, self.adj[v])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ``(u, v)`` with ``u < v``, in canonical order."""
        for u in range(self.n):
            for v in bs.words_to_indices(self.adj[u], self.n).tolist():
                if v > u:
                    yield (u, v)

    def vertices(self) -> range:
        """The vertex range ``0 .. n-1``."""
        return range(self.n)

    def is_clique(self, vertices: Sequence[int]) -> bool:
        """True when the given vertices are pairwise adjacent and distinct."""
        vs = list(vertices)
        if len(set(vs)) != len(vs):
            return False
        for i, u in enumerate(vs):
            for v in vs[i + 1:]:
                if not self.has_edge(u, v):
                    return False
        return True

    def common_neighbors(self, vertices: Sequence[int]) -> BitSet:
        """Bit string of vertices adjacent to *all* of ``vertices``.

        This is the paper's per-clique common-neighbor index: the bitwise
        AND of the neighbor rows.  Members of ``vertices`` are excluded
        automatically because no vertex is its own neighbor.
        """
        vs = list(vertices)
        if not vs:
            return BitSet.ones(self.n)
        acc = self.adj[vs[0]].copy()
        for v in vs[1:]:
            self._check_vertex(v)
            np.bitwise_and(acc, self.adj[v], out=acc)
        return BitSet(self.n, acc)

    # -- derived graphs -----------------------------------------------------

    def complement(self) -> "Graph":
        """Complement graph (no self loops)."""
        g = Graph(self.n)
        full = BitSet.ones(self.n).words
        g.adj[:] = np.bitwise_and(~self.adj, full)
        # clear the diagonal bits
        for v in range(self.n):
            g.adj[v, v // WORD_BITS] &= ~(_ONE << np.uint64(v % WORD_BITS))
        g._degrees = (
            np.bitwise_count(g.adj).sum(axis=1).astype(np.int64)
        )
        g._m = int(g._degrees.sum()) // 2
        return g

    def subgraph(self, vertices: Sequence[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices`` (relabelled ``0..k-1``).

        Returns ``(graph, mapping)`` where ``mapping[i]`` is the original
        label of the subgraph vertex ``i``.  ``vertices`` must be distinct.
        """
        vs = np.asarray(sorted(vertices), dtype=np.int64)
        if vs.size and (np.unique(vs).size != vs.size):
            raise GraphError("subgraph vertex list contains duplicates")
        for v in vs.tolist():
            self._check_vertex(v)
        index = {int(v): i for i, v in enumerate(vs)}
        g = Graph(len(vs))
        for i, v in enumerate(vs.tolist()):
            for u in self.neighbors(v).tolist():
                j = index.get(u)
                if j is not None and j > i:
                    g.add_edge(i, j)
        return g, vs

    def relabel(self, perm: Sequence[int]) -> "Graph":
        """Relabelled copy: new vertex ``perm[v]`` takes old vertex ``v``.

        ``perm`` must be a permutation of ``0..n-1``.
        """
        p = np.asarray(perm, dtype=np.int64)
        if p.shape != (self.n,) or np.unique(p).size != self.n or (
            self.n and (p.min() != 0 or p.max() != self.n - 1)
        ):
            raise GraphError("perm must be a permutation of 0..n-1")
        g = Graph(self.n)
        for u, v in self.edges():
            g.add_edge(int(p[u]), int(p[v]))
        return g

    def to_networkx(self):
        """Convert to a ``networkx.Graph``."""
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(self.n))
        nxg.add_edges_from(self.edges())
        return nxg

    # -- integrity ---------------------------------------------------------

    def validate(self) -> None:
        """Check internal invariants; raises :class:`GraphError` on breach.

        Verifies symmetry, zero diagonal, degree consistency, and tail-bit
        cleanliness.  Intended for tests and after bulk construction.
        """
        counted = np.bitwise_count(self.adj).sum(axis=1).astype(np.int64)
        if not np.array_equal(counted, self._degrees):
            raise GraphError("degree cache inconsistent with adjacency bits")
        if int(counted.sum()) != 2 * self._m:
            raise GraphError("edge count inconsistent with adjacency bits")
        if self.n:
            mask = bs.tail_mask(self.n)
            if (self.adj[:, -1] & ~mask).any():
                raise GraphError("tail bits beyond n are set")
        for v in range(self.n):
            if v in self.neighbor_bitset(v):
                raise GraphError(f"self loop bit set at {v}")
        for u in range(self.n):
            for v in self.neighbors(u).tolist():
                if not self.has_edge(v, u):
                    raise GraphError(f"asymmetric edge ({u}, {v})")

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self.adj, other.adj))

    def __hash__(self) -> int:
        return hash((self.n, self.adj.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Graph(n={self.n}, m={self._m}, "
            f"density={self.density():.4%})"
        )

    def nbytes(self) -> int:
        """Bytes held by the adjacency bitmap."""
        return self.adj.nbytes
