"""Vectorised numpy kernels over batches of WAH word streams.

:mod:`repro.core.compressed` gives two layers: the validated
:class:`~repro.core.compressed.WahBitmap` wrapper and per-call Python
word-array kernels (:func:`~repro.core.compressed.wah_and_into` and
friends).  Both touch every compressed word from the interpreter, which
is why the committed speed baseline showed the compressed-domain paths
at a multiple of ``incore``.  This module is the third layer: the same
operations expressed as numpy array programs over **many bitmaps at
once**, in a structure-of-arrays (SoA) layout:

``words``
    One flat ``uint32`` array holding the canonical WAH words of every
    stream in the batch, concatenated in stream order.
``offsets``
    ``int64`` array of ``N + 1`` word offsets; stream ``i`` is
    ``words[offsets[i]:offsets[i + 1]]``.

All streams in one batch share the same group count ``n_groups`` (the
universe is fixed per graph), which buys the central trick: the global
group position of every word — its stream index times ``n_groups`` plus
its start inside the stream — is simply the running sum of run lengths
across the flat array.  Fill runs therefore become *run-boundary index
arithmetic* (cumsum / searchsorted / reduceat) instead of per-word
branching, and literal-dense stretches reduce to one aligned
``np.bitwise_and``.

Equivalence contract: every kernel here produces byte-identical
canonical words (and identical predicates / counts) to the Python
kernels in :mod:`repro.core.compressed` for the same operands — the
property ``tests/core/test_wah_kernel_arrays.py`` drives at random and
the engine harness enforces end to end across the
``kernel="python" | "numpy"`` config policy.

The kernels are pure functions of ndarray inputs and release the GIL
inside every numpy op, which is what finally lets the ``threads``
backend scale the compressed domain across cores.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitSetError
from repro.core.bitset import WORD_BITS
from repro.core.compressed import GROUP_BITS

__all__ = [
    "concat_streams",
    "take_streams",
    "batch_and",
    "batch_and_any",
    "batch_and_count",
    "batch_decode_groups",
    "batch_decode_words",
    "batch_decode_indices",
    "batch_indices_above",
    "batch_encode_words",
    "batch_encode_indices",
]

_LITERAL_MASK = np.uint32((1 << GROUP_BITS) - 1)
_FILL_FLAG = np.uint32(1 << 31)
_FILL_BIT = np.uint32(1 << 30)
_FILL_LEN_MASK = np.uint32((1 << 30) - 1)

_EMPTY_U32 = np.zeros(0, dtype=np.uint32)
_EMPTY_I64 = np.zeros(0, dtype=np.int64)

#: 31 group-bit weights, shared by the encode/decode bit transposes.
_GROUP_SHIFTS = np.arange(GROUP_BITS, dtype=np.uint32)
_GROUP_WEIGHTS = (np.uint32(1) << _GROUP_SHIFTS).astype(np.uint32)


def _check_groups(n_groups: int) -> None:
    # one fill word can cover at most 2**30 - 1 groups; batches never
    # chunk runs, so the whole universe must fit in a single fill
    if n_groups > int(_FILL_LEN_MASK):
        raise BitSetError(
            f"universe of {n_groups} groups exceeds the single-fill "
            f"limit {int(_FILL_LEN_MASK)}"
        )


def concat_streams(parts: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-stream word arrays into one SoA ``(words, offsets)``."""
    if not parts:
        return _EMPTY_U32, np.zeros(1, dtype=np.int64)
    lens = np.fromiter(
        (len(p) for p in parts), dtype=np.int64, count=len(parts)
    )
    offsets = np.zeros(len(parts) + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    words = (
        np.concatenate(parts).astype(np.uint32, copy=False)
        if offsets[-1]
        else _EMPTY_U32
    )
    return words, offsets


def take_streams(
    words: np.ndarray, offsets: np.ndarray, ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather streams ``ids`` (with repeats) into a new SoA batch.

    The variable-length gather: stream ``ids[i]`` of the source becomes
    stream ``i`` of the result, so expander stages can assemble operand
    batches (one CN stream per child, one adjacency row per generated
    clique) without a Python-level loop.
    """
    ids = np.asarray(ids, dtype=np.int64)
    lens = offsets[ids + 1] - offsets[ids]
    out_offsets = np.zeros(ids.size + 1, dtype=np.int64)
    np.cumsum(lens, out=out_offsets[1:])
    total = int(out_offsets[-1])
    if total == 0:
        return _EMPTY_U32, out_offsets
    # flat source index: per-element offset base plus position in run
    base = np.repeat(offsets[ids], lens)
    pos = np.arange(total, dtype=np.int64) - np.repeat(
        out_offsets[:-1], lens
    )
    return words[base + pos], out_offsets


def _expand(
    words: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-word ``(vals, lengths, gstart)`` for one SoA batch.

    ``vals`` is each word's group value (fills collapse to all-zero or
    all-one), ``lengths`` its run length in groups, and ``gstart`` its
    *global* starting group — stream index × ``n_groups`` + local start,
    which the shared-universe invariant makes a plain running sum.
    """
    is_fill = (words & _FILL_FLAG) != 0
    lengths = np.where(
        is_fill, (words & _FILL_LEN_MASK).astype(np.int64), 1
    )
    vals = np.where(
        is_fill,
        np.where((words & _FILL_BIT) != 0, _LITERAL_MASK, np.uint32(0)),
        words & _LITERAL_MASK,
    )
    gstart = np.cumsum(lengths) - lengths
    return vals, lengths, gstart


def _encode_runs(
    seg_pair: np.ndarray,
    seg_len: np.ndarray,
    seg_val: np.ndarray,
    n_streams: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical WAH words from value-uniform segments, batch-wide.

    ``seg_*`` describe consecutive group runs in global order: the
    stream each belongs to, its length in groups, and its uniform group
    value.  Emits exactly the words the Python ``_Builder`` would:
    all-zero/all-one runs become fills (merged across adjacent segments
    of the same class within a stream, single groups included), mixed
    values become literals, literals never merge.  This one helper is
    shared by every encoding path — fresh encodes and AND outputs — so
    batch results are byte-identical to the per-call encoder.
    """
    if seg_val.size == 0:
        return _EMPTY_U32, np.zeros(n_streams + 1, dtype=np.int64)
    cls = np.full(seg_val.size, 2, dtype=np.int8)
    cls[seg_val == 0] = 0
    cls[seg_val == _LITERAL_MASK] = 1
    brk = np.empty(seg_val.size, dtype=bool)
    brk[0] = True
    np.not_equal(seg_pair[1:], seg_pair[:-1], out=brk[1:])
    brk[1:] |= cls[1:] != cls[:-1]
    brk[1:] |= cls[1:] == 2
    brk[1:] |= cls[:-1] == 2
    starts = np.flatnonzero(brk)
    run_groups = np.add.reduceat(seg_len, starts)
    run_cls = cls[starts]
    fills = (
        _FILL_FLAG
        | np.where(run_cls == 1, _FILL_BIT, np.uint32(0))
        | run_groups.astype(np.uint32)
    )
    out_words = np.where(run_cls == 2, seg_val[starts], fills)
    counts = np.bincount(seg_pair[starts], minlength=n_streams)
    out_offsets = np.zeros(n_streams + 1, dtype=np.int64)
    np.cumsum(counts, out=out_offsets[1:])
    return out_words.astype(np.uint32, copy=False), out_offsets


def _merged_segments(
    a_words: np.ndarray,
    a_offsets: np.ndarray,
    b_words: np.ndarray,
    b_offsets: np.ndarray,
    n_groups: int,
):
    """Segment both operand batches on their merged run boundaries.

    Returns ``(seg_pair, seg_len, va, vb)``: for every maximal group
    range on which *both* operands are value-uniform, the owning pair,
    its length in groups, and the two operand group values.  This is
    the run-boundary arithmetic replacing the per-word merge loop: the
    boundary set is the sorted union of both operands' word starts, and
    each operand's value on a segment is found by binary search over
    its (globally sorted) start keys.
    """
    n_pairs = a_offsets.size - 1
    va_w, _, ka = _expand(a_words, a_offsets)
    vb_w, _, kb = _expand(b_words, b_offsets)
    # sorted unique boundary union (np.union1d is an order of magnitude
    # slower than a raw sort + dedupe at these sizes)
    sk = np.sort(np.concatenate((ka, kb)))
    keep = np.empty(sk.size, dtype=bool)
    keep[0] = True
    np.not_equal(sk[1:], sk[:-1], out=keep[1:])
    bkeys = sk[keep]
    va = va_w[np.searchsorted(ka, bkeys, side="right") - 1]
    vb = vb_w[np.searchsorted(kb, bkeys, side="right") - 1]
    total = n_pairs * n_groups
    seg_len = np.diff(bkeys, append=total)
    seg_pair = bkeys // n_groups
    return seg_pair, seg_len, va, vb


def batch_and(
    a_words: np.ndarray,
    a_offsets: np.ndarray,
    b_words: np.ndarray,
    b_offsets: np.ndarray,
    n_groups: int,
) -> tuple[np.ndarray, np.ndarray]:
    """``a[i] & b[i]`` for every stream pair, canonical SoA output.

    The batch counterpart of :func:`repro.core.compressed.wah_and_into`:
    operand ``i`` of each batch is ANDed with operand ``i`` of the
    other, and the results come back as one canonical SoA batch —
    byte-identical, stream for stream, to the Python kernel's output.
    """
    n_pairs = a_offsets.size - 1
    if n_pairs == 0 or n_groups == 0:
        return _EMPTY_U32, np.zeros(n_pairs + 1, dtype=np.int64)
    _check_groups(n_groups)
    seg_pair, seg_len, va, vb = _merged_segments(
        a_words, a_offsets, b_words, b_offsets, n_groups
    )
    return _encode_runs(seg_pair, seg_len, va & vb, n_pairs)


def batch_and_any(
    a_words: np.ndarray,
    a_offsets: np.ndarray,
    b_words: np.ndarray,
    b_offsets: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """``BitOneExists(a[i] & b[i])`` for every pair, as a bool array.

    The batch maximality test.  No merged-boundary sort is needed: a
    pair intersects iff some *nonzero* word of ``a`` overlaps nonzero
    content of ``b`` — a literal probes ``b``'s covering word directly,
    a one-fill asks whether ``b`` has any nonzero group inside the
    fill's span, answered by a prefix sum of ``b``'s nonzero run
    lengths.  Two binary searches per nonzero ``a`` word, no per-word
    Python.
    """
    n_pairs = a_offsets.size - 1
    out = np.zeros(n_pairs, dtype=bool)
    if n_pairs == 0 or n_groups == 0:
        return out
    _check_groups(n_groups)
    va, la, ka = _expand(a_words, a_offsets)
    vb, lb, kb = _expand(b_words, b_offsets)
    probe = np.flatnonzero(va != 0)
    if probe.size == 0:
        return out
    nz_b = vb != 0
    nz_cum = np.zeros(kb.size + 1, dtype=np.int64)
    np.cumsum(np.where(nz_b, lb, 0), out=nz_cum[1:])

    def nonzero_before(x: np.ndarray) -> np.ndarray:
        """Nonzero ``b`` groups in ``[0, x)``, global positions."""
        j = np.searchsorted(kb, x, side="right") - 1
        partial = np.where(
            nz_b[j], np.minimum(x - kb[j], lb[j]), 0
        )
        return nz_cum[j] + partial

    s = ka[probe]
    is_fill = la[probe] > 1
    lit_probe = ~is_fill  # literals and length-1 fills: exact value test
    hit = np.zeros(probe.size, dtype=bool)
    j = np.searchsorted(kb, s, side="right") - 1
    hit[lit_probe] = (va[probe][lit_probe] & vb[j][lit_probe]) != 0
    if is_fill.any():
        e = s[is_fill] + la[probe][is_fill]
        hit[is_fill] = nonzero_before(e) > nonzero_before(s[is_fill])
    out[(s[hit] // n_groups)] = True
    return out


def batch_and_count(
    a_words: np.ndarray,
    a_offsets: np.ndarray,
    b_words: np.ndarray,
    b_offsets: np.ndarray,
    n_groups: int,
) -> np.ndarray:
    """``popcount(a[i] & b[i])`` for every pair, as an int64 array."""
    n_pairs = a_offsets.size - 1
    out = np.zeros(n_pairs, dtype=np.int64)
    if n_pairs == 0 or n_groups == 0:
        return out
    _check_groups(n_groups)
    seg_pair, seg_len, va, vb = _merged_segments(
        a_words, a_offsets, b_words, b_offsets, n_groups
    )
    # uniform: a literal segment has length 1, a fill segment's AND is
    # uniform over its span, so popcount * length covers both
    weights = np.bitwise_count(va & vb).astype(np.int64) * seg_len
    np.add.at(out, seg_pair, weights)
    return out


# ---------------------------------------------------------------------------
# Batch codec: SoA WAH <-> group values <-> raw uint64 words <-> indices
# ---------------------------------------------------------------------------


def batch_decode_groups(
    words: np.ndarray, offsets: np.ndarray, n_groups: int
) -> np.ndarray:
    """Decode a batch to its ``(N, n_groups)`` group-value matrix."""
    n = offsets.size - 1
    if n == 0 or n_groups == 0:
        return np.zeros((n, n_groups), dtype=np.uint32)
    vals, lengths, _ = _expand(words, offsets)
    return np.repeat(vals, lengths).reshape(n, n_groups)


def batch_decode_words(
    words: np.ndarray, offsets: np.ndarray, n_groups: int, n_bits: int
) -> np.ndarray:
    """Decode a batch to raw ``uint64`` bit-string words, ``(N, n/64)``.

    ``n_bits`` must be a whole number of 64-bit words (every CN universe
    is, by construction) and fit the group span.
    """
    n = offsets.size - 1
    if n_bits % WORD_BITS:
        raise BitSetError(
            f"universe {n_bits} is not a whole number of 64-bit words"
        )
    w64 = n_bits // WORD_BITS
    if n == 0 or w64 == 0:
        return np.zeros((n, w64), dtype=np.uint64)
    groups = batch_decode_groups(words, offsets, n_groups)
    bits = (
        (groups[:, :, None] >> _GROUP_SHIFTS) & np.uint32(1)
    ).astype(np.uint8)
    flat = bits.reshape(n, n_groups * GROUP_BITS)[:, :n_bits]
    packed = np.packbits(flat, axis=1, bitorder="little")
    return packed.view(np.uint64)


def batch_decode_indices(
    words: np.ndarray, offsets: np.ndarray, n_groups: int, n_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Decode a batch to flat ascending set-bit indices + offsets."""
    n = offsets.size - 1
    if n == 0 or n_groups == 0:
        return _EMPTY_I64, np.zeros(n + 1, dtype=np.int64)
    groups = batch_decode_groups(words, offsets, n_groups)
    bits = (groups[:, :, None] >> _GROUP_SHIFTS) & np.uint32(1)
    rows, cols = np.nonzero(bits.reshape(n, n_groups * GROUP_BITS))
    keep = cols < n_bits  # canonical padding is zero, but stay exact
    rows, cols = rows[keep], cols[keep]
    counts = np.bincount(rows, minlength=n)
    idx_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=idx_offsets[1:])
    return cols.astype(np.int64), idx_offsets


def batch_indices_above(
    words: np.ndarray,
    offsets: np.ndarray,
    n_groups: int,
    n_bits: int,
    lo: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-stream set-bit indices strictly greater than ``lo[i]``.

    The batch partner scan of the bit-scan generation model
    (:func:`repro.core.compressed.wah_indices_above` per stream).
    """
    n = offsets.size - 1
    if n == 0 or n_groups == 0:
        return _EMPTY_I64, np.zeros(n + 1, dtype=np.int64)
    groups = batch_decode_groups(words, offsets, n_groups)
    bits = (
        (groups[:, :, None] >> _GROUP_SHIFTS) & np.uint32(1)
    ).reshape(n, n_groups * GROUP_BITS)
    cols = np.arange(n_groups * GROUP_BITS, dtype=np.int64)
    keep = cols[None, :] > np.asarray(lo, dtype=np.int64)[:, None]
    rows, idx = np.nonzero(bits.astype(bool) & keep)
    inside = idx < n_bits
    rows, idx = rows[inside], idx[inside]
    counts = np.bincount(rows, minlength=n)
    idx_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=idx_offsets[1:])
    return idx, idx_offsets


def _encode_group_matrix(groups: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Canonically encode an ``(N, n_groups)`` group-value matrix."""
    n, n_groups = groups.shape
    _check_groups(n_groups)
    seg_pair = np.repeat(np.arange(n, dtype=np.int64), n_groups)
    seg_len = np.ones(n * n_groups, dtype=np.int64)
    return _encode_runs(seg_pair, seg_len, groups.reshape(-1), n)


def batch_encode_words(
    mat: np.ndarray, n_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Encode raw ``uint64`` bit-string rows into a canonical SoA batch.

    The batch counterpart of :meth:`WahBitmap.from_words` row by row:
    ``mat`` is ``(N, n_bits / 64)`` with the tail invariant (bits at or
    above ``n_bits`` zero).
    """
    mat = np.ascontiguousarray(mat, dtype=np.uint64)
    n = mat.shape[0]
    n_groups = (n_bits + GROUP_BITS - 1) // GROUP_BITS
    if n == 0 or n_groups == 0:
        return _EMPTY_U32, np.zeros(n + 1, dtype=np.int64)
    bits = np.unpackbits(
        mat.view(np.uint8), axis=1, bitorder="little"
    )
    padded = np.zeros((n, n_groups * GROUP_BITS), dtype=np.uint8)
    padded[:, : bits.shape[1]] = bits
    groups = (
        padded.reshape(n, n_groups, GROUP_BITS).astype(np.uint32)
        * _GROUP_WEIGHTS
    ).sum(axis=2, dtype=np.uint32)
    return _encode_group_matrix(groups)


def batch_encode_indices(
    flat_idx: np.ndarray, idx_offsets: np.ndarray, n_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Encode per-stream ascending index runs into a canonical SoA batch.

    The batch counterpart of
    :func:`repro.core.compressed.wah_from_sorted_indices`: stream ``i``
    holds exactly the set bits ``flat_idx[idx_offsets[i]:idx_offsets[i+1]]``.
    """
    n = idx_offsets.size - 1
    n_groups = (n_bits + GROUP_BITS - 1) // GROUP_BITS
    if n == 0 or n_groups == 0:
        return _EMPTY_U32, np.zeros(n + 1, dtype=np.int64)
    flat_idx = np.asarray(flat_idx, dtype=np.int64)
    if flat_idx.size and (
        flat_idx.min() < 0 or flat_idx.max() >= n_bits
    ):
        raise BitSetError(
            f"index outside the {n_bits}-bit universe"
        )
    # sparse route: indices are ascending per stream, so the global
    # group keys are sorted and each group's value is one reduceat sum
    # of distinct bit weights — no (N, n_bits) dense matrix
    groups = np.zeros(n * n_groups, dtype=np.uint32)
    if flat_idx.size:
        counts = np.diff(idx_offsets)
        rows = np.repeat(np.arange(n, dtype=np.int64), counts)
        gkey = rows * n_groups + flat_idx // GROUP_BITS
        bit = (flat_idx % GROUP_BITS).astype(np.uint32)
        brk = np.empty(gkey.size, dtype=bool)
        brk[0] = True
        np.not_equal(gkey[1:], gkey[:-1], out=brk[1:])
        starts = np.flatnonzero(brk)
        groups[gkey[starts]] = np.add.reduceat(
            np.uint32(1) << bit, starts
        )
    return _encode_group_matrix(groups.reshape(n, n_groups))
