"""The Kose et al. RAM algorithm — the paper's primary baseline.

Section 2.3 describes the algorithm of Kose, Weckwerth, Linke and Fiehn
(Bioinformatics 17, 2001), as re-implemented in RAM by the authors for
Table 1:

    "takes as input a list of all edges (2-cliques) in non-repeating
    canonical order, generates all possible (k+1)-cliques from all
    k-cliques, checks for all k-cliques to see if they are components of a
    (k+1)-clique after it is generated, declares a k-clique maximal if it
    is not a component of any (k+1)-cliques, outputs all the maximal
    k-cliques, and repeats this procedure until there is no (k+1)-clique
    generated."

Its two structural inefficiencies — the reasons the Clique Enumerator wins
by hundreds of times in Table 1 — are retained faithfully:

1. **Full retention**: *every* k-clique is stored to the next level, not
   just candidates, so memory is the total k-clique count.
2. **Containment checking**: maximality of a k-clique is decided by
   checking whether it appears as a subset of some (k+1)-clique — here via
   ``k+1`` hash probes per generated (k+1)-clique against the full
   k-clique table — instead of the Clique Enumerator's single bit test.

Like the Clique Enumerator it emits maximal cliques in non-decreasing size
order, which is why the paper adopted its level-wise principle.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import BudgetExceeded, ParameterError
from repro.core.counters import OpCounters
from repro.core.graph import Graph

__all__ = ["KoseLevelStats", "KoseResult", "kose_enumerate"]

#: bytes per stored vertex index, matching the Clique Enumerator accounting.
INDEX_BYTES = 8


@dataclass(frozen=True)
class KoseLevelStats:
    """Per-level accounting for the Kose baseline.

    ``stored_cliques`` counts *all* k-cliques held in memory at this level
    (contrast with the Clique Enumerator's candidates-only ``M[k]``).
    """

    k: int
    stored_cliques: int
    maximal_emitted: int
    stored_bytes: int


@dataclass
class KoseResult:
    """Output of :func:`kose_enumerate`."""

    cliques: list[tuple[int, ...]] = field(default_factory=list)
    level_stats: list[KoseLevelStats] = field(default_factory=list)
    counters: OpCounters = field(default_factory=OpCounters)

    def by_size(self) -> dict[int, list[tuple[int, ...]]]:
        """Group collected cliques by size."""
        out: dict[int, list[tuple[int, ...]]] = {}
        for c in self.cliques:
            out.setdefault(len(c), []).append(c)
        return out

    def peak_stored_bytes(self) -> int:
        """Peak clique-storage bytes over the run."""
        return max((ls.stored_bytes for ls in self.level_stats), default=0)


def kose_enumerate(
    g: Graph,
    k_min: int = 1,
    k_max: int | None = None,
    on_clique: Callable[[tuple[int, ...]], None] | None = None,
    max_stored: int | None = None,
) -> KoseResult:
    """Enumerate maximal cliques with the Kose et al. RAM algorithm.

    Parameters mirror
    :func:`repro.core.clique_enumerator.enumerate_maximal_cliques` so the
    two can be benchmarked on identical terms.  ``max_stored`` bounds the
    number of cliques held at any level (the quantity that reaches
    terabytes at genome scale) and raises
    :class:`~repro.errors.BudgetExceeded` when tripped.
    """
    if k_min < 1:
        raise ParameterError(f"k_min must be >= 1, got {k_min}")
    if k_max is not None and k_max < k_min:
        raise ParameterError(f"k_max ({k_max}) must be >= k_min ({k_min})")
    counters = OpCounters()
    result = KoseResult(counters=counters)

    def emit(clique: tuple[int, ...]) -> None:
        counters.maximal_emitted += 1
        if on_clique is not None:
            on_clique(clique)
        else:
            result.cliques.append(clique)

    # size-1: isolated vertices are maximal
    if k_min == 1:
        for v in range(g.n):
            if g.degree(v) == 0:
                emit((v,))

    # level 2: all edges in canonical order
    cliques: list[tuple[int, ...]] = [tuple(e) for e in g.edges()]
    k = 2
    while cliques:
        if max_stored is not None and len(cliques) > max_stored:
            raise BudgetExceeded(
                f"Kose stored-clique budget {max_stored} exceeded "
                f"({len(cliques)} at level {k})",
                emitted=len(result.cliques),
                level=k,
            )
        counters.levels = k
        # Containment table: every k-clique starts presumed maximal.
        index: dict[tuple[int, ...], bool] = {c: False for c in cliques}
        next_cliques: list[tuple[int, ...]] = []
        # Generate (k+1)-cliques from prefix groups of the canonical list.
        i = 0
        ncl = len(cliques)
        while i < ncl:
            prefix = cliques[i][:-1]
            j = i
            while j < ncl and cliques[j][:-1] == prefix:
                j += 1
            group = cliques[i:j]
            for a in range(len(group)):
                va = group[a][-1]
                for b in range(a + 1, len(group)):
                    vb = group[b][-1]
                    counters.pair_checks += 1
                    if g.has_edge(va, vb):
                        new = prefix + (va, vb)
                        counters.cliques_generated += 1
                        next_cliques.append(new)
                        # the expensive step: mark every k-subset of the
                        # new clique as a component (k+1 hash probes)
                        for drop in range(k + 1):
                            sub = new[:drop] + new[drop + 1:]
                            counters.extra["subset_probes"] = (
                                counters.extra.get("subset_probes", 0) + 1
                            )
                            if sub in index:
                                index[sub] = True
            i = j
        # Output this level's maximal cliques (never contained above).
        level_maximal = 0
        for c in cliques:
            if not index[c] and k >= k_min and (
                k_max is None or k <= k_max
            ):
                emit(c)
                level_maximal += 1
        result.level_stats.append(
            KoseLevelStats(
                k=k,
                stored_cliques=len(cliques) + len(next_cliques),
                maximal_emitted=level_maximal,
                stored_bytes=(len(cliques) * k + len(next_cliques) * (k + 1))
                * INDEX_BYTES,
            )
        )
        if k_max is not None and k >= k_max:
            break
        cliques = next_cliques
        k += 1
    return result
