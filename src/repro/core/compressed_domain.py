"""Compressed-domain generation: the level step that never decompresses.

The paper closes Section 2.3 by observing that the sparsity of its
bitmap memory index "can potentially provide high compression rate and
allow for bitwise operations to be performed on the compressed data."
PR 3's :class:`~repro.engine.level_store.CompressedLevelStore` delivered
the first half — candidates rest WAH-compressed — but still decompressed
every chunk back to raw ``uint64`` words for expansion, paying the codec
twice and materialising the full working set anyway.  This module
delivers the second half: a generation step whose common-neighbor
derivations and ``BitOneExists`` maximality tests run *directly on the
WAH words* via the :mod:`repro.core.compressed` kernels, emitting new
tails and CN strings as WAH words without a ``BitSet`` round trip.

:class:`CompressedExpander` matches the engine's
:data:`~repro.engine.level_loop.GenerationStep` signature, so it plugs
into the shared level loop exactly where
:func:`~repro.core.clique_enumerator.generate_next_level` does — and it
charges the *identical* operation counters: the
:class:`~repro.core.counters.OpCounters` model counts the paper's
algorithmic operations (one AND per child CN derivation, one AND plus
one BitOneExists per generated clique, one adjacency probe per scanned
pair), which are representation-independent.  Output cliques, per-level
statistics, and merged counters are therefore byte-identical between
``compute_domain="bitset"`` and ``"wah"``; only the word arithmetic —
and the telemetry reported via :meth:`CompressedExpander.stats` —
differs.

Two step models are provided, mirroring the two bitset steps so each
backend keeps its documented counter model:

``"pairs"``
    The paper's tail-list generation (Figure 3), used by ``incore`` and
    ``threads``.
``"bitscan"``
    The rejected Section 2.3 bit-scan variant, used by ``bitscan``
    (including its ``bits_scanned`` cost accounting) — except that the
    partner scan walks the compressed words with fill-run skipping
    instead of visiting all ``n`` bits.

Each step model exists in two *kernel* implementations selected by the
``kernel`` parameter: ``"python"`` runs the per-pair loops over the
scalar kernels in :mod:`repro.core.compressed`, while ``"numpy"`` lifts
whole level chunks into the structure-of-arrays word layout of
:mod:`repro.core.wah_kernels` and replaces the inner loops with batched
adjacency probes, one vectorised ``batch_and`` per parent group, and one
``batch_and_any`` sweep per chunk of generated cliques.  The two kernels
are *byte-equivalent*: identical emitted cliques in identical order,
identical children, and identical :class:`~repro.core.counters.
OpCounters` — the counter model charges algorithmic operations, not
loop iterations, so bulk charging a batch equals charging its pairs one
by one.  Only the :meth:`CompressedExpander.stats` telemetry may differ
(the python kernels early-exit scans the batched kernels run in full).

Thread safety: one expander serves one run, but its :meth:`step` may be
called concurrently by the ``threads`` backend's workers — the WAH
adjacency-row caches are shared under a lock, and each worker thread
gets its own :class:`~repro.core.compressed.WahScratch`.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

import numpy as np

from repro.errors import ParameterError
from repro.core.bitset import WORD_BITS
from repro.core.clique_enumerator import PAIR_BATCH, _triu_pairs
from repro.core.compressed import (
    WahBitmap,
    WahScratch,
    wah_and_any,
    wah_and_into,
    wah_from_sorted_indices,
    wah_indices_above,
)
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.obs.runtime import get_observability
from repro.core.sublist import (
    CliqueSubList,
    CompressedLevelBatch,
    CompressedSubList,
)
from repro.core.wah_kernels import (
    batch_and,
    batch_and_any,
    batch_decode_indices,
    batch_decode_words,
    batch_encode_indices,
    batch_encode_words,
    batch_indices_above,
    concat_streams,
    take_streams,
)

__all__ = ["CompressedExpander", "STEP_MODELS", "STEP_KERNELS"]

#: the two generation-step counter models an expander can mirror.
STEP_MODELS = ("pairs", "bitscan")

#: the two byte-equivalent kernel implementations of each model.
STEP_KERNELS = ("python", "numpy")

#: bitscan partner scans decode a (parents, universe) bit matrix; cap
#: parents per batch so that transient stays bounded (~32 MB of uint32).
_BITSCAN_BITS_BUDGET = 8_000_000


class CompressedExpander:
    """A generation step running the level expansion in the WAH domain.

    Parameters
    ----------
    g:
        The input graph; its adjacency rows are WAH-compressed lazily,
        one row per vertex the expansion actually touches, and cached
        for the whole run.
    model:
        Which bitset step's structure (and counter model) to mirror:
        ``"pairs"`` (:func:`~repro.core.clique_enumerator.
        generate_next_level`) or ``"bitscan"``
        (:func:`~repro.core.clique_enumerator.
        generate_next_level_bitscan`).
    emit_compressed:
        When True, :meth:`step` consumes
        :class:`~repro.core.sublist.CompressedSubList` entries (as
        streamed by ``CompressedLevelStore.stream_entries``) and emits
        children in the same form — the zero-round-trip path.  When
        False it consumes/produces plain
        :class:`~repro.core.sublist.CliqueSubList` for the ``memory`` /
        ``disk`` stores; the kernels still perform the derivations and
        maximality tests on compressed operands.
    kernel:
        ``"python"`` (the scalar per-pair kernels) or ``"numpy"`` (the
        batched :mod:`repro.core.wah_kernels` structure-of-arrays path).
        Byte-equivalent outputs and counters; see the module docstring.
        The numpy kernels additionally accept a whole
        :class:`~repro.core.sublist.CompressedLevelBatch` as the
        ``sublists`` argument of :meth:`step` and then return one, so
        batch-streaming stores never materialise per-entry objects.
    """

    def __init__(
        self,
        g: Graph,
        model: str = "pairs",
        emit_compressed: bool = False,
        kernel: str = "python",
    ):
        if model not in STEP_MODELS:
            raise ParameterError(
                f"step model must be one of {', '.join(STEP_MODELS)}, "
                f"got {model!r}"
            )
        if kernel not in STEP_KERNELS:
            raise ParameterError(
                f"step kernel must be one of {', '.join(STEP_KERNELS)}, "
                f"got {kernel!r}"
            )
        self._g = g
        self._adj = g.adj
        self._model = model
        self._emit_compressed = emit_compressed
        self.kernel = kernel
        #: bit universe of every CN string / tail bitmap of this graph —
        #: the full 64-bit word span, matching CompressedSubList.
        self._universe = WORD_BITS * int(g.adj.shape[1]) if g.n else 0
        self._n_groups = (self._universe + 30) // 31
        self._rows: list[list[int] | None] = [None] * g.n
        #: numpy-kernel adjacency cache: an SoA ``(words, offsets,
        #: slot)`` triple where ``slot[v]`` is row ``v``'s stream id
        #: (-1 while uncached).  Replaced atomically as a whole tuple,
        #: so lock-free readers always see a consistent snapshot.
        self._np_cache: tuple[np.ndarray, np.ndarray, np.ndarray] = (
            np.empty(0, dtype=np.uint32),
            np.zeros(1, dtype=np.int64),
            np.full(g.n, -1, dtype=np.int64),
        )
        self._rows_compressed = 0
        self._scratches: list[WahScratch] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        # the ambient tracer, captured once per expander (== per run);
        # the disabled plane costs one None check per step
        tracer = get_observability().tracer
        self._tracer = tracer if tracer.enabled else None

    # -- shared state --------------------------------------------------------

    def _row_words(self, v: int) -> list[int]:
        """The WAH words of vertex ``v``'s adjacency row (cached)."""
        row = self._rows[v]
        if row is None:
            words = WahBitmap.from_words(self._adj[v]).wah_words().tolist()
            with self._lock:
                if self._rows[v] is None:
                    self._rows[v] = words
                    self._rows_compressed += 1
                row = self._rows[v]
        return row

    def _np_rows_for(
        self, verts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """An SoA snapshot of the adjacency-row cache covering ``verts``.

        Returns ``(words, offsets, slot)``; rows not yet cached are
        batch-encoded under the lock first.  Snapshots are append-only,
        so a slot id stays valid in every later snapshot.
        """
        words, offsets, slot = self._np_cache
        verts = np.unique(verts)
        missing = verts[slot[verts] < 0]
        if missing.size:
            with self._lock:
                words, offsets, slot = self._np_cache
                missing = missing[slot[missing] < 0]
                if missing.size:
                    new_w, new_o = batch_encode_words(
                        self._adj[missing], self._universe
                    )
                    base = offsets.size - 1
                    offsets = np.concatenate(
                        (offsets, new_o[1:] + offsets[-1])
                    )
                    words = np.concatenate((words, new_w))
                    slot = slot.copy()
                    slot[missing] = base + np.arange(missing.size)
                    self._np_cache = (words, offsets, slot)
                    self._rows_compressed += int(missing.size)
        return words, offsets, slot

    def _scratch(self) -> WahScratch:
        """This thread's kernel workspace (created on first use)."""
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = WahScratch()
            self._local.scratch = scratch
            with self._lock:
                self._scratches.append(scratch)
        return scratch

    def stats(self) -> dict:
        """Telemetry for ``EnumerationResult.domain_stats``.

        Read after the run (the threads backend joins its pool at every
        level barrier, so worker scratches are quiescent by then).
        """
        with self._lock:
            return {
                "kernel_word_ops": sum(
                    s.word_ops for s in self._scratches
                ),
                "kernel_ands": sum(s.and_ops for s in self._scratches),
                "adj_rows_compressed": self._rows_compressed,
            }

    # -- the generation step -------------------------------------------------

    def step(
        self,
        sublists: list,
        g: Graph,
        counters: OpCounters,
        emit: Callable[[tuple[int, ...]], None],
    ) -> list:
        """One ``GenerateKCliques`` step in the compressed domain.

        Matches the engine's ``GenerationStep`` signature; ``g`` must be
        the graph the expander was built for.
        """
        if self._tracer is None:
            return self._dispatch(sublists, counters, emit)
        with self._tracer.span(
            "expand",
            kernel=self.kernel,
            model=self._model,
            parents=len(sublists),
        ) as span:
            children = self._dispatch(sublists, counters, emit)
            span.set(children=len(children))
            return children

    def _dispatch(
        self,
        sublists: list,
        counters: OpCounters,
        emit: Callable[[tuple[int, ...]], None],
    ) -> list:
        """Route one chunk to the configured kernel/model pair."""
        if self.kernel == "numpy":
            if self._model == "pairs":
                return self._step_pairs_np(sublists, counters, emit)
            return self._step_bitscan_np(sublists, counters, emit)
        if isinstance(sublists, CompressedLevelBatch):
            # the python kernels work per entry; round-trip through the
            # entry form so batch-streaming stores can still select them
            # (requires emit_compressed — a batch is a compressed level)
            entries = sublists.to_entries()
            if self._model == "pairs":
                children = self._step_pairs(entries, counters, emit)
            else:
                children = self._step_bitscan(entries, counters, emit)
            batch = CompressedLevelBatch.from_entries(children)
            if not children:
                batch = CompressedLevelBatch.empty(self._universe)
            return batch
        if self._model == "pairs":
            return self._step_pairs(sublists, counters, emit)
        return self._step_bitscan(sublists, counters, emit)

    def _unpack(self, sl) -> tuple[list[int], list[int] | None, object]:
        """``(tails, cn_wah, cn_words)`` whatever the sub-list form.

        ``cn_wah`` is ``None`` for uncompressed input — compressed
        lazily by the caller only when the sub-list produces children.
        """
        if isinstance(sl, CompressedSubList):
            return (
                list(sl.tails.iter_indices()),
                sl.cn.wah_words().tolist(),
                None,
            )
        return sl.tails.tolist(), None, sl.cn_words

    def _child(
        self,
        prefix: tuple[int, ...],
        v: int,
        cand: list[int],
        child_cn: list[int],
        cn_words,
    ):
        """Build one retained child sub-list in the configured form."""
        if self._emit_compressed:
            universe = self._universe
            return CompressedSubList(
                prefix=prefix,
                n_tails=len(cand),
                tails=WahBitmap(
                    universe, wah_from_sorted_indices(universe, cand)
                ),
                cn=WahBitmap(universe, list(child_cn)),
            )
        if cn_words is None:  # compressed input, uncompressed output
            child_words = WahBitmap(
                self._universe, list(child_cn)
            ).to_words()
        else:
            child_words = cn_words & self._adj[v]
        return CliqueSubList(
            prefix=prefix,
            tails=np.asarray(cand, dtype=np.int64),
            cn_words=child_words,
        )

    def _step_pairs(self, sublists, counters, emit) -> list:
        """The tail-list model: counters match ``generate_next_level``."""
        out: list = []
        scratch = self._scratch()
        n_groups = self._n_groups
        adj = self._adj
        for sl in sublists:
            tails, cn_wah, cn_words = self._unpack(sl)
            t = len(tails)
            if t < 2:
                continue
            counters.pair_checks += t * (t - 1) // 2
            for i in range(t - 1):
                v = tails[i]
                row_v = adj[v]
                partners = [
                    u
                    for u in tails[i + 1:]
                    if (int(row_v[u >> 6]) >> (u & 63)) & 1
                ]
                if not partners:
                    continue
                counters.bit_and_ops += 1  # child CN derivation
                if cn_wah is None:
                    cn_wah = WahBitmap.from_words(
                        cn_words
                    ).wah_words().tolist()
                child_cn = wah_and_into(
                    cn_wah, self._row_words(v), n_groups, scratch
                )
                child_prefix = sl.prefix + (v,)
                cand: list[int] = []
                for u in partners:
                    counters.cliques_generated += 1
                    counters.bit_and_ops += 1
                    counters.bit_exist_checks += 1
                    if wah_and_any(
                        child_cn, self._row_words(u), n_groups, scratch
                    ):
                        cand.append(u)
                    else:
                        counters.maximal_emitted += 1
                        emit(child_prefix + (u,))
                if len(cand) > 1:
                    counters.sublists_created += 1
                    out.append(
                        self._child(
                            child_prefix, v, cand, child_cn, cn_words
                        )
                    )
        return out

    # -- the numpy (structure-of-arrays) kernels -----------------------------

    def _np_load(self, sublists):
        """Normalise one level chunk into SoA form for the batch kernels.

        Accepts a list of :class:`CliqueSubList`, a list of
        :class:`CompressedSubList`, or a :class:`CompressedLevelBatch`,
        and returns ``(prefixes, tails, cn_words, cn_offsets, kind)``
        where ``tails`` holds one ascending ``int64`` index array per
        sub-list and ``kind`` names the input form (``"raw"`` /
        ``"entries"`` / ``"batch"``) so children can be materialised to
        match.  Sub-lists with fewer than two tails are dropped here:
        neither step model can derive anything from them.
        """
        ng, universe = self._n_groups, self._universe
        if isinstance(sublists, CompressedLevelBatch):
            tw, to = sublists.tails_words, sublists.tails_offsets
            cw, co = sublists.cn_words, sublists.cn_offsets
            prefixes = list(sublists.prefixes)
            keep = np.flatnonzero(sublists.n_tails >= 2)
            filtered = keep.size < len(prefixes)
            if filtered:
                cw, co = take_streams(cw, co, keep)
                prefixes = [prefixes[i] for i in keep.tolist()]
            if sublists.tails_idx is not None:
                # the producing step cached its decoded tails — slice
                # the kept streams straight out of the cache
                flat, offs = sublists.tails_idx
                tails = [
                    flat[offs[i]:offs[i + 1]] for i in keep.tolist()
                ]
            else:
                if filtered:
                    tw, to = take_streams(tw, to, keep)
                flat, offs = batch_decode_indices(tw, to, ng, universe)
                tails = [
                    flat[offs[i]:offs[i + 1]]
                    for i in range(len(prefixes))
                ]
            return prefixes, tails, cw, co, "batch"
        sublists = [sl for sl in sublists if len(sl) >= 2]
        if not sublists:
            return (
                [],
                [],
                np.empty(0, dtype=np.uint32),
                np.zeros(1, dtype=np.int64),
                "raw",
            )
        if isinstance(sublists[0], CompressedSubList):
            tw, to = concat_streams(
                [e.tails.wah_words() for e in sublists]
            )
            flat, offs = batch_decode_indices(tw, to, ng, universe)
            tails = [
                flat[offs[i]:offs[i + 1]] for i in range(len(sublists))
            ]
            cw, co = concat_streams([e.cn.wah_words() for e in sublists])
            return [e.prefix for e in sublists], tails, cw, co, "entries"
        cw, co = batch_encode_words(
            np.stack([sl.cn_words for sl in sublists]), universe
        )
        return (
            [sl.prefix for sl in sublists],
            [sl.tails for sl in sublists],
            cw,
            co,
            "raw",
        )

    def _np_children(self, kind, out_prefixes, out_cands, parts):
        """Materialise retained children in the form matching ``kind``.

        ``parts`` holds per-batch SoA fragments of the kept child CN
        streams, in emission order; ``out_cands`` the matching ascending
        tail-index arrays.
        """
        universe, ng = self._universe, self._n_groups
        if not out_prefixes:
            return (
                CompressedLevelBatch.empty(universe)
                if kind == "batch"
                else []
            )
        words = np.concatenate([w for w, _ in parts])
        lens = np.concatenate([np.diff(o) for _, o in parts])
        offsets = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        if kind == "raw":
            mats = batch_decode_words(words, offsets, ng, universe)
            return [
                CliqueSubList(
                    prefix=out_prefixes[i],
                    tails=out_cands[i],
                    cn_words=mats[i],
                )
                for i in range(len(out_prefixes))
            ]
        counts = np.fromiter(
            (c.size for c in out_cands),
            dtype=np.int64,
            count=len(out_cands),
        )
        idx_offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=idx_offsets[1:])
        flat_cands = np.concatenate(out_cands)
        tw, to = batch_encode_indices(flat_cands, idx_offsets, universe)
        if kind == "batch":
            return CompressedLevelBatch(
                prefixes=tuple(out_prefixes),
                universe=universe,
                n_tails=counts,
                tails_words=tw,
                tails_offsets=to,
                cn_words=words,
                cn_offsets=offsets,
                tails_idx=(flat_cands, idx_offsets),
            )
        return [
            CompressedSubList(
                prefix=out_prefixes[i],
                n_tails=int(counts[i]),
                tails=WahBitmap._trusted(universe, tw[to[i]:to[i + 1]]),
                cn=WahBitmap._trusted(
                    universe, words[offsets[i]:offsets[i + 1]]
                ),
            )
            for i in range(len(out_prefixes))
        ]

    def _step_pairs_np(self, sublists, counters, emit):
        """The tail-list model on the batch kernels.

        Mirrors :meth:`_step_pairs` (and the in-core bitset step's
        ``PAIR_BATCH`` charging structure): counters, emitted cliques,
        and children are byte-identical to the python kernel's.
        """
        prefixes, tails, cn_w, cn_o, kind = self._np_load(sublists)
        scratch = self._scratch()
        out_prefixes: list[tuple[int, ...]] = []
        out_cands: list[np.ndarray] = []
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        n_lists = len(prefixes)
        start = 0
        while start < n_lists:
            end, budget = start, 0
            while end < n_lists:
                t = int(tails[end].size)
                pairs = t * (t - 1) // 2
                if end > start and budget + pairs > PAIR_BATCH:
                    break
                budget += pairs
                end += 1
            self._pairs_batch_np(
                start, end, prefixes, tails, cn_w, cn_o,
                counters, emit, scratch, out_prefixes, out_cands, parts,
            )
            start = end
        return self._np_children(kind, out_prefixes, out_cands, parts)

    def _pairs_batch_np(
        self, lo, hi, prefixes, tails, cn_w, cn_o,
        counters, emit, scratch, out_prefixes, out_cands, parts,
    ):
        """Expand sub-lists ``[lo, hi)`` as one vectorised pair batch."""
        ng = self._n_groups
        vi_parts, vj_parts, sid_parts = [], [], []
        for s in range(lo, hi):
            iu, ju = _triu_pairs(int(tails[s].size))
            vi_parts.append(tails[s][iu])
            vj_parts.append(tails[s][ju])
            sid_parts.append(np.full(iu.size, s, dtype=np.int64))
        all_vi = np.concatenate(vi_parts)
        all_vj = np.concatenate(vj_parts)
        all_sid = np.concatenate(sid_parts)
        counters.pair_checks += int(all_vi.size)
        if not all_vi.size:
            return
        adjacent = (
            self._adj[all_vi, all_vj >> 6]
            >> (all_vj & 63).astype(np.uint64)
        ) & np.uint64(1)
        mask = adjacent.astype(bool)
        if not mask.any():
            return
        pvi, pvj, psid = all_vi[mask], all_vj[mask], all_sid[mask]
        n_pairs = int(pvi.size)
        counters.cliques_generated += n_pairs
        counters.bit_and_ops += n_pairs
        counters.bit_exist_checks += n_pairs
        # parent groups: one child-CN derivation per distinct (sl, vi)
        boundary = np.empty(n_pairs, dtype=bool)
        boundary[0] = True
        np.logical_or(
            psid[1:] != psid[:-1], pvi[1:] != pvi[:-1], out=boundary[1:]
        )
        starts = np.flatnonzero(boundary)
        group_of = np.cumsum(boundary) - 1
        n_groups_here = int(starts.size)
        counters.bit_and_ops += n_groups_here
        gvi, gsid = pvi[starts], psid[starts]
        rw, ro, slot = self._np_rows_for(np.concatenate((gvi, pvj)))
        aw, ao = take_streams(cn_w, cn_o, gsid)
        bw, bo = take_streams(rw, ro, slot[gvi])
        chw, cho = batch_and(aw, ao, bw, bo, ng)
        scratch.and_ops += n_groups_here
        scratch.word_ops += int(ao[-1] + bo[-1] + cho[-1])
        # BitOneExists(child_cn & adj[vj]) for every generated clique
        taw, tao = take_streams(chw, cho, group_of)
        tbw, tbo = take_streams(rw, ro, slot[pvj])
        nonmax = batch_and_any(taw, tao, tbw, tbo, ng)
        scratch.and_ops += n_pairs
        scratch.word_ops += int(tao[-1] + tbo[-1])
        n_nonmax = np.add.reduceat(nonmax.astype(np.int64), starts)
        ends = np.append(starts[1:], n_pairs)
        pvj_l, nonmax_l = pvj.tolist(), nonmax.tolist()
        starts_l, ends_l = starts.tolist(), ends.tolist()
        kept: list[int] = []
        for gi in range(n_groups_here):
            s, e = starts_l[gi], ends_l[gi]
            nm = int(n_nonmax[gi])
            size = e - s
            if nm == size and nm <= 1:
                continue
            child_prefix = prefixes[int(gsid[gi])] + (int(gvi[gi]),)
            if nm < size:
                for idx in range(s, e):
                    if not nonmax_l[idx]:
                        counters.maximal_emitted += 1
                        emit(child_prefix + (pvj_l[idx],))
            if nm > 1:
                counters.sublists_created += 1
                kept.append(gi)
                out_prefixes.append(child_prefix)
                out_cands.append(pvj[s:e][nonmax[s:e]])
        if kept:
            parts.append(
                take_streams(chw, cho, np.asarray(kept, dtype=np.int64))
            )

    def _step_bitscan_np(self, sublists, counters, emit):
        """The bit-scan model on the batch kernels.

        Mirrors :meth:`_step_bitscan` — including the documented
        full-``n`` ``bits_scanned`` cost accounting — with the partner
        scan running as one ``batch_indices_above`` per parent chunk.
        """
        prefixes, tails, cn_w, cn_o, kind = self._np_load(sublists)
        scratch = self._scratch()
        out_prefixes: list[tuple[int, ...]] = []
        out_cands: list[np.ndarray] = []
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        n_lists = len(prefixes)
        cap = max(64, _BITSCAN_BITS_BUDGET // max(self._universe, 64))
        start = 0
        while start < n_lists:
            end, n_parents = start, 0
            while end < n_lists:
                p = int(tails[end].size) - 1
                if end > start and n_parents + p > cap:
                    break
                n_parents += p
                end += 1
            self._bitscan_batch_np(
                start, end, prefixes, tails, cn_w, cn_o,
                counters, emit, scratch, out_prefixes, out_cands, parts,
            )
            start = end
        return self._np_children(kind, out_prefixes, out_cands, parts)

    def _bitscan_batch_np(
        self, lo, hi, prefixes, tails, cn_w, cn_o,
        counters, emit, scratch, out_prefixes, out_cands, parts,
    ):
        """Expand sub-lists ``[lo, hi)`` as one vectorised parent batch."""
        ng, universe = self._n_groups, self._universe
        psid = np.concatenate(
            [
                np.full(tails[s].size - 1, s, dtype=np.int64)
                for s in range(lo, hi)
            ]
        )
        pvi = np.concatenate([tails[s][:-1] for s in range(lo, hi)])
        n_parents = int(pvi.size)
        if not n_parents:
            return
        # one child-CN AND and one full-n scan charged per parent,
        # whatever representation runs it — the documented cost model
        counters.bit_and_ops += n_parents
        counters.extra["bits_scanned"] = (
            counters.extra.get("bits_scanned", 0) + self._g.n * n_parents
        )
        rw, ro, slot = self._np_rows_for(pvi)
        aw, ao = take_streams(cn_w, cn_o, psid)
        bw, bo = take_streams(rw, ro, slot[pvi])
        chw, cho = batch_and(aw, ao, bw, bo, ng)
        scratch.and_ops += n_parents
        scratch.word_ops += int(ao[-1] + bo[-1] + cho[-1])
        flat_p, p_off = batch_indices_above(chw, cho, ng, universe, pvi)
        n_partners = int(flat_p.size)
        if not n_partners:
            return
        counters.cliques_generated += n_partners
        counters.bit_and_ops += n_partners
        counters.bit_exist_checks += n_partners
        parent_of = np.repeat(
            np.arange(n_parents, dtype=np.int64), np.diff(p_off)
        )
        rw, ro, slot = self._np_rows_for(flat_p)
        taw, tao = take_streams(chw, cho, parent_of)
        tbw, tbo = take_streams(rw, ro, slot[flat_p])
        nonmax = batch_and_any(taw, tao, tbw, tbo, ng)
        scratch.and_ops += n_partners
        scratch.word_ops += int(tao[-1] + tbo[-1])
        flat_l, nonmax_l = flat_p.tolist(), nonmax.tolist()
        p_off_l = p_off.tolist()
        kept: list[int] = []
        for p in range(n_parents):
            s, e = p_off_l[p], p_off_l[p + 1]
            if s == e:
                continue
            sub_nm = nonmax[s:e]
            nm = int(sub_nm.sum())
            size = e - s
            if nm == size and nm <= 1:
                continue
            child_prefix = prefixes[int(psid[p])] + (int(pvi[p]),)
            if nm < size:
                for idx in range(s, e):
                    if not nonmax_l[idx]:
                        counters.maximal_emitted += 1
                        emit(child_prefix + (flat_l[idx],))
            if nm > 1:
                counters.sublists_created += 1
                kept.append(p)
                out_prefixes.append(child_prefix)
                out_cands.append(flat_p[s:e][sub_nm])
        if kept:
            parts.append(
                take_streams(chw, cho, np.asarray(kept, dtype=np.int64))
            )

    def _step_bitscan(self, sublists, counters, emit) -> list:
        """The bit-scan model: counters match
        ``generate_next_level_bitscan`` (including ``bits_scanned``),
        but the partner scan fill-skips the compressed words instead of
        visiting all ``n`` bits."""
        out: list = []
        scratch = self._scratch()
        n_groups = self._n_groups
        n = self._g.n
        for sl in sublists:
            tails, cn_wah, cn_words = self._unpack(sl)
            if len(tails) < 2:
                continue
            if cn_wah is None:
                cn_wah = WahBitmap.from_words(
                    cn_words
                ).wah_words().tolist()
            for v in tails[:-1]:
                counters.bit_and_ops += 1
                child_cn = wah_and_into(
                    cn_wah, self._row_words(v), n_groups, scratch
                )
                # the documented bitscan cost model charges the full
                # n-bit scan per child, whatever representation ran it
                counters.extra["bits_scanned"] = (
                    counters.extra.get("bits_scanned", 0) + n
                )
                partners = list(wah_indices_above(child_cn, v))
                if not partners:
                    continue
                counters.cliques_generated += len(partners)
                counters.bit_and_ops += len(partners)
                counters.bit_exist_checks += len(partners)
                child_prefix = sl.prefix + (v,)
                cand: list[int] = []
                for u in partners:
                    if wah_and_any(
                        child_cn, self._row_words(u), n_groups, scratch
                    ):
                        cand.append(u)
                    else:
                        counters.maximal_emitted += 1
                        emit(child_prefix + (u,))
                if len(cand) > 1:
                    counters.sublists_created += 1
                    out.append(
                        self._child(
                            child_prefix, v, cand, child_cn, cn_words
                        )
                    )
        return out
