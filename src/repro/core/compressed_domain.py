"""Compressed-domain generation: the level step that never decompresses.

The paper closes Section 2.3 by observing that the sparsity of its
bitmap memory index "can potentially provide high compression rate and
allow for bitwise operations to be performed on the compressed data."
PR 3's :class:`~repro.engine.level_store.CompressedLevelStore` delivered
the first half — candidates rest WAH-compressed — but still decompressed
every chunk back to raw ``uint64`` words for expansion, paying the codec
twice and materialising the full working set anyway.  This module
delivers the second half: a generation step whose common-neighbor
derivations and ``BitOneExists`` maximality tests run *directly on the
WAH words* via the :mod:`repro.core.compressed` kernels, emitting new
tails and CN strings as WAH words without a ``BitSet`` round trip.

:class:`CompressedExpander` matches the engine's
:data:`~repro.engine.level_loop.GenerationStep` signature, so it plugs
into the shared level loop exactly where
:func:`~repro.core.clique_enumerator.generate_next_level` does — and it
charges the *identical* operation counters: the
:class:`~repro.core.counters.OpCounters` model counts the paper's
algorithmic operations (one AND per child CN derivation, one AND plus
one BitOneExists per generated clique, one adjacency probe per scanned
pair), which are representation-independent.  Output cliques, per-level
statistics, and merged counters are therefore byte-identical between
``compute_domain="bitset"`` and ``"wah"``; only the word arithmetic —
and the telemetry reported via :meth:`CompressedExpander.stats` —
differs.

Two step models are provided, mirroring the two bitset steps so each
backend keeps its documented counter model:

``"pairs"``
    The paper's tail-list generation (Figure 3), used by ``incore`` and
    ``threads``.
``"bitscan"``
    The rejected Section 2.3 bit-scan variant, used by ``bitscan``
    (including its ``bits_scanned`` cost accounting) — except that the
    partner scan walks the compressed words with fill-run skipping
    instead of visiting all ``n`` bits.

Thread safety: one expander serves one run, but its :meth:`step` may be
called concurrently by the ``threads`` backend's workers — the WAH
adjacency-row cache is shared under a lock, and each worker thread gets
its own :class:`~repro.core.compressed.WahScratch`.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

import numpy as np

from repro.errors import ParameterError
from repro.core.bitset import WORD_BITS
from repro.core.compressed import (
    WahBitmap,
    WahScratch,
    wah_and_any,
    wah_and_into,
    wah_from_sorted_indices,
    wah_indices_above,
)
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.sublist import CliqueSubList, CompressedSubList

__all__ = ["CompressedExpander", "STEP_MODELS"]

#: the two generation-step counter models an expander can mirror.
STEP_MODELS = ("pairs", "bitscan")


class CompressedExpander:
    """A generation step running the level expansion in the WAH domain.

    Parameters
    ----------
    g:
        The input graph; its adjacency rows are WAH-compressed lazily,
        one row per vertex the expansion actually touches, and cached
        for the whole run.
    model:
        Which bitset step's structure (and counter model) to mirror:
        ``"pairs"`` (:func:`~repro.core.clique_enumerator.
        generate_next_level`) or ``"bitscan"``
        (:func:`~repro.core.clique_enumerator.
        generate_next_level_bitscan`).
    emit_compressed:
        When True, :meth:`step` consumes
        :class:`~repro.core.sublist.CompressedSubList` entries (as
        streamed by ``CompressedLevelStore.stream_entries``) and emits
        children in the same form — the zero-round-trip path.  When
        False it consumes/produces plain
        :class:`~repro.core.sublist.CliqueSubList` for the ``memory`` /
        ``disk`` stores; the kernels still perform the derivations and
        maximality tests on compressed operands.
    """

    def __init__(
        self,
        g: Graph,
        model: str = "pairs",
        emit_compressed: bool = False,
    ):
        if model not in STEP_MODELS:
            raise ParameterError(
                f"step model must be one of {', '.join(STEP_MODELS)}, "
                f"got {model!r}"
            )
        self._g = g
        self._adj = g.adj
        self._model = model
        self._emit_compressed = emit_compressed
        #: bit universe of every CN string / tail bitmap of this graph —
        #: the full 64-bit word span, matching CompressedSubList.
        self._universe = WORD_BITS * int(g.adj.shape[1]) if g.n else 0
        self._n_groups = (self._universe + 30) // 31
        self._rows: list[list[int] | None] = [None] * g.n
        self._rows_compressed = 0
        self._scratches: list[WahScratch] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- shared state --------------------------------------------------------

    def _row_words(self, v: int) -> list[int]:
        """The WAH words of vertex ``v``'s adjacency row (cached)."""
        row = self._rows[v]
        if row is None:
            words = WahBitmap.from_words(self._adj[v]).wah_words()
            with self._lock:
                if self._rows[v] is None:
                    self._rows[v] = words
                    self._rows_compressed += 1
                row = self._rows[v]
        return row

    def _scratch(self) -> WahScratch:
        """This thread's kernel workspace (created on first use)."""
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = WahScratch()
            self._local.scratch = scratch
            with self._lock:
                self._scratches.append(scratch)
        return scratch

    def stats(self) -> dict:
        """Telemetry for ``EnumerationResult.domain_stats``.

        Read after the run (the threads backend joins its pool at every
        level barrier, so worker scratches are quiescent by then).
        """
        with self._lock:
            return {
                "kernel_word_ops": sum(
                    s.word_ops for s in self._scratches
                ),
                "kernel_ands": sum(s.and_ops for s in self._scratches),
                "adj_rows_compressed": self._rows_compressed,
            }

    # -- the generation step -------------------------------------------------

    def step(
        self,
        sublists: list,
        g: Graph,
        counters: OpCounters,
        emit: Callable[[tuple[int, ...]], None],
    ) -> list:
        """One ``GenerateKCliques`` step in the compressed domain.

        Matches the engine's ``GenerationStep`` signature; ``g`` must be
        the graph the expander was built for.
        """
        if self._model == "pairs":
            return self._step_pairs(sublists, counters, emit)
        return self._step_bitscan(sublists, counters, emit)

    def _unpack(self, sl) -> tuple[list[int], list[int] | None, object]:
        """``(tails, cn_wah, cn_words)`` whatever the sub-list form.

        ``cn_wah`` is ``None`` for uncompressed input — compressed
        lazily by the caller only when the sub-list produces children.
        """
        if isinstance(sl, CompressedSubList):
            return list(sl.tails.iter_indices()), sl.cn.wah_words(), None
        return sl.tails.tolist(), None, sl.cn_words

    def _child(
        self,
        prefix: tuple[int, ...],
        v: int,
        cand: list[int],
        child_cn: list[int],
        cn_words,
    ):
        """Build one retained child sub-list in the configured form."""
        if self._emit_compressed:
            universe = self._universe
            return CompressedSubList(
                prefix=prefix,
                n_tails=len(cand),
                tails=WahBitmap(
                    universe, wah_from_sorted_indices(universe, cand)
                ),
                cn=WahBitmap(universe, list(child_cn)),
            )
        if cn_words is None:  # compressed input, uncompressed output
            child_words = WahBitmap(
                self._universe, list(child_cn)
            ).to_words()
        else:
            child_words = cn_words & self._adj[v]
        return CliqueSubList(
            prefix=prefix,
            tails=np.asarray(cand, dtype=np.int64),
            cn_words=child_words,
        )

    def _step_pairs(self, sublists, counters, emit) -> list:
        """The tail-list model: counters match ``generate_next_level``."""
        out: list = []
        scratch = self._scratch()
        n_groups = self._n_groups
        adj = self._adj
        for sl in sublists:
            tails, cn_wah, cn_words = self._unpack(sl)
            t = len(tails)
            if t < 2:
                continue
            counters.pair_checks += t * (t - 1) // 2
            for i in range(t - 1):
                v = tails[i]
                row_v = adj[v]
                partners = [
                    u
                    for u in tails[i + 1:]
                    if (int(row_v[u >> 6]) >> (u & 63)) & 1
                ]
                if not partners:
                    continue
                counters.bit_and_ops += 1  # child CN derivation
                if cn_wah is None:
                    cn_wah = WahBitmap.from_words(cn_words).wah_words()
                child_cn = wah_and_into(
                    cn_wah, self._row_words(v), n_groups, scratch
                )
                child_prefix = sl.prefix + (v,)
                cand: list[int] = []
                for u in partners:
                    counters.cliques_generated += 1
                    counters.bit_and_ops += 1
                    counters.bit_exist_checks += 1
                    if wah_and_any(
                        child_cn, self._row_words(u), n_groups, scratch
                    ):
                        cand.append(u)
                    else:
                        counters.maximal_emitted += 1
                        emit(child_prefix + (u,))
                if len(cand) > 1:
                    counters.sublists_created += 1
                    out.append(
                        self._child(
                            child_prefix, v, cand, child_cn, cn_words
                        )
                    )
        return out

    def _step_bitscan(self, sublists, counters, emit) -> list:
        """The bit-scan model: counters match
        ``generate_next_level_bitscan`` (including ``bits_scanned``),
        but the partner scan fill-skips the compressed words instead of
        visiting all ``n`` bits."""
        out: list = []
        scratch = self._scratch()
        n_groups = self._n_groups
        n = self._g.n
        for sl in sublists:
            tails, cn_wah, cn_words = self._unpack(sl)
            if len(tails) < 2:
                continue
            if cn_wah is None:
                cn_wah = WahBitmap.from_words(cn_words).wah_words()
            for v in tails[:-1]:
                counters.bit_and_ops += 1
                child_cn = wah_and_into(
                    cn_wah, self._row_words(v), n_groups, scratch
                )
                # the documented bitscan cost model charges the full
                # n-bit scan per child, whatever representation ran it
                counters.extra["bits_scanned"] = (
                    counters.extra.get("bits_scanned", 0) + n
                )
                partners = list(wah_indices_above(child_cn, v))
                if not partners:
                    continue
                counters.cliques_generated += len(partners)
                counters.bit_and_ops += len(partners)
                counters.bit_exist_checks += len(partners)
                child_prefix = sl.prefix + (v,)
                cand: list[int] = []
                for u in partners:
                    if wah_and_any(
                        child_cn, self._row_words(u), n_groups, scratch
                    ):
                        cand.append(u)
                    else:
                        counters.maximal_emitted += 1
                        emit(child_prefix + (u,))
                if len(cand) > 1:
                    counters.sublists_created += 1
                    out.append(
                        self._child(
                            child_prefix, v, cand, child_cn, cn_words
                        )
                    )
        return out
