"""Core library: the paper's Clique Enumerator framework and substrates.

Public surface re-exported here:

* data representation — :class:`~repro.core.bitset.BitSet`,
  :class:`~repro.core.compressed.WahBitmap`,
  :class:`~repro.core.graph.Graph`;
* enumeration — :func:`~repro.core.clique_enumerator.
  enumerate_maximal_cliques` (the paper's algorithm),
  :func:`~repro.core.kclique.enumerate_k_cliques`,
  :func:`~repro.core.kose.kose_enumerate` and the Bron–Kerbosch baselines;
* optimisation — :func:`~repro.core.maximum_clique.maximum_clique`,
  :func:`~repro.core.vertex_cover.minimum_vertex_cover`,
  :func:`~repro.core.paraclique.paraclique`.
"""

from repro.core.bitset import BitSet
from repro.core.compressed import WahBitmap
from repro.core.graph import Graph
from repro.core.counters import OpCounters
from repro.core.sublist import CliqueSubList
from repro.core.clique_enumerator import (
    EnumerationResult,
    LevelStats,
    enumerate_maximal_cliques,
)
from repro.core.kclique import KCliqueResult, enumerate_k_cliques
from repro.core.kose import KoseResult, kose_enumerate
from repro.core.bron_kerbosch import (
    bron_kerbosch_base,
    bron_kerbosch_degeneracy,
    bron_kerbosch_pivot,
)
from repro.core.maximum_clique import (
    greedy_clique,
    maximum_clique,
    maximum_clique_size,
    maximum_clique_via_vertex_cover,
)
from repro.core.vertex_cover import (
    minimum_vertex_cover,
    vertex_cover_decision,
)
from repro.core.paraclique import paraclique, proportional_paraclique
from repro.core.memory_model import memory_profile, MemoryProfile
from repro.core.stats import GraphSummary, summarize
from repro.core.decomposition import (
    Decomposition,
    Module,
    paraclique_decomposition,
)
from repro.core.out_of_core import (
    DiskLevelStore,
    IOStats,
    enumerate_maximal_cliques_ooc,
)

__all__ = [
    "BitSet",
    "WahBitmap",
    "Graph",
    "OpCounters",
    "CliqueSubList",
    "EnumerationResult",
    "LevelStats",
    "enumerate_maximal_cliques",
    "KCliqueResult",
    "enumerate_k_cliques",
    "KoseResult",
    "kose_enumerate",
    "bron_kerbosch_base",
    "bron_kerbosch_pivot",
    "bron_kerbosch_degeneracy",
    "greedy_clique",
    "maximum_clique",
    "maximum_clique_size",
    "maximum_clique_via_vertex_cover",
    "minimum_vertex_cover",
    "vertex_cover_decision",
    "paraclique",
    "proportional_paraclique",
    "memory_profile",
    "MemoryProfile",
    "GraphSummary",
    "summarize",
    "Decomposition",
    "Module",
    "paraclique_decomposition",
    "DiskLevelStore",
    "IOStats",
    "enumerate_maximal_cliques_ooc",
]
