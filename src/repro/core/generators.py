"""Deterministic random-graph generators used by tests and workloads.

All generators take an integer ``seed`` and are reproducible across runs
and platforms (they only use :class:`numpy.random.Generator` draws).

The planted-module generators mirror the structure of the paper's test
inputs: sparse background graphs (densities between 0.008 % and 0.3 %) with
embedded dense modules that become large maximal cliques, which is what a
thresholded gene-correlation matrix looks like when co-expressed gene
modules are present.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.core.graph import Graph

__all__ = [
    "erdos_renyi",
    "gnm_random",
    "planted_clique",
    "planted_partition",
    "overlapping_cliques",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "barbell_graph",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p): each of the ``C(n,2)`` edges present independently.

    Parameters
    ----------
    n: vertex count.
    p: edge probability in ``[0, 1]``.
    seed: RNG seed.
    """
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"edge probability must be in [0,1], got {p}")
    rng = _rng(seed)
    g = Graph(n)
    if n < 2 or p == 0.0:
        return g
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    for u, v in zip(iu[mask].tolist(), ju[mask].tolist()):
        g.add_edge(u, v)
    return g


def gnm_random(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): exactly ``m`` distinct edges chosen uniformly."""
    max_m = n * (n - 1) // 2
    if not 0 <= m <= max_m:
        raise ParameterError(f"edge count {m} out of [0, {max_m}]")
    rng = _rng(seed)
    g = Graph(n)
    if m == 0:
        return g
    # Sample edge ranks without replacement, decode to (u, v) pairs.
    ranks = rng.choice(max_m, size=m, replace=False)
    iu, ju = np.triu_indices(n, k=1)
    for r in ranks.tolist():
        g.add_edge(int(iu[r]), int(ju[r]))
    return g


def planted_clique(
    n: int, clique_size: int, p: float, seed: int = 0
) -> tuple[Graph, list[int]]:
    """G(n, p) background plus one planted clique of the given size.

    Returns ``(graph, clique_vertices)``.  The planted vertices are a
    uniformly random subset, so the clique is not positionally identifiable.
    """
    if clique_size > n:
        raise ParameterError(
            f"clique size {clique_size} exceeds vertex count {n}"
        )
    rng = _rng(seed)
    g = erdos_renyi(n, p, rng)
    members = sorted(rng.choice(n, size=clique_size, replace=False).tolist())
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            g.add_edge(u, v)
    return g, members


def planted_partition(
    n: int,
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> tuple[Graph, list[list[int]]]:
    """Planted-partition graph with dense blocks on sparse background.

    ``sizes`` gives the block sizes (their sum must not exceed ``n``);
    remaining vertices are background-only.  Within-block edge probability
    is ``p_in``; all other pairs use ``p_out``.  With ``p_in = 1`` each
    block is a planted clique.

    Returns ``(graph, blocks)``.
    """
    if sum(sizes) > n:
        raise ParameterError(
            f"block sizes sum to {sum(sizes)} > vertex count {n}"
        )
    for check, name in ((p_in, "p_in"), (p_out, "p_out")):
        if not 0.0 <= check <= 1.0:
            raise ParameterError(f"{name} must be in [0,1], got {check}")
    rng = _rng(seed)
    perm = rng.permutation(n)
    blocks: list[list[int]] = []
    cursor = 0
    for s in sizes:
        blocks.append(sorted(perm[cursor:cursor + s].tolist()))
        cursor += s
    block_of = np.full(n, -1, dtype=np.int64)
    for bi, block in enumerate(blocks):
        block_of[block] = bi
    g = Graph(n)
    iu, ju = np.triu_indices(n, k=1)
    same = (block_of[iu] >= 0) & (block_of[iu] == block_of[ju])
    probs = np.where(same, p_in, p_out)
    mask = rng.random(iu.size) < probs
    for u, v in zip(iu[mask].tolist(), ju[mask].tolist()):
        g.add_edge(u, v)
    return g, blocks


def overlapping_cliques(
    n: int,
    clique_sizes: Sequence[int],
    overlap: int,
    p: float = 0.0,
    seed: int = 0,
) -> tuple[Graph, list[list[int]]]:
    """A chain of cliques, each sharing ``overlap`` vertices with the next.

    Produces the heavily-overlapping-clique regime where Improved BK's
    pivoting pays off (paper Section 2.2).  ``p`` adds background noise.

    Returns ``(graph, cliques)``.
    """
    if overlap < 0:
        raise ParameterError(f"overlap must be non-negative, got {overlap}")
    for s in clique_sizes:
        if s <= overlap:
            raise ParameterError(
                f"clique size {s} must exceed overlap {overlap}"
            )
    total = sum(clique_sizes) - overlap * max(0, len(clique_sizes) - 1)
    if total > n:
        raise ParameterError(
            f"chain needs {total} vertices but graph has {n}"
        )
    rng = _rng(seed)
    g = erdos_renyi(n, p, rng)
    cliques: list[list[int]] = []
    cursor = 0
    prev_tail: list[int] = []
    for s in clique_sizes:
        fresh = list(range(cursor, cursor + s - len(prev_tail)))
        members = prev_tail + fresh
        cursor += len(fresh)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                g.add_edge(u, v)
        cliques.append(sorted(members))
        prev_tail = members[-overlap:] if overlap else []
    return g, cliques


# ---------------------------------------------------------------------------
# Small deterministic families for tests
# ---------------------------------------------------------------------------

def path_graph(n: int) -> Graph:
    """Path ``0 - 1 - ... - (n-1)``."""
    return Graph.from_edges(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ParameterError(f"cycle needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges)


def complete_graph(n: int) -> Graph:
    """Complete graph K_n."""
    return Graph.from_edges(
        n, ((i, j) for i in range(n) for j in range(i + 1, n))
    )


def star_graph(n: int) -> Graph:
    """Star: vertex 0 adjacent to all others."""
    return Graph.from_edges(n, ((0, i) for i in range(1, n)))


def barbell_graph(k: int) -> Graph:
    """Two K_k cliques joined by a single bridge edge."""
    if k < 1:
        raise ParameterError(f"barbell clique size must be >= 1, got {k}")
    n = 2 * k
    g = Graph(n)
    for base in (0, k):
        for i in range(base, base + k):
            for j in range(i + 1, base + k):
                g.add_edge(i, j)
    if k >= 1 and n >= 2:
        g.add_edge(k - 1, k)
    return g
