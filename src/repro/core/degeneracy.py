"""Degeneracy ordering and k-core decomposition.

The degeneracy ``d`` of a graph is the smallest number such that every
subgraph has a vertex of degree at most ``d``.  A degeneracy ordering
(repeatedly peel a vertex of minimum remaining degree) gives:

* ``d + 1`` as an upper bound on the maximum clique size — used by
  :mod:`repro.core.maximum_clique` to bracket the FPT search, and
* the vertex ordering behind the degeneracy variant of Bron–Kerbosch
  (an extension beyond the paper's Base/Improved BK baselines).

The peel uses a lazy min-heap keyed on remaining degree: stale heap entries
(vertex already removed, or re-pushed at a lower degree) are skipped on
pop.  Cost is O(m log n), entirely adequate at this library's scales and
immune to the bucket-queue bookkeeping pitfalls.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.graph import Graph

__all__ = ["degeneracy_ordering", "core_numbers", "degeneracy"]


def _peel(g: Graph):
    """Yield ``(vertex, degree_at_removal)`` in min-degree peel order."""
    n = g.n
    deg = g.degrees()
    heap = [(int(deg[v]), v) for v in range(n)]
    heapq.heapify(heap)
    removed = np.zeros(n, dtype=bool)
    for _ in range(n):
        while True:
            d_v, v = heapq.heappop(heap)
            if not removed[v] and d_v == deg[v]:
                break
        removed[v] = True
        yield v, int(d_v)
        for u in g.neighbors(v).tolist():
            if not removed[u]:
                deg[u] -= 1
                heapq.heappush(heap, (int(deg[u]), u))


def degeneracy_ordering(g: Graph) -> tuple[list[int], int]:
    """Compute a degeneracy ordering.

    Returns ``(order, d)`` where ``order`` lists vertices in peel order
    (each vertex has at most ``d`` neighbors later in the order) and ``d``
    is the graph's degeneracy.  The empty graph returns ``([], 0)``.
    """
    order: list[int] = []
    d = 0
    for v, d_v in _peel(g):
        order.append(v)
        d = max(d, d_v)
    return order, d


def core_numbers(g: Graph) -> np.ndarray:
    """Core number of each vertex (largest k such that v is in the k-core).

    The core number of a vertex equals the running maximum of removal
    degrees at the point it is peeled.
    """
    core = np.zeros(g.n, dtype=np.int64)
    running = 0
    for v, d_v in _peel(g):
        running = max(running, d_v)
        core[v] = running
    return core


def degeneracy(g: Graph) -> int:
    """The degeneracy of ``g``."""
    return degeneracy_ordering(g)[1]
