"""The Clique Enumerator: the paper's maximal-clique algorithm (Section 2.3).

The algorithm proceeds level by level.  At level ``k`` it holds only the
*candidate* k-cliques — those contained in some (k+1)-clique — grouped into
sub-lists sharing a (k-1)-clique prefix (:class:`~repro.core.sublist.
CliqueSubList`).  One generation step (:func:`generate_next_level`, the
paper's ``GenerateKCliques`` of Figure 3) turns level ``k`` into level
``k+1``:

* for each sub-list and each tail vertex ``v`` (except the last), the
  common neighbors of ``prefix + (v,)`` are one bitwise AND:
  ``CN(prefix) & N(v)``;
* each higher tail ``u`` adjacent to ``v`` yields the (k+1)-clique
  ``prefix + (v, u)``;
* that clique is **maximal** iff ``CN(prefix+(v,)) & N(u)`` has no 1-bit —
  the paper's ``BitOneExists`` test — and is then emitted immediately;
* non-maximal cliques become the new sub-list for prefix ``prefix + (v,)``;
  sub-lists with fewer than two members are dropped (a single candidate
  can pair with nothing, and — per the paper's observation — a k-clique
  that shares no (k-1) vertices with another k-clique seeds no (k+1)-clique
  that would not be found elsewhere).

Consequently maximal cliques are emitted in **non-decreasing order of
size**, each exactly once, and memory holds only candidates — the two
properties the paper contrasts against Kose et al. and Bron–Kerbosch.

Drivers
-------
:func:`enumerate_maximal_cliques` runs the complete pipeline: seeding at
``k_min`` (edges for ``k_min <= 2``, the k-clique enumerator of
:mod:`repro.core.kclique` for ``k_min >= 3`` — the paper's ``Init_K``),
then levels until exhaustion or ``k_max``.  Per-level statistics (the
paper's ``N[k]``, ``M[k]``) are recorded for the memory-usage experiment
(Figure 9) and for the parallel machine model.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.core import bitset as bs
from repro.core.counters import IOStats, OpCounters
from repro.core.graph import Graph
from repro.core.sublist import CliqueSubList

__all__ = [
    "LevelStats",
    "EnumerationResult",
    "paper_formula_bytes",
    "generate_next_level",
    "generate_next_level_bitscan",
    "build_initial_sublists",
    "build_sublists_from_k_cliques",
    "enumerate_maximal_cliques",
]

#: bytes per stored vertex index (the paper's ``c``); we store int64.
INDEX_BYTES = 8
#: bytes per sub-list pointer in the paper's space formula.
POINTER_BYTES = 8


@dataclass(frozen=True)
class LevelStats:
    """Accounting for one level of the enumeration.

    Attributes
    ----------
    k:
        Clique size of this level's candidates.
    n_sublists:
        The paper's ``N[k]`` — number of candidate sub-lists.
    n_candidates:
        The paper's ``M[k]`` — total candidate k-cliques.
    maximal_emitted:
        Maximal cliques of size ``k`` emitted while generating this level.
    candidate_bytes:
        Measured bytes held by the candidate sub-lists at this level.
    paper_formula_bytes:
        The paper's estimate ``M[k]*c + N[k]*((k-1)*c + ceil(n/8))``
        plus ``N[k]`` pointers.
    """

    k: int
    n_sublists: int
    n_candidates: int
    maximal_emitted: int
    candidate_bytes: int
    paper_formula_bytes: int


def paper_formula_bytes(k: int, n_sublists: int, n_candidates: int,
                        n_vertices: int) -> int:
    """The paper's Section 2.3 space estimate for level ``k``."""
    bitstring = bs.n_words(n_vertices) * 8
    return (
        n_candidates * INDEX_BYTES
        + n_sublists * ((k - 1) * INDEX_BYTES + bitstring)
        + n_sublists * POINTER_BYTES
    )


@dataclass
class EnumerationResult:
    """The canonical result of one enumeration run, whatever the backend.

    Every registered :mod:`repro.engine` backend returns this type, so
    callers can switch substrates without touching their result handling.

    Attributes
    ----------
    cliques:
        Maximal cliques as sorted tuples, in emission order —
        non-decreasing size, canonical within a size.  Empty when a
        callback consumed them instead.
    level_stats:
        One :class:`LevelStats` per candidate level processed (empty for
        backends that do not track levels centrally, e.g. multiprocess).
    counters:
        Operation counts (feed the parallel machine model).
    completed:
        False when stopped early by ``k_max`` with candidates remaining.
    k_min, k_max:
        The requested size range.
    backend:
        Registry name of the backend that produced this result.
    io:
        Disk traffic of the run, for disk-backed substrates; ``None``
        for purely in-memory backends.
    wall_seconds:
        Wall-clock duration of the run as measured by the engine facade
        (0.0 when the backend was invoked directly).
    n_workers:
        Worker processes used (1 for sequential substrates).
    transfers:
        Sub-lists relayed between workers by the load-balancing
        scheduler (0 for sequential substrates).
    compute_domain:
        The resolved word representation the generation step ran on:
        ``"bitset"`` (raw ``uint64`` word arrays) or ``"wah"`` (the
        compressed-domain kernels of
        :mod:`repro.core.compressed_domain`).  Always the resolved
        value — a config's ``"auto"`` never appears here.
    kernel:
        The resolved WAH kernel implementation of the run:
        ``"python"`` (scalar per-pair kernels) or ``"numpy"`` (the
        batched structure-of-arrays kernels of
        :mod:`repro.core.wah_kernels`).  Like ``compute_domain``,
        always the resolved value; for pure-bitset runs it records
        what a WAH store/step of this run would have used.
    domain_stats:
        Compressed-domain telemetry, empty for pure bitset runs:
        ``decompressed_bytes`` (sub-list bytes materialised in raw form
        while streaming levels), ``decompressed_bytes_avoided`` (raw
        bytes that stayed compressed end to end), ``kernel_word_ops`` /
        ``kernel_ands`` (compressed words touched / kernel calls), and
        ``adj_rows_compressed``.  Deliberately *not* part of
        ``counters``: the operation counters follow the paper's
        representation-independent model and stay byte-identical across
        compute domains.
    level_seconds:
        Wall-clock seconds per candidate level as timed by the shared
        level loop — entry 0 is the seeding step, entry ``i`` the
        generation of ``level_stats[i]``.  Empty for backends that do
        not run the shared loop.
    load_balance:
        Measured per-worker load-balance summary of a real parallel
        run (the paper's Figure 8 signal, computed for actual threaded
        runs by :func:`repro.parallel.metrics.worker_load_balance`):
        ``n_workers``, ``mean_busy`` / ``std_busy`` seconds,
        ``std_over_mean`` against the paper's ±10% criterion, and the
        transfer count.  ``None`` for sequential runs and for parallel
        runs whose levels were too narrow to fan out.
    """

    cliques: list[tuple[int, ...]] = field(default_factory=list)
    level_stats: list[LevelStats] = field(default_factory=list)
    counters: OpCounters = field(default_factory=OpCounters)
    completed: bool = True
    k_min: int = 1
    k_max: int | None = None
    backend: str = "incore"
    io: IOStats | None = None
    wall_seconds: float = 0.0
    n_workers: int = 1
    transfers: int = 0
    compute_domain: str = "bitset"
    kernel: str = "python"
    domain_stats: dict = field(default_factory=dict)
    level_seconds: list[float] = field(default_factory=list)
    load_balance: dict | None = None

    @property
    def levels(self) -> int:
        """Highest candidate level reached (mirrors ``counters.levels``)."""
        return self.counters.levels

    def by_size(self) -> dict[int, list[tuple[int, ...]]]:
        """Group the collected cliques by size."""
        out: dict[int, list[tuple[int, ...]]] = {}
        for c in self.cliques:
            out.setdefault(len(c), []).append(c)
        return out

    def max_clique_size(self) -> int:
        """Largest maximal clique size seen (0 when none)."""
        return max((len(c) for c in self.cliques), default=0)

    def peak_candidate_bytes(self) -> int:
        """Peak measured candidate memory over all levels (Figure 9)."""
        return max(
            (ls.candidate_bytes for ls in self.level_stats), default=0
        )


# ---------------------------------------------------------------------------
# Core generation step (Figure 3 of the paper)
# ---------------------------------------------------------------------------

_TRIU_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _triu_pairs(t: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached upper-triangle index pairs for sub-lists of ``t`` tails."""
    cached = _TRIU_CACHE.get(t)
    if cached is None:
        cached = np.triu_indices(t, k=1)
        _TRIU_CACHE[t] = cached
    return cached


#: pair-scan batch budget: bounds the temporary test-matrix memory to
#: roughly ``PAIR_BATCH * n_words(n) * 8`` bytes.
PAIR_BATCH = 200_000


def _process_batch(
    batch: list[CliqueSubList],
    g: Graph,
    counters: OpCounters,
    emit: Callable[[tuple[int, ...]], None],
    out: list[CliqueSubList],
) -> None:
    """Run the pair scan for one batch of sub-lists with batched word ops."""
    adj = g.adj
    one = np.uint64(1)
    vi_parts: list[np.ndarray] = []
    vj_parts: list[np.ndarray] = []
    pair_counts: list[int] = []
    for sl in batch:
        iu, ju = _triu_pairs(int(sl.tails.size))
        vi_parts.append(sl.tails[iu])
        vj_parts.append(sl.tails[ju])
        pair_counts.append(int(iu.size))
    all_vi = np.concatenate(vi_parts)
    all_vj = np.concatenate(vj_parts)
    all_sid = np.repeat(
        np.arange(len(batch), dtype=np.int64),
        np.asarray(pair_counts, dtype=np.int64),
    )
    counters.pair_checks += int(all_vi.size)
    # adjacency bit of every (v_i, v_j) pair in one gather
    bits = (adj[all_vi, all_vj >> 6] >> (all_vj & 63).astype(np.uint64)) & one
    mask = bits.astype(bool)
    if not mask.any():
        return
    pvi = all_vi[mask]
    pvj = all_vj[mask]
    psid = all_sid[mask]
    n_pairs = int(pvi.size)
    counters.cliques_generated += n_pairs
    counters.bit_exist_checks += n_pairs
    counters.bit_and_ops += n_pairs
    # maximality for every generated clique at once:
    # CN(prefix) & N(v_i) & N(v_j) row-wise over the whole batch
    cn_stack = np.stack([sl.cn_words for sl in batch])
    tests = adj[pvi] & adj[pvj]
    np.bitwise_and(tests, cn_stack[psid], out=tests)
    nonmax = tests.any(axis=1)
    # group boundaries: (sub-list, v_i) pairs are emitted in canonical
    # order because sub-lists arrive prefix-sorted and iu ascends
    boundary = np.concatenate(
        ([True], (psid[1:] != psid[:-1]) | (pvi[1:] != pvi[:-1]))
    )
    starts = np.flatnonzero(boundary)
    n_nonmax = np.add.reduceat(nonmax, starts).astype(np.int64)
    ends = np.concatenate((starts[1:], [n_pairs]))
    sizes = ends - starts
    starts_l = starts.tolist()
    ends_l = ends.tolist()
    sizes_l = sizes.tolist()
    n_nonmax_l = n_nonmax.tolist()
    pvj_list = pvj.tolist()
    nonmax_list = nonmax.tolist()
    counters.bit_and_ops += len(starts_l)  # child CN derivations (paper)
    for gi in range(len(starts_l)):
        s = starts_l[gi]
        size = sizes_l[gi]
        nm = n_nonmax_l[gi]
        if nm == size and nm <= 1:
            continue  # nothing maximal to emit, nothing to retain
        e = ends_l[gi]
        sl = batch[int(psid[s])]
        v = int(pvi[s])
        child_prefix = sl.prefix + (v,)
        if nm < size:  # some generated cliques are maximal: emit them
            for idx in range(s, e):
                if not nonmax_list[idx]:
                    counters.maximal_emitted += 1
                    emit(child_prefix + (pvj_list[idx],))
        if nm > 1:  # at least two candidates: retain the sub-list
            cand = pvj[s:e][nonmax[s:e]]
            counters.sublists_created += 1
            out.append(
                CliqueSubList(child_prefix, cand, sl.cn_words & adj[v])
            )


def generate_next_level(
    sublists: list[CliqueSubList],
    g: Graph,
    counters: OpCounters,
    emit: Callable[[tuple[int, ...]], None],
) -> list[CliqueSubList]:
    """One ``GenerateKCliques`` step: level k sub-lists -> level k+1.

    Emits maximal (k+1)-cliques through ``emit`` and returns the candidate
    (k+1)-clique sub-lists.  Pure with respect to its inputs: sub-lists are
    never mutated, so the parallel driver can hand disjoint slices of
    ``sublists`` to different workers and merge the outputs.

    The implementation batches the pair scan across sub-lists — one
    adjacency gather for every (i, j) tail pair of the level, then the
    combined maximality test ``CN(prefix) & N(v_i) & N(v_j)`` row-wise —
    chunked to :data:`PAIR_BATCH` pairs to bound temporary memory.  The
    recorded counters follow the *paper's* operation model (one AND to
    derive each child common-neighbor string, one AND plus one
    BitOneExists per generated clique, one adjacency check per scanned
    pair), so analyses and the machine model stay faithful to Figure 3
    even though the word-level arithmetic is batched.
    """
    out: list[CliqueSubList] = []
    batch: list[CliqueSubList] = []
    batch_pairs = 0
    for sl in sublists:
        t = int(sl.tails.size)
        if t < 2:
            continue
        pairs = t * (t - 1) // 2
        if batch and batch_pairs + pairs > PAIR_BATCH:
            _process_batch(batch, g, counters, emit, out)
            batch = []
            batch_pairs = 0
        batch.append(sl)
        batch_pairs += pairs
    if batch:
        _process_batch(batch, g, counters, emit, out)
    return out


# ---------------------------------------------------------------------------
# Seeding
# ---------------------------------------------------------------------------

def build_initial_sublists(
    g: Graph,
    counters: OpCounters,
    emit: Callable[[tuple[int, ...]], None],
    emit_maximal_edges: bool,
) -> list[CliqueSubList]:
    """Level-2 sub-lists from the edge set (one per low-endpoint vertex).

    An edge ``{v, u}`` (``v < u``) lives in the sub-list whose prefix is
    ``(v,)``.  Maximal edges — no common neighbor — are emitted (when
    ``emit_maximal_edges``) and excluded from the candidates; sub-lists
    with fewer than two candidates are dropped.
    """
    adj = g.adj
    out: list[CliqueSubList] = []
    for v in range(g.n):
        nbrs = g.neighbors(v)
        tails = nbrs[nbrs > v]
        if tails.size == 0:
            continue
        counters.cliques_generated += int(tails.size)
        counters.bit_and_ops += int(tails.size)
        counters.bit_exist_checks += int(tails.size)
        tests = adj[tails] & adj[v][None, :]
        nonmax = tests.any(axis=1)
        if emit_maximal_edges:
            for u in tails[~nonmax].tolist():
                counters.maximal_emitted += 1
                emit((v, int(u)))
        cand = tails[nonmax]
        if cand.size > 1:
            counters.sublists_created += 1
            out.append(CliqueSubList((v,), cand, adj[v]))
    return out


def build_sublists_from_k_cliques(
    g: Graph,
    k: int,
    cliques: list[tuple[int, ...]],
    counters: OpCounters,
) -> list[CliqueSubList]:
    """Group non-maximal k-cliques into level-k sub-lists (Init_K seeding).

    ``cliques`` must be sorted tuples in canonical order (as produced by
    :func:`repro.core.kclique.enumerate_k_cliques`); maximal k-cliques must
    already have been emitted by the caller and excluded here.
    """
    if k < 2:
        raise ParameterError(f"sub-lists exist for k >= 2, got {k}")
    out: list[CliqueSubList] = []
    adj = g.adj
    i = 0
    cliques = sorted(cliques)
    while i < len(cliques):
        prefix = cliques[i][:-1]
        j = i
        tails: list[int] = []
        while j < len(cliques) and cliques[j][:-1] == prefix:
            tails.append(cliques[j][-1])
            j += 1
        if len(tails) > 1:
            cn = adj[prefix[0]].copy()
            for p in prefix[1:]:
                counters.bit_and_ops += 1
                np.bitwise_and(cn, adj[p], out=cn)
            counters.sublists_created += 1
            out.append(
                CliqueSubList(prefix, np.asarray(tails, dtype=np.int64), cn)
            )
        i = j
    return out


# ---------------------------------------------------------------------------
# Driver (compatibility shim over the engine layer)
# ---------------------------------------------------------------------------

def enumerate_maximal_cliques(
    g: Graph,
    k_min: int = 1,
    k_max: int | None = None,
    on_clique: Callable[[tuple[int, ...]], None] | None = None,
    max_cliques: int | None = None,
    max_candidate_bytes: int | None = None,
) -> EnumerationResult:
    """Enumerate all maximal cliques with sizes in ``[k_min, k_max]``.

    This is the historical entry point, now a thin shim over the
    ``"incore"`` backend of :mod:`repro.engine` — the unified driver that
    also powers the bit-scan, out-of-core, and multiprocess substrates.
    Prefer :class:`repro.engine.EnumerationEngine` for new code; this
    function remains for the paper-faithful sequential algorithm.

    Parameters
    ----------
    g:
        Input graph.
    k_min:
        Lower size bound (the paper's ``Init_K``).  For ``k_min >= 3`` the
        k-clique enumerator seeds the levels; smaller values start from
        edges (and vertices for ``k_min = 1``).
    k_max:
        Optional upper size bound; enumeration stops after emitting
        maximal cliques of this size.  ``completed`` is False when
        candidates remained.
    on_clique:
        Optional sink.  When given, cliques stream to it and are *not*
        collected in the result (the paper's terabyte-scale outputs make
        collection optional by necessity).
    max_cliques:
        Optional budget; exceeding it raises
        :class:`~repro.errors.BudgetExceeded`.
    max_candidate_bytes:
        Optional cap on measured candidate memory per level; exceeding it
        raises :class:`~repro.errors.BudgetExceeded`.

    Returns
    -------
    EnumerationResult
        Maximal cliques in non-decreasing size order plus per-level stats.

    Examples
    --------
    >>> from repro.core.generators import barbell_graph
    >>> res = enumerate_maximal_cliques(barbell_graph(3))
    >>> sorted(res.cliques)
    [(0, 1, 2), (2, 3), (3, 4, 5)]
    """
    from repro.engine import EnumerationConfig, run_enumeration

    config = EnumerationConfig(
        backend="incore",
        k_min=k_min,
        k_max=k_max,
        max_cliques=max_cliques,
        max_candidate_bytes=max_candidate_bytes,
    )
    return run_enumeration(g, config, on_clique=on_clique)


# ---------------------------------------------------------------------------
# Ablation: the paper's rejected bit-scan generation variant
# ---------------------------------------------------------------------------

def generate_next_level_bitscan(
    sublists: list[CliqueSubList],
    g: Graph,
    counters: OpCounters,
    emit: Callable[[tuple[int, ...]], None],
) -> list[CliqueSubList]:
    """The paper's alternative generation: scan the bit string directly.

    Section 2.3: "there is another way to generate (k+1)-cliques by
    taking advantage of the bit strings.  Going through each bit of the
    bit string, we are able to identify the common neighbors.  [...]
    However, we do not use this method because for each clique, every bit
    in the bit string of length n must be visited, which requires n
    comparisons while our method checks only the list of common neighbors
    whose size is bounded by (n-k)."

    Implemented for the ablation benchmark: output is identical to
    :func:`generate_next_level`; the cost model charges the full
    ``n``-bit scan per clique (tracked in ``counters.extra`` under
    ``bits_scanned``), and the wall-clock difference is measurable on
    sparse graphs where tail lists are far shorter than ``n``.
    """
    adj = g.adj
    n = g.n
    out: list[CliqueSubList] = []
    for sl in sublists:
        tails = sl.tails
        cn = sl.cn_words
        for v in tails.tolist()[:-1]:
            counters.bit_and_ops += 1
            child_cn = cn & adj[v]
            # mask away bits <= v, then scan the entire bit string
            masked = child_cn.copy()
            word = v >> 6
            masked[:word] = 0
            keep_high = ~((np.uint64(1) << np.uint64((v & 63) + 1))
                          - np.uint64(1)) if (v & 63) < 63 else np.uint64(0)
            masked[word] &= keep_high
            partners = bs.words_to_indices(masked, n)
            counters.extra["bits_scanned"] = (
                counters.extra.get("bits_scanned", 0) + n
            )
            if partners.size == 0:
                continue
            counters.cliques_generated += int(partners.size)
            counters.bit_and_ops += int(partners.size)
            counters.bit_exist_checks += int(partners.size)
            tests = adj[partners] & child_cn[None, :]
            nonmax = tests.any(axis=1)
            child_prefix = sl.prefix + (v,)
            for u in partners[~nonmax].tolist():
                counters.maximal_emitted += 1
                emit(child_prefix + (int(u),))
            cand = partners[nonmax]
            if cand.size > 1:
                counters.sublists_created += 1
                out.append(CliqueSubList(child_prefix, cand, child_cn))
    return out
