"""Memory accounting for the level-wise enumeration (Figure 9 substrate).

The paper measures "the memory used to keep all cliques of different sizes
during the procedure of clique enumeration" (Figure 9: rising to ~20 GB at
clique size 13 on the 2,895-vertex graph, then falling) and derives the
space bound

    ``M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(pointer)``

for candidate storage at level ``k``, along with the recurrences

    ``N[k+1] <= M[k] - 2*N[k]``
    ``M[k+1] <= (1/2) * (M[k] - 2*N[k]) * (n - k)``

This module turns recorded :class:`~repro.core.clique_enumerator.
LevelStats` into the Figure 9 series, checks the recurrences, and scales
bytes for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clique_enumerator import LevelStats

__all__ = [
    "MemoryProfile",
    "memory_profile",
    "check_paper_recurrences",
    "bytes_to_unit",
]

_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3, "TB": 1024**4}


def bytes_to_unit(n_bytes: int, unit: str = "MB") -> float:
    """Convert a byte count to the requested unit."""
    try:
        return n_bytes / _UNITS[unit]
    except KeyError:
        raise ValueError(
            f"unknown unit {unit!r}; expected one of {sorted(_UNITS)}"
        ) from None


@dataclass(frozen=True)
class MemoryProfile:
    """The Figure 9 series for one enumeration run.

    ``sizes[i]`` is the clique size (level) and ``measured_bytes[i]`` /
    ``formula_bytes[i]`` the candidate storage at that level, measured from
    the actual containers and from the paper's formula respectively.
    """

    sizes: list[int]
    measured_bytes: list[int]
    formula_bytes: list[int]
    candidates: list[int]
    sublists: list[int]

    def peak(self) -> tuple[int, int]:
        """(clique size at peak, measured peak bytes)."""
        if not self.sizes:
            return (0, 0)
        i = max(range(len(self.sizes)), key=lambda j: self.measured_bytes[j])
        return (self.sizes[i], self.measured_bytes[i])

    def series(self, unit: str = "MB") -> list[tuple[int, float]]:
        """(clique size, measured bytes in ``unit``) pairs."""
        return [
            (k, bytes_to_unit(b, unit))
            for k, b in zip(self.sizes, self.measured_bytes)
        ]


def memory_profile(level_stats: list[LevelStats]) -> MemoryProfile:
    """Build a :class:`MemoryProfile` from recorded level statistics."""
    return MemoryProfile(
        sizes=[ls.k for ls in level_stats],
        measured_bytes=[ls.candidate_bytes for ls in level_stats],
        formula_bytes=[ls.paper_formula_bytes for ls in level_stats],
        candidates=[ls.n_candidates for ls in level_stats],
        sublists=[ls.n_sublists for ls in level_stats],
    )


def check_paper_recurrences(
    level_stats: list[LevelStats], n_vertices: int
) -> list[str]:
    """Verify the level-growth bounds on a recorded run.

    Checks the paper's ``N[k+1] <= M[k] - 2N[k]`` exactly (a new sub-list
    with at least two members consumes a tail with at least two higher
    partners, so at most ``M[k] - 2N[k]`` tails qualify), and the
    *worst-case-safe* form of the M recurrence,
    ``M[k+1] <= (M[k] - 2N[k]) * (n - k)``.

    The paper states the M bound with an extra factor 1/2 from the
    higher-index-only comparison; that halving is an average-case argument
    — on dense graphs (e.g. K4 at level 2) the measured ``M[3]`` exceeds
    it — so the strict checker uses the un-halved bound and reports the
    halved one only informationally via the returned messages when
    exceeded.

    Returns a list of human-readable violations of the safe bounds (empty
    for every correct run).
    """
    issues: list[str] = []
    for prev, cur in zip(level_stats, level_stats[1:]):
        if cur.k != prev.k + 1:
            issues.append(
                f"levels not consecutive: {prev.k} -> {cur.k}"
            )
            continue
        cap_n = max(0, prev.n_candidates - 2 * prev.n_sublists)
        if cur.n_sublists > cap_n:
            issues.append(
                f"N[{cur.k}] = {cur.n_sublists} exceeds bound "
                f"M[{prev.k}] - 2N[{prev.k}] = {cap_n}"
            )
        cap_m = cap_n * max(0, n_vertices - prev.k)
        if cur.n_candidates > cap_m:
            issues.append(
                f"M[{cur.k}] = {cur.n_candidates} exceeds safe bound "
                f"(M[{prev.k}]-2N[{prev.k}])(n-k) = {cap_m}"
            )
    return issues
