"""Memory accounting for the level-wise enumeration (Figure 9 substrate).

The paper measures "the memory used to keep all cliques of different sizes
during the procedure of clique enumeration" (Figure 9: rising to ~20 GB at
clique size 13 on the 2,895-vertex graph, then falling) and derives the
space bound

    ``M[k]*c + N[k]*((k-1)*c + ceil(n/8)) + N[k]*sizeof(pointer)``

for candidate storage at level ``k``, along with the recurrences

    ``N[k+1] <= M[k] - 2*N[k]``
    ``M[k+1] <= (1/2) * (M[k] - 2*N[k]) * (n - k)``

This module turns recorded :class:`~repro.core.clique_enumerator.
LevelStats` into the Figure 9 series, checks the recurrences, and scales
bytes for reporting.  It also runs the recurrences *forward*:
:func:`predict_profile` turns ``(n_vertices, n_edges, k_min, seed
count)`` into a per-level upper bound on candidate storage — the number
the service's admission control charges a job against the machine
budget before the job ever runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.clique_enumerator import (
    INDEX_BYTES,
    POINTER_BYTES,
    LevelStats,
)
from repro.core.graph import Graph

__all__ = [
    "MemoryProfile",
    "memory_profile",
    "check_paper_recurrences",
    "bytes_to_unit",
    "PredictedProfile",
    "predict_profile",
    "seed_sublist_count",
    "parse_byte_size",
    "available_memory_bytes",
    "WAH_COMPRESSION_RATIO",
    "DISK_RESIDENT_RATIO",
]

_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3, "TB": 1024**4}

#: measured whole-level WAH compression of candidate storage on the
#: evaluation graphs (the paper's closing observation; the committed
#: ``benchmarks/baselines/engines_wah.json`` baseline pins ~5.2x).
#: Used to *calibrate* the raw prediction for the ``"wah"`` store —
#: an estimate for admission control, not a bound.
WAH_COMPRESSION_RATIO = 5.2

#: resident-set divisor for the ``"disk"`` store: levels spill to disk
#: and stream back chunk-by-chunk, so only a small working set of
#: sub-lists is resident at once.  Predicted resident bytes =
#: ``peak / DISK_RESIDENT_RATIO`` — again an admission estimate, not a
#: bound; disk is the substrate of last resort precisely because its
#: residency barely grows with the level.
DISK_RESIDENT_RATIO = 64


def bytes_to_unit(n_bytes: int, unit: str = "MB") -> float:
    """Convert a byte count to the requested unit."""
    try:
        return n_bytes / _UNITS[unit]
    except KeyError:
        raise ValueError(
            f"unknown unit {unit!r}; expected one of {sorted(_UNITS)}"
        ) from None


@dataclass(frozen=True)
class MemoryProfile:
    """The Figure 9 series for one enumeration run.

    ``sizes[i]`` is the clique size (level) and ``measured_bytes[i]`` /
    ``formula_bytes[i]`` the candidate storage at that level, measured from
    the actual containers and from the paper's formula respectively.
    """

    sizes: list[int]
    measured_bytes: list[int]
    formula_bytes: list[int]
    candidates: list[int]
    sublists: list[int]

    def peak(self) -> tuple[int, int]:
        """(clique size at peak, measured peak bytes)."""
        if not self.sizes:
            return (0, 0)
        i = max(range(len(self.sizes)), key=lambda j: self.measured_bytes[j])
        return (self.sizes[i], self.measured_bytes[i])

    def series(self, unit: str = "MB") -> list[tuple[int, float]]:
        """(clique size, measured bytes in ``unit``) pairs."""
        return [
            (k, bytes_to_unit(b, unit))
            for k, b in zip(self.sizes, self.measured_bytes)
        ]


def memory_profile(level_stats: list[LevelStats]) -> MemoryProfile:
    """Build a :class:`MemoryProfile` from recorded level statistics."""
    return MemoryProfile(
        sizes=[ls.k for ls in level_stats],
        measured_bytes=[ls.candidate_bytes for ls in level_stats],
        formula_bytes=[ls.paper_formula_bytes for ls in level_stats],
        candidates=[ls.n_candidates for ls in level_stats],
        sublists=[ls.n_sublists for ls in level_stats],
    )


def check_paper_recurrences(
    level_stats: list[LevelStats], n_vertices: int
) -> list[str]:
    """Verify the level-growth bounds on a recorded run.

    Checks the paper's ``N[k+1] <= M[k] - 2N[k]`` exactly (a new sub-list
    with at least two members consumes a tail with at least two higher
    partners, so at most ``M[k] - 2N[k]`` tails qualify), and the
    *worst-case-safe* form of the M recurrence,
    ``M[k+1] <= (M[k] - 2N[k]) * (n - k)``.

    The paper states the M bound with an extra factor 1/2 from the
    higher-index-only comparison; that halving is an average-case argument
    — on dense graphs (e.g. K4 at level 2) the measured ``M[3]`` exceeds
    it — so the strict checker uses the un-halved bound and reports the
    halved one only informationally via the returned messages when
    exceeded.

    Returns a list of human-readable violations of the safe bounds (empty
    for every correct run).
    """
    issues: list[str] = []
    for prev, cur in zip(level_stats, level_stats[1:]):
        if cur.k != prev.k + 1:
            issues.append(
                f"levels not consecutive: {prev.k} -> {cur.k}"
            )
            continue
        cap_n = max(0, prev.n_candidates - 2 * prev.n_sublists)
        if cur.n_sublists > cap_n:
            issues.append(
                f"N[{cur.k}] = {cur.n_sublists} exceeds bound "
                f"M[{prev.k}] - 2N[{prev.k}] = {cap_n}"
            )
        cap_m = cap_n * max(0, n_vertices - prev.k)
        if cur.n_candidates > cap_m:
            issues.append(
                f"M[{cur.k}] = {cur.n_candidates} exceeds safe bound "
                f"(M[{prev.k}]-2N[{prev.k}])(n-k) = {cap_m}"
            )
    return issues


# -- the predictive side ------------------------------------------------------


@dataclass(frozen=True)
class PredictedProfile:
    """A forward-run of the paper recurrences: per-level *upper bounds*.

    ``candidates[i]`` / ``sublists[i]`` cap the real ``M[k]`` / ``N[k]``
    at ``sizes[i]``, and ``predicted_bytes[i]`` is the measured-storage
    formula (``M*c + N*((k-1)*c + ceil(n/8)) + N*ptr``) evaluated on
    those caps — so it bounds the raw (``"memory"``-store) candidate
    bytes the run can reach at that level.  The wah/disk estimates in
    :meth:`peak_bytes` are *calibrated predictions*, not bounds.
    """

    n_vertices: int
    n_edges: int
    k_min: int
    sizes: list[int] = field(default_factory=list)
    candidates: list[int] = field(default_factory=list)
    sublists: list[int] = field(default_factory=list)
    predicted_bytes: list[int] = field(default_factory=list)
    wah_ratio: float = WAH_COMPRESSION_RATIO

    def peak(self) -> tuple[int, int]:
        """(clique size at the predicted peak, raw peak bytes)."""
        if not self.sizes:
            return (0, 0)
        i = max(
            range(len(self.sizes)), key=lambda j: self.predicted_bytes[j]
        )
        return (self.sizes[i], self.predicted_bytes[i])

    def peak_bytes(self, level_store: str | None = None) -> int:
        """The predicted peak for one storage substrate.

        ``"memory"`` (or ``None``) is the raw upper bound; ``"wah"``
        divides by the measured compression ratio; ``"disk"`` charges
        only the streamed working set (``DISK_RESIDENT_RATIO``).
        """
        raw = self.peak()[1]
        if level_store is None or level_store == "memory":
            return raw
        if level_store == "wah":
            return max(1, int(raw / self.wah_ratio)) if raw else 0
        if level_store == "disk":
            return max(1, raw // DISK_RESIDENT_RATIO) if raw else 0
        raise ValueError(
            f"unknown level store {level_store!r}; expected memory, "
            "wah, or disk"
        )


def _clique_count_bound(n: int, m: int, j: int) -> int:
    """Kruskal–Katona style cap on the number of ``j``-cliques.

    With ``x`` solving ``x(x-1)/2 = m`` (the clique order a complete
    graph with ``m`` edges would have), ``#K_j <= C(x, j)`` — the
    generalized binomial with real ``x``.  Zero once ``j`` exceeds
    ``x``, which is what terminates the forward run: no graph with
    ``m`` edges holds a clique larger than ``x``.
    """
    if j <= 0:
        return 0
    if j == 1:
        return n
    if m <= 0:
        return 0
    x = (1.0 + math.sqrt(1.0 + 8.0 * m)) / 2.0
    if x < j:
        return 0
    prod = 1.0
    for i in range(j):
        prod *= (x - i) / (i + 1)
    return math.floor(prod)


def predict_profile(
    n_vertices: int,
    n_edges: int,
    k_min: int = 1,
    n_seed_sublists: int | None = None,
    *,
    k_max: int | None = None,
    wah_ratio: float = WAH_COMPRESSION_RATIO,
) -> PredictedProfile:
    """Forward-run the paper recurrences into a per-level byte bound.

    Starting from the seed level (level 2 holds at most the ``m``
    edges; ``n_seed_sublists`` — the *exact* count from
    :func:`seed_sublist_count`, or any under-estimate — sharpens the
    2→3 transition through ``N[3] <= M[2] - 2N[2]``), every later
    level is capped by the safe form of the M recurrence
    (``M[k+1] <= (M[k] - 2N[k])(n-k) <= M[k](n-k)``) intersected with
    the clique-count bound of :func:`_clique_count_bound`, which both
    keeps the caps from exploding and terminates the run: the cap hits
    zero no later than clique size ``~sqrt(2m)``.

    Every cap is a true upper bound on the real ``M[k]`` / ``N[k]``,
    so ``predicted_bytes`` bounds the raw candidate storage a
    ``"memory"``-store run can measure — the guarantee the property
    harness pins across the graph-family matrix.
    """
    if n_vertices < 0 or n_edges < 0:
        raise ValueError(
            f"need n_vertices >= 0 and n_edges >= 0, got "
            f"{n_vertices}/{n_edges}"
        )
    if k_min < 1:
        raise ValueError(f"k_min must be >= 1, got {k_min}")
    if n_seed_sublists is not None and n_seed_sublists < 0:
        raise ValueError(
            f"n_seed_sublists must be >= 0, got {n_seed_sublists}"
        )
    profile = PredictedProfile(
        n_vertices=n_vertices,
        n_edges=n_edges,
        k_min=k_min,
        wah_ratio=wah_ratio,
    )
    n, m = n_vertices, n_edges
    start = max(2, k_min)
    words = (n + 63) // 64
    bitstring = words * 8

    def level_bytes(k: int, cap_m: int, cap_n: int) -> int:
        return cap_m * INDEX_BYTES + cap_n * (
            (k - 1) * INDEX_BYTES + bitstring + POINTER_BYTES
        )

    # caps at the first stored level
    cap_m = m
    cap_n = min(n, m // 2)
    if start == 2 and n_seed_sublists is not None:
        cap_n = min(cap_n, n_seed_sublists)
    surv = None  # exact-seed M[k]-2N[k] bound, one transition only
    if start == 2 and n_seed_sublists is not None:
        surv = max(0, m - 2 * n_seed_sublists)
    for k in range(3, start + 1):
        # chain up to a k_min > 2 seed: N unknown, so the safe M bound
        # degrades to M[k+1] <= M[k] * (n - k)
        cap_m = min(cap_m * max(0, n - (k - 1)), _clique_count_bound(n, m, k))
        cap_n = min(cap_m // 2, _clique_count_bound(n, m, k - 1))
    k = start
    while cap_m >= 2 and (k_max is None or k <= k_max):
        profile.sizes.append(k)
        profile.candidates.append(cap_m)
        profile.sublists.append(cap_n)
        profile.predicted_bytes.append(level_bytes(k, cap_m, cap_n))
        prev_m = cap_m
        growth = surv if surv is not None else prev_m
        surv = None
        cap_m = min(
            growth * max(0, n - k), _clique_count_bound(n, m, k + 1)
        )
        cap_n = min(growth, cap_m // 2, _clique_count_bound(n, m, k))
        k += 1
    return profile


def seed_sublist_count(g: Graph) -> int:
    """Exact ``N[2]``: level-2 sub-lists the seeding will build.

    Mirrors ``build_initial_sublists`` — vertex ``v`` contributes a
    sub-list iff at least two of its higher-numbered neighbors form
    non-maximal edges with it (an edge is non-maximal when the
    endpoints share a common neighbor).  Exactness matters: the 2→3
    recurrence transition in :func:`predict_profile` is only a valid
    bound for ``n_seed_sublists <= N[2]``.
    """
    adj = g.adj
    count = 0
    for v in range(g.n):
        nbrs = g.neighbors(v)
        tails = nbrs[nbrs > v]
        if tails.size < 2:
            continue
        nonmax = (adj[tails] & adj[v][None, :]).any(axis=1)
        if int(nonmax.sum()) > 1:
            count += 1
    return count


def parse_byte_size(text: str) -> int:
    """Parse a human byte size (``"512M"``, ``"2.5GB"``, ``"4096"``).

    Suffixes are the binary units of :data:`_UNITS`, case-insensitive,
    with or without the trailing ``B``.  Used by ``repro serve
    --memory-budget``.
    """
    raw = text.strip()
    number = raw
    unit = "B"
    for i, ch in enumerate(raw):
        if ch not in "0123456789._":
            number, unit = raw[:i], raw[i:].strip().upper()
            break
    if unit in ("K", "M", "G", "T"):
        unit += "B"
    if not number or unit not in _UNITS:
        raise ValueError(
            f"cannot parse byte size {text!r}; expected e.g. 4096, "
            "512M, or 2.5GB"
        )
    try:
        value = float(number)
    except ValueError:
        raise ValueError(
            f"cannot parse byte size {text!r}; expected e.g. 4096, "
            "512M, or 2.5GB"
        ) from None
    if value < 0:
        raise ValueError(f"byte size must be >= 0, got {text!r}")
    return int(value * _UNITS[unit])


def available_memory_bytes() -> int | None:
    """The machine's currently available memory, or ``None``.

    Reads ``MemAvailable`` from ``/proc/meminfo`` (Linux); other
    platforms return ``None`` and the auto-store policy falls back to
    preferring the in-memory substrate.
    """
    try:
        with open("/proc/meminfo", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None
