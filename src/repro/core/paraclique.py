"""Paraclique extraction.

The paper's introduction: "The ability to generate cliques, paracliques and
other forms of densely-connected subgraphs allows us to separate these
causes, and to place them in a larger systems-level graph."

A *paraclique* (Chesler & Langston) relaxes the clique requirement: start
from a maximum (or supplied) clique and repeatedly absorb ("glom") any
outside vertex adjacent to all but at most ``glom`` members of the current
set.  The proportional variant requires adjacency to at least a fixed
fraction of members, which behaves better as the set grows.

Both variants are deterministic: among eligible vertices the one with the
most member-neighbors is absorbed first, ties broken by lowest index.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.core.graph import Graph
from repro.core.maximum_clique import maximum_clique

__all__ = ["paraclique", "proportional_paraclique", "subgraph_density"]


def _member_neighbor_counts(g: Graph, members: list[int]) -> np.ndarray:
    """For every vertex, how many of ``members`` it is adjacent to."""
    counts = np.zeros(g.n, dtype=np.int64)
    for v in members:
        row = np.unpackbits(
            g.adj[v].view(np.uint8), bitorder="little"
        )[: g.n]
        counts += row
    return counts


def paraclique(
    g: Graph,
    glom: int = 1,
    base: Sequence[int] | None = None,
) -> list[int]:
    """Absorb vertices missing at most ``glom`` edges to the current set.

    Parameters
    ----------
    g: input graph.
    glom: maximum number of members a vertex may be non-adjacent to.
    base: starting clique; the maximum clique when omitted.

    Returns
    -------
    Sorted vertex list containing the base clique.
    """
    if glom < 0:
        raise ParameterError(f"glom factor must be >= 0, got {glom}")
    members = list(base) if base is not None else maximum_clique(g)
    if base is not None and not g.is_clique(members):
        raise ParameterError("base must be a clique")
    member_set = set(members)
    while True:
        counts = _member_neighbor_counts(g, members)
        need = len(members) - glom
        best_v, best_c = -1, -1
        for v in range(g.n):
            if v in member_set:
                continue
            c = int(counts[v])
            if c >= need and c > best_c:
                best_c, best_v = c, v
        if best_v < 0:
            return sorted(members)
        members.append(best_v)
        member_set.add(best_v)


def proportional_paraclique(
    g: Graph,
    fraction: float = 0.9,
    base: Sequence[int] | None = None,
) -> list[int]:
    """Absorb vertices adjacent to at least ``fraction`` of members."""
    if not 0.0 < fraction <= 1.0:
        raise ParameterError(
            f"fraction must be in (0, 1], got {fraction}"
        )
    members = list(base) if base is not None else maximum_clique(g)
    if base is not None and not g.is_clique(members):
        raise ParameterError("base must be a clique")
    member_set = set(members)
    while True:
        counts = _member_neighbor_counts(g, members)
        need = int(np.ceil(fraction * len(members)))
        best_v, best_c = -1, -1
        for v in range(g.n):
            if v in member_set:
                continue
            c = int(counts[v])
            if c >= need and c > best_c:
                best_c, best_v = c, v
        if best_v < 0:
            return sorted(members)
        members.append(best_v)
        member_set.add(best_v)


def subgraph_density(g: Graph, vertices: Sequence[int]) -> float:
    """Edge density of the induced subgraph (1.0 for cliques, sizes < 2)."""
    vs = list(vertices)
    k = len(vs)
    if k < 2:
        return 1.0
    edges = sum(
        1
        for i, u in enumerate(vs)
        for v in vs[i + 1:]
        if g.has_edge(u, v)
    )
    return edges / (k * (k - 1) / 2)
