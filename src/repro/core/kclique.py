"""The paper's k-clique enumerator (Section 2.2).

Enumerates *all* cliques of exactly size ``k`` — maximal and non-maximal —
in canonical (lexicographic) order.  It is Base Bron–Kerbosch altered in
the two respects the paper lists:

1. When ``|COMPSUB| == k`` the child sets ``NEW_CANDIDATES`` and
   ``NEW_NOT`` are examined: both empty means the k-clique is maximal,
   otherwise it is non-maximal; either way it is output and the branch
   returns (no deeper extension).
2. A boundary condition cuts any node where
   ``|COMPSUB| + |CANDIDATES| < k`` — too few vertices remain to ever
   reach size ``k``.

Additionally, all vertices of degree less than ``k - 1`` are eliminated
during preprocessing ("such vertices cannot be members of any k-clique by
definition").  The elimination is run to a fixed point — removing a vertex
can push a neighbor below the threshold — which is the (k-1)-core and only
removes vertices the single pass would eventually starve anyway.

The non-maximal k-cliques seed the Clique Enumerator of
:mod:`repro.core.clique_enumerator` at a user-chosen lower bound (the
``Init_K`` of the paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.core import bitset as bs
from repro.core.counters import OpCounters
from repro.core.graph import Graph

__all__ = ["KCliqueResult", "enumerate_k_cliques", "k_core_mask"]

_ONE = np.uint64(1)


@dataclass
class KCliqueResult:
    """Output of :func:`enumerate_k_cliques`.

    Attributes
    ----------
    k:
        The clique size requested.
    maximal:
        k-cliques that are maximal in the graph, canonical order.
    non_maximal:
        k-cliques contained in some (k+1)-clique, canonical order.
        These are the Clique Enumerator's seed candidates.
    counters:
        Operation counts accumulated during the search.
    """

    k: int
    maximal: list[tuple[int, ...]] = field(default_factory=list)
    non_maximal: list[tuple[int, ...]] = field(default_factory=list)
    counters: OpCounters = field(default_factory=OpCounters)

    def all_cliques(self) -> list[tuple[int, ...]]:
        """All k-cliques in canonical order."""
        return sorted(self.maximal + self.non_maximal)


def k_core_mask(g: Graph, k: int) -> np.ndarray:
    """Boolean mask of vertices surviving iterated degree-(k-1) elimination.

    A vertex needs at least ``k - 1`` neighbors to belong to a k-clique;
    eliminating one vertex can disqualify others, so the rule is applied to
    a fixed point (equivalently: the (k-1)-core membership mask).
    """
    alive = np.ones(g.n, dtype=bool)
    deg = g.degrees().astype(np.int64)
    changed = True
    while changed:
        changed = False
        for v in range(g.n):
            if alive[v] and deg[v] < k - 1:
                alive[v] = False
                changed = True
                for u in g.neighbors(v).tolist():
                    if alive[u]:
                        deg[u] -= 1
    return alive


def enumerate_k_cliques(
    g: Graph, k: int, counters: OpCounters | None = None
) -> KCliqueResult:
    """Enumerate every k-clique, split into maximal and non-maximal.

    Parameters
    ----------
    g: input graph.
    k: clique size, ``k >= 1``.
    counters: optional shared operation counters.

    Returns
    -------
    KCliqueResult
        Cliques as sorted tuples in canonical order.

    Notes
    -----
    ``k = 1`` returns each vertex; isolated vertices are the maximal ones.
    ``k = 2`` returns each edge; edges without common neighbors *and*
    without a proper superset... an edge is maximal iff its endpoints have
    no common neighbor.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    c = counters if counters is not None else OpCounters()
    result = KCliqueResult(k=k, counters=c)
    n = g.n
    if n == 0:
        return result

    alive = k_core_mask(g, k)
    alive_words = bs.indices_to_words(np.flatnonzero(alive).tolist(), n)

    if k == 1:
        for v in range(n):
            clique = (v,)
            if g.degree(v) == 0:
                result.maximal.append(clique)
            else:
                result.non_maximal.append(clique)
            c.cliques_generated += 1
        c.maximal_emitted += len(result.maximal)
        return result

    adj = g.adj

    def extend(r: list[int], p: np.ndarray, x: np.ndarray) -> None:
        # Boundary condition: |COMPSUB| + |CANDIDATES| < k can never reach k.
        c.bit_exist_checks += 1
        if len(r) + int(np.bitwise_count(p).sum()) < k:
            return
        for v in bs.words_to_indices(p, n).tolist():
            p[v >> 6] &= ~(_ONE << np.uint64(v & 63))
            c.bit_and_ops += 2
            new_p = p & adj[v]
            new_x = x & adj[v]
            r.append(v)
            if len(r) == k:
                clique = tuple(r)
                c.cliques_generated += 1
                c.bit_exist_checks += 2
                if not new_p.any() and not new_x.any():
                    result.maximal.append(clique)
                    c.maximal_emitted += 1
                else:
                    result.non_maximal.append(clique)
            else:
                extend(r, new_p, new_x)
            r.pop()
            x[v >> 6] |= _ONE << np.uint64(v & 63)

    p0 = alive_words.copy()
    x0 = np.zeros_like(p0)
    extend([], p0, x0)
    return result
