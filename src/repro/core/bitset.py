"""Fixed-universe bitsets backed by ``numpy.uint64`` words.

This module implements the paper's central data representation: the
"globally addressable bitmap memory index".  A :class:`BitSet` over a
universe of ``n`` vertices stores one bit per vertex in ``ceil(n/64)``
machine words.  The clique algorithms in :mod:`repro.core` reduce their two
hot operations to

* *common-neighbor intersection* — one vectorised bitwise AND over the word
  arrays, and
* *maximality testing* — "does any 1-bit exist", a vectorised any-nonzero
  reduction,

exactly as described in Section 2.3 of the paper ("The procedure to decide
if a clique is maximal is just to check bit '1' existence in a bit string of
length n").

Two layers are provided:

``BitSet``
    A safe, ergonomic wrapper with full set algebra, used by the public API
    and the tests.

module-level word functions (``words_and``, ``words_any`` ...)
    Allocation-free primitives over raw ``uint64`` arrays used by the
    enumeration hot loops, where constructing wrapper objects per operation
    would dominate run time.  The raw arrays of a :class:`BitSet` are
    exposed via the ``words`` attribute.

Tail invariant
--------------
When ``n`` is not a multiple of 64, the unused high bits of the last word
are always zero.  Every operation that could set them (complement,
``set_all``) re-applies the tail mask, so ``count`` and ``any`` never see
phantom bits.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import BitSetError

__all__ = [
    "BitSet",
    "WORD_BITS",
    "n_words",
    "tail_mask",
    "words_and",
    "words_or",
    "words_andnot",
    "words_any",
    "words_count",
    "words_to_indices",
    "indices_to_words",
]

#: Number of bits per storage word.
WORD_BITS = 64

_ONE = np.uint64(1)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def n_words(n: int) -> int:
    """Number of 64-bit words needed to hold ``n`` bits."""
    if n < 0:
        raise BitSetError(f"universe size must be non-negative, got {n}")
    return (n + WORD_BITS - 1) // WORD_BITS


def tail_mask(n: int) -> np.uint64:
    """Mask of valid bits in the final word of an ``n``-bit set.

    Returns the all-ones word when ``n`` is a multiple of 64 (or zero).
    """
    rem = n % WORD_BITS
    if rem == 0:
        return _FULL
    return np.uint64((1 << rem) - 1)


# ---------------------------------------------------------------------------
# Raw word-array primitives (hot path)
# ---------------------------------------------------------------------------

def words_and(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = a & b`` over uint64 word arrays; returns ``out``."""
    return np.bitwise_and(a, b, out=out)


def words_or(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = a | b`` over uint64 word arrays; returns ``out``."""
    return np.bitwise_or(a, b, out=out)


def words_andnot(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = a & ~b`` over uint64 word arrays; returns ``out``."""
    np.bitwise_not(b, out=out)
    return np.bitwise_and(a, out, out=out)


def words_any(a: np.ndarray) -> bool:
    """True when any bit is set (the paper's ``BitOneExists``)."""
    return bool(a.any())


def words_count(a: np.ndarray) -> int:
    """Population count over a word array."""
    return int(np.bitwise_count(a).sum())


def words_to_indices(a: np.ndarray, n: int) -> np.ndarray:
    """Indices of set bits, ascending, as an ``int64`` array.

    ``n`` bounds the result so tail bits (which are zero by invariant) never
    appear even if the invariant were violated upstream.
    """
    bits = np.unpackbits(a.view(np.uint8), bitorder="little")
    idx = np.flatnonzero(bits[:n])
    return idx.astype(np.int64, copy=False)


def indices_to_words(indices: Iterable[int], n: int) -> np.ndarray:
    """Build a word array with the given bit indices set."""
    words = np.zeros(n_words(n), dtype=np.uint64)
    idx = np.asarray(list(indices), dtype=np.int64)
    if idx.size == 0:
        return words
    if idx.min() < 0 or idx.max() >= n:
        raise BitSetError(
            f"bit index out of range for universe of size {n}: "
            f"[{idx.min()}, {idx.max()}]"
        )
    w, b = np.divmod(idx, WORD_BITS)
    np.bitwise_or.at(words, w, _ONE << b.astype(np.uint64))
    return words


# ---------------------------------------------------------------------------
# BitSet wrapper
# ---------------------------------------------------------------------------

class BitSet:
    """A set of integers drawn from ``{0, ..., n-1}`` stored as a bitmap.

    Parameters
    ----------
    n:
        Universe size.  All operands of binary operations must share it.
    words:
        Optional pre-built ``uint64`` word array (not copied).  Intended for
        internal use; the tail invariant is the caller's responsibility.

    Examples
    --------
    >>> s = BitSet.from_indices(10, [1, 3, 5])
    >>> t = BitSet.from_indices(10, [3, 5, 7])
    >>> sorted(s & t)
    [3, 5]
    >>> (s | t).count()
    4
    """

    __slots__ = ("n", "words")

    def __init__(self, n: int, words: np.ndarray | None = None):
        if n < 0:
            raise BitSetError(f"universe size must be non-negative, got {n}")
        self.n = n
        if words is None:
            self.words = np.zeros(n_words(n), dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (n_words(n),):
                raise BitSetError(
                    f"words must be uint64[{n_words(n)}], got "
                    f"{words.dtype}[{words.shape}]"
                )
            self.words = words

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, n: int) -> "BitSet":
        """Empty set over a universe of size ``n``."""
        return cls(n)

    @classmethod
    def ones(cls, n: int) -> "BitSet":
        """Full set ``{0, ..., n-1}``."""
        s = cls(n)
        s.words[:] = _FULL
        if s.words.size:
            s.words[-1] &= tail_mask(n)
        return s

    @classmethod
    def from_indices(cls, n: int, indices: Iterable[int]) -> "BitSet":
        """Set containing exactly the given indices."""
        return cls(n, indices_to_words(indices, n))

    def copy(self) -> "BitSet":
        """Independent copy."""
        return BitSet(self.n, self.words.copy())

    # -- element access ----------------------------------------------------

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise BitSetError(f"index {i} out of range for universe {self.n}")

    def add(self, i: int) -> None:
        """Insert element ``i``."""
        self._check_index(i)
        self.words[i // WORD_BITS] |= _ONE << np.uint64(i % WORD_BITS)

    def discard(self, i: int) -> None:
        """Remove element ``i`` if present."""
        self._check_index(i)
        self.words[i // WORD_BITS] &= ~(_ONE << np.uint64(i % WORD_BITS))

    def __contains__(self, i: int) -> bool:
        if not 0 <= i < self.n:
            return False
        return bool(
            (self.words[i // WORD_BITS] >> np.uint64(i % WORD_BITS)) & _ONE
        )

    # -- queries -----------------------------------------------------------

    def any(self) -> bool:
        """True when the set is non-empty (paper's ``BitOneExists``)."""
        return words_any(self.words)

    def count(self) -> int:
        """Number of elements (population count)."""
        return words_count(self.words)

    __len__ = count

    def __bool__(self) -> bool:
        return self.any()

    def to_indices(self) -> np.ndarray:
        """Ascending ``int64`` array of members."""
        return words_to_indices(self.words, self.n)

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_indices().tolist())

    def min(self) -> int:
        """Smallest member; raises :class:`BitSetError` when empty."""
        nz = np.flatnonzero(self.words)
        if nz.size == 0:
            raise BitSetError("min() of empty BitSet")
        w = int(nz[0])
        word = int(self.words[w])
        return w * WORD_BITS + ((word & -word).bit_length() - 1)

    def max(self) -> int:
        """Largest member; raises :class:`BitSetError` when empty."""
        nz = np.flatnonzero(self.words)
        if nz.size == 0:
            raise BitSetError("max() of empty BitSet")
        w = int(nz[-1])
        return w * WORD_BITS + int(self.words[w]).bit_length() - 1

    # -- set algebra -------------------------------------------------------

    def _check_compatible(self, other: "BitSet") -> None:
        if not isinstance(other, BitSet):
            raise TypeError(f"expected BitSet, got {type(other).__name__}")
        if other.n != self.n:
            raise BitSetError(
                f"universe mismatch: {self.n} vs {other.n}"
            )

    def __and__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        return BitSet(self.n, self.words & other.words)

    def __or__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        return BitSet(self.n, self.words | other.words)

    def __xor__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        return BitSet(self.n, self.words ^ other.words)

    def __sub__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        return BitSet(self.n, self.words & ~other.words)

    def __iand__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        self.words &= other.words
        return self

    def __ior__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        self.words |= other.words
        return self

    def __ixor__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        self.words ^= other.words
        return self

    def __isub__(self, other: "BitSet") -> "BitSet":
        self._check_compatible(other)
        self.words &= ~other.words
        return self

    def complement(self) -> "BitSet":
        """Set of all universe elements not in this set."""
        out = BitSet(self.n, ~self.words)
        if out.words.size:
            out.words[-1] &= tail_mask(self.n)
        return out

    def intersection_count(self, other: "BitSet") -> int:
        """``|self & other|`` without materialising the intersection."""
        self._check_compatible(other)
        return int(np.bitwise_count(self.words & other.words).sum())

    def isdisjoint(self, other: "BitSet") -> bool:
        """True when the sets share no element."""
        self._check_compatible(other)
        return not bool((self.words & other.words).any())

    def issubset(self, other: "BitSet") -> bool:
        """True when every member of ``self`` is in ``other``."""
        self._check_compatible(other)
        return not bool((self.words & ~other.words).any())

    def issuperset(self, other: "BitSet") -> bool:
        """True when every member of ``other`` is in ``self``."""
        return other.issubset(self)

    # -- equality / hashing / repr ------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitSet):
            return NotImplemented
        return self.n == other.n and bool(
            np.array_equal(self.words, other.words)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.words.tobytes()))

    def __repr__(self) -> str:
        members = self.to_indices()
        shown = ", ".join(map(str, members[:12]))
        more = "" if members.size <= 12 else f", ... ({members.size} total)"
        return f"BitSet(n={self.n}, {{{shown}{more}}})"

    # -- storage -----------------------------------------------------------

    def nbytes(self) -> int:
        """Bytes of bitmap storage (the paper's ``ceil(n/8)`` figure)."""
        return self.words.nbytes
