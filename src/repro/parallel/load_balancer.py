"""Centralised dynamic load balancing (paper Section 2.3).

The paper's task scheduler "collects the results from threads, makes the
load-balancing decision, and redistributes the work", transferring work
from heavy to light threads when "the difference between two threads is
greater than a certain threshold", where "the threshold is determined
based on the graph size, the total amount of current load, and differences
of their loads from the average load (details are suppressed)".

The suppressed rule is reconstructed here with documented constants:

* ``avg = total_load / p``;
* ``threshold = max(rel_tolerance * avg, abs_floor_per_vertex * n)`` —
  the relative term keeps transfers proportional to the current load (the
  paper's "total amount of current load"), the absolute floor prevents
  churn on tiny loads (the paper's "graph size" term);
* while the heaviest thread exceeds the lightest by more than the
  threshold, the largest item that fits is moved from the heaviest to the
  lightest thread ("light-loaded threads will help the heaviest-loaded
  thread"), never overshooting below the average.

Transfers pass addresses, not data — the receiving thread simply pays the
remote-access penalty when it executes a transferred item (see
:mod:`repro.parallel.machine`).

The balancer works on *estimated* work (tail-count based,
:meth:`~repro.core.sublist.CliqueSubList.work_estimate`), exactly like the
real scheduler must: true costs are only known after execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["WorkItem", "BalanceDecision", "LoadBalancer"]


@dataclass
class WorkItem:
    """One schedulable unit: a sub-list awaiting expansion.

    Attributes
    ----------
    item_id: stable identifier within the level.
    estimate: scheduler-visible work estimate.
    true_work: actual work units (charged at execution time).
    owner: processor currently holding the item.
    remote: True when the item was transferred away from the processor
        whose memory holds it.
    """

    item_id: int
    estimate: int
    true_work: int
    owner: int
    remote: bool = False


@dataclass
class BalanceDecision:
    """Outcome of one rebalancing round."""

    transfers: list[tuple[int, int, int]] = field(default_factory=list)
    """(item_id, from_processor, to_processor) per move."""

    transferred_estimate: int = 0
    threshold: float = 0.0

    @property
    def n_transfers(self) -> int:
        return len(self.transfers)


class LoadBalancer:
    """The centralised dynamic scheduler's balancing policy.

    Parameters
    ----------
    n_processors: number of threads being balanced.
    graph_size: vertex count of the instance (sets the absolute floor).
    rel_tolerance: imbalance fraction of the average load tolerated
        before transfers trigger.
    abs_floor_per_vertex: work units of tolerated imbalance per graph
        vertex (suppresses churn on small loads).
    max_rounds: safety bound on the greedy transfer loop.
    """

    def __init__(
        self,
        n_processors: int,
        graph_size: int,
        rel_tolerance: float = 0.10,
        abs_floor_per_vertex: float = 0.02,
        remote_penalty: float = 1.3,
        max_rounds: int = 10_000,
    ):
        if n_processors < 1:
            raise ParameterError(
                f"processor count must be >= 1, got {n_processors}"
            )
        if not 0.0 <= rel_tolerance:
            raise ParameterError("rel_tolerance must be >= 0")
        if remote_penalty < 1.0:
            raise ParameterError("remote_penalty must be >= 1")
        self.n_processors = n_processors
        self.graph_size = graph_size
        self.rel_tolerance = rel_tolerance
        self.abs_floor_per_vertex = abs_floor_per_vertex
        self.remote_penalty = remote_penalty
        self.max_rounds = max_rounds

    def _cost(self, item: WorkItem) -> float:
        """Scheduler-visible cost of an item on its current processor.

        A transferred item executes against remote memory, so the smart
        scheduler books it at ``estimate * remote_penalty`` — the paper's
        warning that careless balancing "will mitigate the benefit of
        balanced loads and even worsen the problem" is exactly the error
        of booking transfers at face value.
        """
        return item.estimate * (
            self.remote_penalty if item.remote else 1.0
        )

    # -- initial distribution ------------------------------------------------

    def initial_distribution(self, items: list[WorkItem]) -> None:
        """Assign level-seed items evenly ("divides all k-cliques evenly").

        Items are dealt in descending estimate order onto the currently
        lightest processor (LPT rule), which is the natural reading of an
        even division by load rather than by count.  Owners are written in
        place; seed items are local to their owner.
        """
        loads = [0] * self.n_processors
        for item in sorted(items, key=lambda it: (-it.estimate, it.item_id)):
            t = min(range(self.n_processors), key=lambda i: (loads[i], i))
            item.owner = t
            item.remote = False
            loads[t] += item.estimate

    # -- threshold rule --------------------------------------------------------

    def threshold(self, total_load: float) -> float:
        """The reconstructed decision threshold (see module docstring)."""
        avg = total_load / self.n_processors
        return max(
            self.rel_tolerance * avg,
            self.abs_floor_per_vertex * self.graph_size,
        )

    # -- rebalancing -----------------------------------------------------------

    def rebalance(self, items: list[WorkItem]) -> BalanceDecision:
        """Move items from heavy to light processors until balanced.

        Mutates the ``owner``/``remote`` fields of transferred items and
        returns the decision record.  Estimates drive every choice; true
        work is never consulted (the scheduler cannot see the future).
        """
        decision = BalanceDecision()
        if self.n_processors == 1 or not items:
            return decision
        loads = [0.0] * self.n_processors
        per_proc: list[list[WorkItem]] = [
            [] for _ in range(self.n_processors)
        ]
        for item in items:
            loads[item.owner] += self._cost(item)
            per_proc[item.owner].append(item)
        total = sum(loads)
        thresh = self.threshold(total)
        decision.threshold = thresh
        for _ in range(self.max_rounds):
            heavy = max(range(self.n_processors), key=lambda i: (loads[i], -i))
            light = min(range(self.n_processors), key=lambda i: (loads[i], i))
            gap = loads[heavy] - loads[light]
            if gap <= thresh or not per_proc[heavy]:
                break
            # Moving an item frees `cost_now` on the donor and books
            # `cost_after = estimate * penalty` on the receiver (it turns
            # remote).  Strict progress requires cost_now + cost_after <
            # 2 * gap is too weak — demand the pair's max load decreases:
            # loads[light] + cost_after < loads[heavy], i.e. the move
            # must not just shrink the gap but keep the receiver below
            # the donor's old level.  The max pair load strictly
            # decreases each round, so the loop terminates.
            movable = []
            for it in per_proc[heavy]:
                cost_now = self._cost(it)
                cost_after = it.estimate * self.remote_penalty
                if (
                    cost_now > 0
                    and loads[light] + cost_after < loads[heavy]
                    and cost_after - cost_now < gap
                ):
                    movable.append((it, cost_now, cost_after))
            if not movable:
                break
            # best single move: receiver's new load closest to the mean
            mean = total / self.n_processors
            moved, cost_now, cost_after = min(
                movable,
                key=lambda t: (
                    abs(loads[light] + t[2] - mean), t[0].item_id,
                ),
            )
            per_proc[heavy].remove(moved)
            per_proc[light].append(moved)
            loads[heavy] -= cost_now
            loads[light] += cost_after
            total += cost_after - cost_now
            decision.transfers.append((moved.item_id, heavy, light))
            decision.transferred_estimate += moved.estimate
            moved.owner = light
            moved.remote = True
        return decision

    def loads(self, items: list[WorkItem]) -> list[float]:
        """Current estimated load per processor."""
        loads = [0.0] * self.n_processors
        for item in items:
            loads[item.owner] += item.estimate
        return loads
