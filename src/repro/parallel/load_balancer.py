"""Centralised dynamic load balancing (paper Section 2.3).

The paper's task scheduler "collects the results from threads, makes the
load-balancing decision, and redistributes the work", transferring work
from heavy to light threads when "the difference between two threads is
greater than a certain threshold", where "the threshold is determined
based on the graph size, the total amount of current load, and differences
of their loads from the average load (details are suppressed)".

The suppressed rule is reconstructed here with documented constants:

* ``avg = total_load / p``;
* ``threshold = max(rel_tolerance * avg, abs_floor_per_vertex * n)`` —
  the relative term keeps transfers proportional to the current load (the
  paper's "total amount of current load"), the absolute floor prevents
  churn on tiny loads (the paper's "graph size" term);
* while the heaviest thread exceeds the lightest by more than the
  threshold, the largest item that fits is moved from the heaviest to the
  lightest thread ("light-loaded threads will help the heaviest-loaded
  thread"), never overshooting below the average.

Transfers pass addresses, not data — the receiving thread simply pays the
remote-access penalty when it executes a transferred item (see
:mod:`repro.parallel.machine`).

The balancer works on *estimated* work (tail-count based,
:meth:`~repro.core.sublist.CliqueSubList.work_estimate`), exactly like the
real scheduler must: true costs are only known after execution.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = [
    "WorkItem",
    "BalanceDecision",
    "LoadBalancer",
    "StealingWorkQueue",
]


@dataclass
class WorkItem:
    """One schedulable unit: a sub-list awaiting expansion.

    Attributes
    ----------
    item_id: stable identifier within the level.
    estimate: scheduler-visible work estimate.
    true_work: actual work units (charged at execution time).
    owner: processor currently holding the item.
    remote: True when the item was transferred away from the processor
        whose memory holds it.
    """

    item_id: int
    estimate: int
    true_work: int
    owner: int
    remote: bool = False


@dataclass
class BalanceDecision:
    """Outcome of one rebalancing round."""

    transfers: list[tuple[int, int, int]] = field(default_factory=list)
    """(item_id, from_processor, to_processor) per move."""

    transferred_estimate: int = 0
    threshold: float = 0.0

    @property
    def n_transfers(self) -> int:
        return len(self.transfers)


class LoadBalancer:
    """The centralised dynamic scheduler's balancing policy.

    Parameters
    ----------
    n_processors: number of threads being balanced.
    graph_size: vertex count of the instance (sets the absolute floor).
    rel_tolerance: imbalance fraction of the average load tolerated
        before transfers trigger.
    abs_floor_per_vertex: work units of tolerated imbalance per graph
        vertex (suppresses churn on small loads).
    max_rounds: safety bound on the greedy transfer loop.
    """

    def __init__(
        self,
        n_processors: int,
        graph_size: int,
        rel_tolerance: float = 0.10,
        abs_floor_per_vertex: float = 0.02,
        remote_penalty: float = 1.3,
        max_rounds: int = 10_000,
    ):
        if n_processors < 1:
            raise ParameterError(
                f"processor count must be >= 1, got {n_processors}"
            )
        if not 0.0 <= rel_tolerance:
            raise ParameterError("rel_tolerance must be >= 0")
        if remote_penalty < 1.0:
            raise ParameterError("remote_penalty must be >= 1")
        self.n_processors = n_processors
        self.graph_size = graph_size
        self.rel_tolerance = rel_tolerance
        self.abs_floor_per_vertex = abs_floor_per_vertex
        self.remote_penalty = remote_penalty
        self.max_rounds = max_rounds

    def _cost(self, item: WorkItem) -> float:
        """Scheduler-visible cost of an item on its current processor.

        A transferred item executes against remote memory, so the smart
        scheduler books it at ``estimate * remote_penalty`` — the paper's
        warning that careless balancing "will mitigate the benefit of
        balanced loads and even worsen the problem" is exactly the error
        of booking transfers at face value.
        """
        return item.estimate * (
            self.remote_penalty if item.remote else 1.0
        )

    # -- initial distribution ------------------------------------------------

    def initial_distribution(self, items: list[WorkItem]) -> None:
        """Assign level-seed items evenly ("divides all k-cliques evenly").

        Items are dealt in descending estimate order onto the currently
        lightest processor (LPT rule), which is the natural reading of an
        even division by load rather than by count.  Owners are written in
        place; seed items are local to their owner.
        """
        loads = [0] * self.n_processors
        for item in sorted(items, key=lambda it: (-it.estimate, it.item_id)):
            t = min(range(self.n_processors), key=lambda i: (loads[i], i))
            item.owner = t
            item.remote = False
            loads[t] += item.estimate

    # -- threshold rule -----------------------------------------------------

    def threshold(self, total_load: float) -> float:
        """The reconstructed decision threshold (see module docstring)."""
        avg = total_load / self.n_processors
        return max(
            self.rel_tolerance * avg,
            self.abs_floor_per_vertex * self.graph_size,
        )

    # -- rebalancing --------------------------------------------------------

    def rebalance(self, items: list[WorkItem]) -> BalanceDecision:
        """Move items from heavy to light processors until balanced.

        Mutates the ``owner``/``remote`` fields of transferred items and
        returns the decision record.  Estimates drive every choice; true
        work is never consulted (the scheduler cannot see the future).
        """
        decision = BalanceDecision()
        if self.n_processors == 1 or not items:
            return decision
        loads = [0.0] * self.n_processors
        per_proc: list[list[WorkItem]] = [
            [] for _ in range(self.n_processors)
        ]
        for item in items:
            loads[item.owner] += self._cost(item)
            per_proc[item.owner].append(item)
        total = sum(loads)
        thresh = self.threshold(total)
        decision.threshold = thresh
        for _ in range(self.max_rounds):
            heavy = max(range(self.n_processors), key=lambda i: (loads[i], -i))
            light = min(range(self.n_processors), key=lambda i: (loads[i], i))
            gap = loads[heavy] - loads[light]
            if gap <= thresh or not per_proc[heavy]:
                break
            # Moving an item frees `cost_now` on the donor and books
            # `cost_after = estimate * penalty` on the receiver (it turns
            # remote).  Strict progress requires cost_now + cost_after <
            # 2 * gap is too weak — demand the pair's max load decreases:
            # loads[light] + cost_after < loads[heavy], i.e. the move
            # must not just shrink the gap but keep the receiver below
            # the donor's old level.  The max pair load strictly
            # decreases each round, so the loop terminates.
            movable = []
            for it in per_proc[heavy]:
                cost_now = self._cost(it)
                cost_after = it.estimate * self.remote_penalty
                if (
                    cost_now > 0
                    and loads[light] + cost_after < loads[heavy]
                    and cost_after - cost_now < gap
                ):
                    movable.append((it, cost_now, cost_after))
            if not movable:
                break
            # best single move: receiver's new load closest to the mean
            mean = total / self.n_processors
            moved, cost_now, cost_after = min(
                movable,
                key=lambda t: (
                    abs(loads[light] + t[2] - mean), t[0].item_id,
                ),
            )
            per_proc[heavy].remove(moved)
            per_proc[light].append(moved)
            loads[heavy] -= cost_now
            loads[light] += cost_after
            total += cost_after - cost_now
            decision.transfers.append((moved.item_id, heavy, light))
            decision.transferred_estimate += moved.estimate
            moved.owner = light
            moved.remote = True
        return decision

    def loads(self, items: list[WorkItem]) -> list[float]:
        """Current estimated load per processor."""
        loads = [0.0] * self.n_processors
        for item in items:
            loads[item.owner] += item.estimate
        return loads

    def partition(self, payloads: list, estimates: list[int]) -> list[list]:
        """LPT-partition arbitrary payloads by estimate into per-worker
        lists.

        Convenience over :meth:`initial_distribution` for callers (the
        shared-memory threaded backend) whose work units are not
        :class:`WorkItem` records: payload ``i`` costs ``estimates[i]``;
        the returned partitions preserve each worker's payloads in the
        original (canonical) order.
        """
        if len(payloads) != len(estimates):
            raise ParameterError(
                f"{len(payloads)} payloads but {len(estimates)} estimates"
            )
        items = [
            WorkItem(item_id=i, estimate=int(est), true_work=int(est),
                     owner=0)
            for i, est in enumerate(estimates)
        ]
        self.initial_distribution(items)
        parts: list[list] = [[] for _ in range(self.n_processors)]
        for item in items:  # items keep input order, so parts stay sorted
            parts[item.owner].append(payloads[item.item_id])
        return parts


class StealingWorkQueue:
    """Per-worker work pools with chunked intra-level stealing.

    The paper's scheduler *pushes* sub-lists from heavy to light threads
    between levels; within a level the threaded backend needs the dual
    — light workers *pull* ("light-loaded threads will help the
    heaviest-loaded thread") — because true per-sub-list costs only
    reveal themselves during expansion.  This queue implements that
    pull side:

    * each worker owns a pool, seeded from the
      :class:`LoadBalancer`'s LPT distribution, and drains it
      front-to-back in *halving* chunks — half the remaining pool per
      take (never below ``steal_granularity``) — so early chunks are
      large enough for the generation step's cross-sub-list numpy
      batching while the untaken tail stays available to thieves and
      end-of-level chunks shrink toward fine-grained balance;
    * a worker whose pool runs dry steals up to ``steal_granularity``
      items from the *tail* of the pool of the worker with the most
      estimated work remaining — tail stealing keeps the victim's
      cache-warm front untouched, the classic work-stealing discipline;
    * every transition is under one lock (acquisitions are rare — one
      per chunk, not one per item — so the lock never becomes the
      bottleneck the paper warns naive balancing turns into).

    ``steals`` / ``stolen_items`` / ``stolen_estimate`` record the
    traffic for the run's ``transfers`` accounting.  The queue is
    single-level: seed every pool, then ``take`` until everyone sees
    ``None``.
    """

    def __init__(self, n_workers: int, steal_granularity: int = 4):
        if n_workers < 1:
            raise ParameterError(
                f"worker count must be >= 1, got {n_workers}"
            )
        if steal_granularity < 1:
            raise ParameterError(
                f"steal_granularity must be >= 1, got {steal_granularity}"
            )
        self.n_workers = n_workers
        self.steal_granularity = steal_granularity
        self._pools: list[deque] = [deque() for _ in range(n_workers)]
        self._loads = [0] * n_workers
        self._lock = threading.Lock()
        self.steals = 0
        self.stolen_items = 0
        self.stolen_estimate = 0

    @classmethod
    def from_partition(
        cls,
        payloads: list,
        estimates: list[int],
        n_workers: int,
        graph_size: int = 0,
        steal_granularity: int = 4,
    ) -> "StealingWorkQueue":
        """Seed a queue from the balancer's LPT partition of the level."""
        queue = cls(n_workers, steal_granularity)
        balancer = LoadBalancer(n_workers, graph_size)
        pairs = balancer.partition(
            list(zip(payloads, estimates)), estimates
        )
        for worker, part in enumerate(pairs):
            queue.seed(worker, part)
        return queue

    def seed(self, worker: int, items: list[tuple]) -> None:
        """Assign ``(payload, estimate)`` pairs to one worker's pool."""
        with self._lock:
            pool = self._pools[worker]
            for payload, estimate in items:
                pool.append((payload, int(estimate)))
                self._loads[worker] += int(estimate)

    def take(self, worker: int) -> list | None:
        """Next chunk of payloads for ``worker``; ``None`` when the
        level is exhausted.

        Local work first (front of the own pool); once dry, steal from
        the tail of the heaviest remaining pool.
        """
        with self._lock:
            pool = self._pools[worker]
            if pool:
                # halving local chunks: big early (numpy batching),
                # fine late (balance), tail always left stealable
                size = max(self.steal_granularity, (len(pool) + 1) // 2)
                return self._pop_locked(worker, pool, size,
                                        from_front=True)
            victim = max(
                (w for w in range(self.n_workers) if self._pools[w]),
                key=lambda w: (self._loads[w], -w),
                default=None,
            )
            if victim is None:
                return None
            chunk = self._pop_locked(
                victim,
                self._pools[victim],
                self.steal_granularity,
                from_front=False,
            )
            self.steals += 1
            self.stolen_items += len(chunk)
            return chunk

    def _pop_locked(
        self, owner: int, pool: deque, size: int, from_front: bool
    ) -> list:
        chunk = []
        for _ in range(min(size, len(pool))):
            payload, estimate = (
                pool.popleft() if from_front else pool.pop()
            )
            self._loads[owner] -= estimate
            if not from_front:
                self.stolen_estimate += estimate
            chunk.append(payload)
        if not from_front:
            # stolen tail slices come back in canonical order
            chunk.reverse()
        return chunk

    def remaining(self) -> int:
        """Items still pooled (for tests and diagnostics)."""
        with self._lock:
            return sum(len(pool) for pool in self._pools)

    def loads(self) -> list[int]:
        """Estimated work remaining per worker (snapshot)."""
        with self._lock:
            return list(self._loads)
