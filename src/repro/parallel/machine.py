"""The simulated large shared-memory machine (SGI Altix stand-in).

The paper's evaluation ran on "an SGI Altix with 256 Intel Itanium 2
processors ... and 8 GB of memory per processor for a total of 2 Terabytes
shared system memory".  That hardware is unavailable here, so — per the
reproduction's substitution policy (DESIGN.md §2) — this module provides a
deterministic *machine model* that executes the real algorithm and charges
virtual time for it:

* each unit of algorithmic work (measured by the
  :class:`~repro.core.counters.OpCounters` weights) costs
  ``seconds_per_work_unit``;
* work executed on a sub-list *transferred* from another thread pays the
  ``remote_access_penalty`` multiplier — the paper: "a thread working on
  loads transferred from other threads has to access the remote memory
  over that processor, which will mitigate the benefit of balanced
  loads";
* every level ends with a barrier plus scheduler interaction costing
  ``sync_base_seconds + sync_seconds_per_processor * p`` — the paper
  attributes the 256-processor degradation to run time "dominated by
  network and synchronization latency".

The model reproduces the *shape* of Figures 5–8 (near-linear scaling to
mid processor counts, degradation at 256, speedup growing with problem
size, balanced per-thread times) because those shapes are driven by the
work distribution across sub-lists and the overhead terms — both of which
come from genuine measurements of the algorithm, not from curve fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["MachineSpec", "VirtualClock", "LevelTiming", "ALTIX_3700"]


@dataclass(frozen=True)
class MachineSpec:
    """Timing parameters of a simulated shared-memory machine.

    Attributes
    ----------
    n_processors:
        Processor (thread) count for a run.
    seconds_per_work_unit:
        Virtual seconds per unit of counted algorithmic work.
    remote_access_penalty:
        Multiplier (>1) applied to work on sub-lists owned by another
        processor's memory (NUMA remote access).
    sync_base_seconds:
        Fixed barrier + scheduler cost per level.
    sync_seconds_per_processor:
        Additional per-processor barrier cost per level (fan-in latency).
    name:
        Human-readable label for reports.
    """

    n_processors: int
    seconds_per_work_unit: float = 2.0e-7
    remote_access_penalty: float = 1.3
    sync_base_seconds: float = 2.0e-4
    sync_seconds_per_processor: float = 6.0e-5
    name: str = "SGI Altix 3700 (simulated)"

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ParameterError(
                f"processor count must be >= 1, got {self.n_processors}"
            )
        if self.seconds_per_work_unit <= 0:
            raise ParameterError("seconds_per_work_unit must be positive")
        if self.remote_access_penalty < 1.0:
            raise ParameterError(
                "remote_access_penalty must be >= 1 (remote is never "
                "cheaper than local)"
            )
        if self.sync_base_seconds < 0 or self.sync_seconds_per_processor < 0:
            raise ParameterError("synchronization costs must be >= 0")

    def with_processors(self, p: int) -> "MachineSpec":
        """Same machine, different processor count."""
        return MachineSpec(
            n_processors=p,
            seconds_per_work_unit=self.seconds_per_work_unit,
            remote_access_penalty=self.remote_access_penalty,
            sync_base_seconds=self.sync_base_seconds,
            sync_seconds_per_processor=self.sync_seconds_per_processor,
            name=self.name,
        )

    def sync_cost(self) -> float:
        """Per-level barrier + scheduler cost at this processor count."""
        return (
            self.sync_base_seconds
            + self.sync_seconds_per_processor * self.n_processors
        )

    def work_seconds(self, units: int, remote: bool = False) -> float:
        """Virtual seconds for ``units`` of work, local or remote."""
        t = units * self.seconds_per_work_unit
        return t * self.remote_access_penalty if remote else t


#: Reference configuration used by the experiment drivers — one processor
#: of the simulated Altix does roughly the work/second that makes the
#: scaled workloads land in the paper's run-time regime.
ALTIX_3700 = MachineSpec(n_processors=1)


@dataclass(frozen=True)
class LevelTiming:
    """Per-level timing record of a simulated run.

    ``busy_seconds[t]`` is processor ``t``'s busy time in the level; the
    level's wall time is the maximum busy time plus the sync cost.
    """

    k: int
    busy_seconds: tuple[float, ...]
    sync_seconds: float
    transfers: int
    transferred_work: int

    @property
    def wall_seconds(self) -> float:
        """Level wall-clock: slowest processor plus synchronization."""
        return max(self.busy_seconds, default=0.0) + self.sync_seconds

    @property
    def mean_busy(self) -> float:
        """Mean processor busy time."""
        if not self.busy_seconds:
            return 0.0
        return sum(self.busy_seconds) / len(self.busy_seconds)

    @property
    def std_busy(self) -> float:
        """Population standard deviation of processor busy times."""
        if not self.busy_seconds:
            return 0.0
        mu = self.mean_busy
        var = sum((b - mu) ** 2 for b in self.busy_seconds) / len(
            self.busy_seconds
        )
        return var ** 0.5


@dataclass
class VirtualClock:
    """Accumulates simulated time over the levels of a run."""

    elapsed_seconds: float = 0.0
    levels: list[LevelTiming] = field(default_factory=list)

    def advance_level(self, timing: LevelTiming) -> None:
        """Record a level and advance the clock by its wall time."""
        self.levels.append(timing)
        self.elapsed_seconds += timing.wall_seconds

    def total_busy(self) -> float:
        """Sum of all processors' busy time (for efficiency metrics)."""
        return sum(sum(lv.busy_seconds) for lv in self.levels)

    def total_sync(self) -> float:
        """Total synchronization time across levels."""
        return sum(lv.sync_seconds for lv in self.levels)
