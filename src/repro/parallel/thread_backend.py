"""Shared-memory threaded level expansion with intra-level work stealing.

The closest analogue in this repo to the paper's 256-processor SGI Altix
run: worker *threads* expand disjoint slices of one candidate level
against the **shared** adjacency bitmap and sub-list arrays — no
pickling, no per-level scatter/gather of candidate data, unlike the
process-based :mod:`repro.parallel.mp_backend` which must ship every
transferred sub-list through a pipe.  The numpy kernels inside
:func:`~repro.core.clique_enumerator.generate_next_level` release the
GIL, so on multi-core hosts the pair scans and bit-string ANDs of
different slices genuinely overlap.

Scheduling is two-phase, mirroring the paper's Section 2.3 scheduler:

* **seed**: each level's sub-lists are LPT-partitioned across workers
  by :meth:`~repro.parallel.load_balancer.LoadBalancer.partition`
  ("divides all k-cliques evenly" — by estimated work, not by count);
* **steal**: within the level, a worker that drains its own partition
  pulls ``steal_granularity``-sized slices from the tail of the
  heaviest remaining partition
  (:class:`~repro.parallel.load_balancer.StealingWorkQueue`), so the
  estimate errors that static sharding cannot absorb are fixed while
  the level runs instead of one level later.

Determinism: every sub-list is expanded exactly once with its own
accounting, per-worker :class:`~repro.core.counters.OpCounters` merge
through the existing :meth:`~repro.core.counters.OpCounters.merge`, and
both the emitted cliques and the child sub-lists are restored to
canonical order at the level barrier — so output, per-level statistics,
*and operation counters* are byte-identical to the sequential
``incore`` backend no matter how the steals interleave.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ParameterError
from repro.core.clique_enumerator import generate_next_level
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.sublist import CliqueSubList
from repro.obs.runtime import get_observability
from repro.parallel.load_balancer import StealingWorkQueue

__all__ = [
    "DEFAULT_STEAL_GRANULARITY",
    "EMIT_BATCH",
    "resolve_worker_count",
    "ThreadedExpander",
]

#: sub-lists per chunk a worker takes (and a thief steals) at once.
#: Small enough that a mis-estimated heavy tail can still migrate,
#: large enough that the queue lock is touched once per chunk, not once
#: per sub-list.
DEFAULT_STEAL_GRANULARITY = 4

#: cliques per ``emit.batch`` call when draining a merged level through
#: the sink: one budget check and one lock round-trip per EMIT_BATCH
#: cliques instead of per clique, while keeping any single sink call —
#: and the partial delivery before a budget trip — bounded.
EMIT_BATCH = 1024


def resolve_worker_count(jobs: int | None) -> int:
    """Worker-thread count: explicit ``jobs`` or the host CPU count."""
    if jobs is not None:
        if jobs < 1:
            raise ParameterError(f"jobs must be >= 1, got {jobs}")
        return jobs
    return max(1, os.cpu_count() or 1)


class ThreadedExpander:
    """A persistent worker-thread pool expanding levels with stealing.

    One expander serves one enumeration run: the pool is created lazily
    on the first level wide enough to parallelise and reused for every
    later level (the paper's threads likewise persist across levels).
    :meth:`step` matches the engine's
    :data:`~repro.engine.level_loop.GenerationStep` signature, so the
    ``"threads"`` backend is the unmodified shared level loop with this
    as its generation policy — seeding, budgets, level statistics, and
    every level store come along for free.

    Parameters
    ----------
    n_workers:
        Worker-thread count (see :func:`resolve_worker_count`).
    steal_granularity:
        Sub-lists per work chunk / steal slice.
    step:
        The sequential generation step each worker runs on its chunks
        (the paper's tail-list generation by default).

    Use as a context manager; :meth:`close` joins the pool.
    """

    def __init__(
        self,
        n_workers: int,
        steal_granularity: int = DEFAULT_STEAL_GRANULARITY,
        step: Callable = generate_next_level,
    ):
        if n_workers < 1:
            raise ParameterError(
                f"worker count must be >= 1, got {n_workers}"
            )
        if steal_granularity < 1:
            raise ParameterError(
                f"steal_granularity must be >= 1, got {steal_granularity}"
            )
        self.n_workers = n_workers
        self.steal_granularity = steal_granularity
        self._step = step
        self._pool: ThreadPoolExecutor | None = None
        # serialises sink delivery: sinks are not required to be
        # thread-safe, so every batch the expander pushes goes through
        # this one lock regardless of which thread drives step()
        self._emit_lock = threading.Lock()
        self.steals = 0
        self.stolen_sublists = 0
        #: wall-clock seconds each worker spent expanding chunks across
        #: the run's parallel steps — the measured Figure 8 signal
        #: (:func:`repro.parallel.metrics.worker_load_balance`)
        self.worker_busy = [0.0] * n_workers
        #: worst per-step ``(max - mean) / mean`` busy-time imbalance
        self.max_step_imbalance = 0.0
        # the ambient tracer is captured once per expander (== per run):
        # workers may emit from any thread, the tracer is thread-safe,
        # and the disabled plane costs one attribute check per level
        tracer = get_observability().tracer
        self._tracer = tracer if tracer.enabled else None

    # -- lifecycle -----------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers,
                thread_name_prefix="enum-thread",
            )
        return self._pool

    def close(self) -> None:
        """Join the worker pool; idempotent."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedExpander":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the parallel generation step ---------------------------------------

    def step(
        self,
        sublists: list[CliqueSubList],
        g: Graph,
        counters: OpCounters,
        emit: Callable[[tuple[int, ...]], None],
    ) -> list[CliqueSubList]:
        """One level (or store chunk) of generation, fanned across the pool.

        Workers expand stolen-or-local chunks into *local* clique and
        child lists with *local* counters; at the barrier the locals
        merge (``OpCounters.merge``), cliques are emitted through
        ``emit`` in canonical order, and children are returned sorted
        by prefix — the exact sequence the sequential step produces.
        ``emit`` runs only on the calling thread, after the barrier, so
        a raising sink (budget trip, cancellation, broken ``jsonl``
        target) propagates without a worker deadlock: workers never
        block on anything but finished work.
        """
        if self.n_workers == 1 or len(sublists) < 2:
            return self._step(sublists, g, counters, emit)
        queue = StealingWorkQueue.from_partition(
            sublists,
            [sl.work_estimate() for sl in sublists],
            self.n_workers,
            graph_size=g.n,
            steal_granularity=self.steal_granularity,
        )
        stop = threading.Event()
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._drain, w, queue, g, stop)
            for w in range(self.n_workers)
        ]
        outcomes = []
        error: BaseException | None = None
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                # workers poll `stop` between chunks and never block, so
                # the remaining futures always finish; drain them before
                # re-raising or their threads would race the next level
                stop.set()
                if error is None:
                    error = exc
        if error is not None:
            raise error
        self.steals += queue.steals
        self.stolen_sublists += queue.stolen_items
        cliques: list[tuple[int, ...]] = []
        children: list[CliqueSubList] = []
        step_busy = []
        for worker, (
            worker_counters, worker_cliques, worker_children, busy
        ) in enumerate(outcomes):
            counters.merge(worker_counters)
            cliques.extend(worker_cliques)
            children.extend(worker_children)
            self.worker_busy[worker] += busy
            step_busy.append(busy)
        mean_busy = sum(step_busy) / len(step_busy)
        if mean_busy > 0:
            self.max_step_imbalance = max(
                self.max_step_imbalance,
                (max(step_busy) - mean_busy) / mean_busy,
            )
        if self._tracer is not None and queue.steals:
            self._tracer.event(
                "steal",
                steals=queue.steals,
                stolen_sublists=queue.stolen_items,
                workers=self.n_workers,
            )
        # restore the sequential emission/storage order: cliques ascend
        # canonically within the level, children ascend by (unique)
        # prefix — identical to the order one worker would have produced
        self._emit_cliques(sorted(cliques), emit)
        children.sort(key=lambda sl: sl.prefix)
        return children

    def _emit_cliques(
        self,
        cliques: list[tuple[int, ...]],
        emit: Callable[[tuple[int, ...]], None],
    ) -> None:
        """Drain the level's merged cliques through the sink, batched.

        Uses the emitter's ``batch`` method when it has one —
        ``EMIT_BATCH`` cliques per budget check — under the expander's
        own lock, so delivery stays serialised whatever thread runs the
        level loop.  A bare callable (a test harness, a custom driver)
        still gets per-clique calls.
        """
        emit_batch = getattr(emit, "batch", None)
        with self._emit_lock:
            if emit_batch is None:
                for clique in cliques:
                    emit(clique)
                return
            for start in range(0, len(cliques), EMIT_BATCH):
                emit_batch(cliques[start:start + EMIT_BATCH])

    def _drain(
        self,
        worker: int,
        queue: StealingWorkQueue,
        g: Graph,
        stop: threading.Event,
    ) -> tuple[OpCounters, list, list, float]:
        """Worker body: pull chunks (local, then stolen) until dry.

        Returns the worker's locals plus the wall-clock it spent inside
        the step — the per-worker busy time the load-balance stats and
        the paper's ±10% check are computed from.
        """
        counters = OpCounters()
        cliques: list[tuple[int, ...]] = []
        children: list[CliqueSubList] = []
        busy = 0.0
        while not stop.is_set():
            chunk = queue.take(worker)
            if chunk is None:
                break
            t0 = time.perf_counter()
            children.extend(
                self._step(chunk, g, counters, cliques.append)
            )
            busy += time.perf_counter() - t0
        return counters, cliques, children, busy
