"""Real multiprocessing backend with partition-persistent workers.

The paper's threads "work on [their] local instance as much as possible to
avoid too much remote memory access", with a centralised scheduler that
only *transfers* work when the load imbalance crosses a threshold.  The
process-based equivalent implemented here:

* each worker process owns a persistent partition of the sub-lists and
  expands it level by level with the unmodified
  :func:`~repro.core.clique_enumerator.generate_next_level`; children stay
  in the worker that created them (the "local memory" of the paper);
* per level, workers return only the emitted maximal cliques and their
  new partition's work estimates — a tiny fraction of the sub-list data;
* the parent plays the centralised scheduler: when the estimated load gap
  exceeds the threshold fraction, it relays whole sub-lists from the
  heaviest to the lightest worker (the one expensive message type, and
  the analogue of the paper's remote-access penalty).

Compared to a naive per-level scatter/gather pool, this ships roughly two
orders of magnitude less data, which is what makes real speedup possible
for an algorithm whose per-sub-list compute is microseconds.

Output is identical (as a set, and per size level) to the sequential
driver; within a level, cliques are sorted canonically so the result is
deterministic regardless of worker interleaving.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field

from repro.errors import ParameterError, ReproError
from repro.core.clique_enumerator import (
    build_initial_sublists,
    build_sublists_from_k_cliques,
    generate_next_level,
)
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.kclique import enumerate_k_cliques
from repro.core.sublist import CliqueSubList

__all__ = ["MPResult", "enumerate_maximal_cliques_mp"]


@dataclass
class MPResult:
    """Output of :func:`enumerate_maximal_cliques_mp`.

    ``transfers`` counts sub-lists relayed between workers by the
    scheduler; ``counters`` aggregates the per-worker operation counts.
    ``exhausted`` is False when ``k_max`` stopped the run with candidate
    sub-lists remaining (mirrors the sequential drivers' ``completed``).
    """

    cliques: list[tuple[int, ...]] = field(default_factory=list)
    n_workers: int = 1
    levels: int = 0
    transfers: int = 0
    counters: OpCounters = field(default_factory=OpCounters)
    exhausted: bool = True


def _worker_loop(conn, g: Graph) -> None:
    """Persistent worker: owns a sub-list partition across levels."""
    sublists: list[CliqueSubList] = []
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "seed":
                sublists = msg[1]
                conn.send(("ok",))
            elif cmd == "expand":
                counters = OpCounters()
                emitted: list[tuple[int, ...]] = []
                sublists = generate_next_level(
                    sublists, g, counters, emitted.append
                )
                conn.send(
                    (
                        "expanded",
                        emitted,
                        [sl.work_estimate() for sl in sublists],
                        counters.snapshot(),
                    )
                )
            elif cmd == "give":
                indices = set(msg[1])
                moved = [
                    sl for i, sl in enumerate(sublists) if i in indices
                ]
                sublists = [
                    sl for i, sl in enumerate(sublists) if i not in indices
                ]
                conn.send(("items", moved))
            elif cmd == "take":
                sublists.extend(msg[1])
                conn.send(("ok",))
            elif cmd == "stop":
                conn.send(("bye",))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown command {cmd!r}"))
                return
    except EOFError:  # parent died; exit quietly
        return


def _lpt_partition(
    sublists: list[CliqueSubList], n: int
) -> list[list[CliqueSubList]]:
    """Longest-processing-time split of seed sub-lists into n partitions."""
    parts: list[list[CliqueSubList]] = [[] for _ in range(n)]
    loads = [0] * n
    order = sorted(
        range(len(sublists)), key=lambda i: -sublists[i].work_estimate()
    )
    for i in order:
        w = min(range(n), key=lambda j: (loads[j], j))
        parts[w].append(sublists[i])
        loads[w] += sublists[i].work_estimate()
    return parts


def _plan_transfers(
    estimates: list[list[int]], rel_tolerance: float
) -> list[tuple[int, list[int], int]]:
    """Scheduler decision: (from_worker, item_indices, to_worker) moves.

    Greedy heavy-to-light moves on the estimate totals, stopping at the
    tolerance band; mirrors
    :class:`repro.parallel.load_balancer.LoadBalancer` at whole-sub-list
    granularity.
    """
    n = len(estimates)
    loads = [float(sum(e)) for e in estimates]
    total = sum(loads)
    if total <= 0 or n < 2:
        return []
    thresh = rel_tolerance * total / n
    # mutable copies of per-worker item estimates with original indices
    items = [
        sorted(
            ((est, idx) for idx, est in enumerate(e)), reverse=True
        )
        for e in estimates
    ]
    moves: dict[tuple[int, int], list[int]] = {}
    for _ in range(10_000):
        heavy = max(range(n), key=lambda i: (loads[i], -i))
        light = min(range(n), key=lambda i: (loads[i], i))
        gap = loads[heavy] - loads[light]
        if gap <= thresh or not items[heavy]:
            break
        movable = [
            (est, idx) for est, idx in items[heavy] if 0 < est < gap
        ]
        if not movable:
            break
        est, idx = min(
            movable, key=lambda t: (abs(t[0] - gap / 2), t[1])
        )
        items[heavy].remove((est, idx))
        loads[heavy] -= est
        loads[light] += est
        moves.setdefault((heavy, light), []).append(idx)
    return [
        (src, idx_list, dst) for (src, dst), idx_list in moves.items()
    ]


def enumerate_maximal_cliques_mp(
    g: Graph,
    k_min: int = 2,
    k_max: int | None = None,
    n_workers: int | None = None,
    rel_tolerance: float = 0.20,
) -> MPResult:
    """Enumerate maximal cliques on a pool of persistent worker processes.

    Results match the sequential
    :func:`~repro.core.clique_enumerator.enumerate_maximal_cliques` with
    the same bounds, level by level (canonically sorted within levels).

    ``k_min`` below 2 is promoted to 2 (isolated vertices carry no
    parallel work; use the sequential driver to include 1-cliques).
    ``rel_tolerance`` is the scheduler's imbalance band as a fraction of
    the mean estimated load.
    """
    k_min = max(2, k_min)
    if k_max is not None and k_max < k_min:
        raise ParameterError(f"k_max ({k_max}) must be >= k_min ({k_min})")
    if n_workers is None:
        n_workers = max(1, mp.cpu_count())
    result = MPResult(n_workers=n_workers)
    counters = result.counters
    emit = result.cliques.append

    # ---- seed level (in the parent; identical to the sequential driver)
    if k_min == 2:
        sublists = build_initial_sublists(
            g, counters, emit, emit_maximal_edges=True
        )
    else:
        kres = enumerate_k_cliques(g, k_min, counters)
        for clique in kres.maximal:
            emit(clique)
        sublists = build_sublists_from_k_cliques(
            g, k_min, kres.non_maximal, counters
        )

    k = k_min
    if n_workers == 1 or not sublists:
        while sublists and (k_max is None or k < k_max):
            level: list[tuple[int, ...]] = []
            sublists = generate_next_level(sublists, g, counters,
                                           level.append)
            result.cliques.extend(sorted(level))
            k += 1
        result.levels = k
        result.exhausted = not sublists
        return result

    ctx = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )
    pipes = []
    procs = []
    try:
        for _ in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop, args=(child_conn, g), daemon=True
            )
            proc.start()
            child_conn.close()
            pipes.append(parent_conn)
            procs.append(proc)

        for conn, part in zip(pipes, _lpt_partition(sublists, n_workers)):
            conn.send(("seed", part))
        for conn in pipes:
            if conn.recv()[0] != "ok":  # pragma: no cover
                raise ReproError("worker failed to accept seed partition")

        remaining = True
        while remaining and (k_max is None or k < k_max):
            for conn in pipes:
                conn.send(("expand",))
            level: list[tuple[int, ...]] = []
            estimates: list[list[int]] = []
            for conn in pipes:
                tag, emitted, ests, snap = conn.recv()
                if tag != "expanded":  # pragma: no cover
                    raise ReproError(f"unexpected worker reply {tag!r}")
                level.extend(emitted)
                estimates.append(ests)
                snap.pop("levels", None)  # parent tracks levels itself
                counters.merge_snapshot(snap)
            result.cliques.extend(sorted(level))
            k += 1
            remaining = any(estimates_w for estimates_w in estimates)
            if not remaining:
                break
            # centralised scheduler: relay sub-lists heavy -> light
            for src, idx_list, dst in _plan_transfers(
                estimates, rel_tolerance
            ):
                pipes[src].send(("give", idx_list))
                tag, moved = pipes[src].recv()
                if tag != "items":  # pragma: no cover
                    raise ReproError("transfer protocol violation")
                pipes[dst].send(("take", moved))
                if pipes[dst].recv()[0] != "ok":  # pragma: no cover
                    raise ReproError("transfer protocol violation")
                result.transfers += len(moved)
        result.exhausted = not remaining
    finally:
        for conn in pipes:
            try:
                conn.send(("stop",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
        for proc in procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover
                proc.terminate()
    result.levels = k
    return result
