"""Level-synchronised multithreaded Clique Enumerator (paper Section 2.3).

The paper's parallel design: "The task scheduler divides all k-cliques
evenly to multiple threads and then signals them to start enumerating
(k+1)-cliques.  When all threads finish their work, they update their
results and wait for next start signal from the task scheduler.  The task
scheduler collects the results from threads, makes the load-balancing
decision, and redistributes the work."  Threads need no communication while
enumerating because sub-list expansions are independent; transfers pass
addresses and the receiving thread pays remote memory access.

Because only *timing* depends on the schedule (the algorithm's output is
schedule-invariant), the simulation splits into two phases:

1. :func:`record_trace` — run the real sequential algorithm once,
   expanding each sub-list separately to measure its true work, the
   scheduler-visible estimate, and the parent/child ownership structure.
2. :func:`simulate_run` — replay the trace on a
   :class:`~repro.parallel.machine.MachineSpec` at any processor count:
   per level, rebalance (centralised dynamic load balancer), charge each
   processor its items' virtual time (remote penalty for transferred
   items), then advance by the slowest processor plus the barrier cost.

One trace therefore yields the whole Figure 5/6/7 processor sweep — and
the per-processor busy times for Figure 8 — without re-running the
enumeration.  A real ``multiprocessing`` backend for genuine wall-clock
parallelism lives in :mod:`repro.parallel.mp_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.core.clique_enumerator import (
    build_initial_sublists,
    build_sublists_from_k_cliques,
    generate_next_level,
)
from repro.core.counters import OpCounters
from repro.core.graph import Graph
from repro.core.kclique import enumerate_k_cliques
from repro.parallel.load_balancer import LoadBalancer, WorkItem
from repro.parallel.machine import LevelTiming, MachineSpec, VirtualClock

__all__ = [
    "TraceItem",
    "EnumerationTrace",
    "SimulatedRun",
    "record_trace",
    "simulate_run",
    "simulate_processor_sweep",
]


@dataclass(frozen=True)
class TraceItem:
    """Cost record for expanding one sub-list (level k -> k+1).

    ``estimate`` is what the scheduler sees before execution
    (:meth:`~repro.core.sublist.CliqueSubList.work_estimate`); ``work`` is
    the true counted work; ``parent_id`` identifies the sub-list whose
    expansion created this one (``-1`` for seed-level items).
    """

    item_id: int
    level: int
    parent_id: int
    estimate: int
    work: int
    n_tails: int
    maximal_emitted: int


@dataclass
class EnumerationTrace:
    """Complete work trace of one enumeration run.

    ``levels[i]`` holds the expansion records of the i-th processed level
    (clique size ``level_ks[i]``); ``seed_work`` is the work of building
    the first level (edge scan, or the Init_K k-clique enumeration), which
    the paper's framework also executes in parallel.
    """

    n_vertices: int
    k_min: int
    k_max: int | None
    seed_work: int
    levels: list[list[TraceItem]] = field(default_factory=list)
    level_ks: list[int] = field(default_factory=list)
    total_maximal: int = 0
    cliques: list[tuple[int, ...]] = field(default_factory=list)

    def total_work(self) -> int:
        """Seed plus all expansion work, in machine work units."""
        return self.seed_work + sum(
            it.work for lv in self.levels for it in lv
        )


@dataclass
class SimulatedRun:
    """Result of replaying a trace on a simulated machine."""

    spec: MachineSpec
    clock: VirtualClock
    n_transfers: int
    transferred_estimate: int
    balanced: bool

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock of the whole run."""
        return self.clock.elapsed_seconds

    @property
    def n_processors(self) -> int:
        return self.spec.n_processors

    def per_level(self) -> list[LevelTiming]:
        """Level timing records (Figure 8 input)."""
        return self.clock.levels

    def efficiency(self, sequential_seconds: float) -> float:
        """Parallel efficiency against a sequential reference time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return sequential_seconds / (
            self.elapsed_seconds * self.n_processors
        )


def record_trace(
    g: Graph, k_min: int = 2, k_max: int | None = None
) -> EnumerationTrace:
    """Run the real enumeration once, recording per-sub-list work.

    Parameters mirror
    :func:`~repro.core.clique_enumerator.enumerate_maximal_cliques`;
    ``k_min`` below 2 is promoted to 2 (isolated-vertex emission costs
    nothing schedulable).  The returned trace contains the emitted maximal
    cliques, so correctness can be cross-checked against the sequential
    driver.
    """
    k_min = max(2, k_min)
    if k_max is not None and k_max < k_min:
        raise ParameterError(f"k_max ({k_max}) must be >= k_min ({k_min})")
    trace = EnumerationTrace(
        n_vertices=g.n, k_min=k_min, k_max=k_max, seed_work=0
    )
    emit = trace.cliques.append

    seed_counters = OpCounters()
    if k_min == 2:
        sublists = build_initial_sublists(
            g, seed_counters, emit, emit_maximal_edges=True
        )
    else:
        kres = enumerate_k_cliques(g, k_min, seed_counters)
        for clique in kres.maximal:
            emit(clique)
        sublists = build_sublists_from_k_cliques(
            g, k_min, kres.non_maximal, seed_counters
        )
    trace.seed_work = seed_counters.total_work()

    ids = list(range(len(sublists)))
    next_id = len(sublists)
    parent_of: dict[int, int] = {}
    k = k_min
    while sublists and (k_max is None or k < k_max):
        level_records: list[TraceItem] = []
        new_sublists = []
        new_ids: list[int] = []
        for sl, sl_id in zip(sublists, ids):
            c = OpCounters()
            emitted_before = len(trace.cliques)
            children = generate_next_level([sl], g, c, emit)
            level_records.append(
                TraceItem(
                    item_id=sl_id,
                    level=k,
                    parent_id=parent_of.get(sl_id, -1),
                    estimate=sl.work_estimate(),
                    work=c.total_work(),
                    n_tails=len(sl),
                    maximal_emitted=len(trace.cliques) - emitted_before,
                )
            )
            for ch in children:
                parent_of[next_id] = sl_id
                new_sublists.append(ch)
                new_ids.append(next_id)
                next_id += 1
        trace.levels.append(level_records)
        trace.level_ks.append(k)
        sublists, ids, k = new_sublists, new_ids, k + 1
    # Final-level sub-lists (when k_max stopped the run) do no recorded
    # work; they are intentionally absent from the trace.
    trace.total_maximal = len(trace.cliques)
    return trace


def simulate_run(
    trace: EnumerationTrace,
    spec: MachineSpec,
    balance: bool = True,
    balancer_kwargs: dict | None = None,
) -> SimulatedRun:
    """Replay a trace on the simulated machine.

    Per level: (optionally) rebalance the work items, charge each
    processor its items — remote items pay the NUMA penalty — and advance
    the clock by the slowest processor plus the barrier cost.  Children
    inherit their creator's processor (the expansion writes them into its
    local memory), which is what makes rebalancing both necessary and
    costly — exactly the trade-off the paper discusses.
    """
    p = spec.n_processors
    balancer = LoadBalancer(p, trace.n_vertices, **(balancer_kwargs or {}))
    clock = VirtualClock()
    total_transfers = 0
    total_transferred = 0

    # Seed phase: first-level construction parallelises across vertices /
    # k-clique search subtrees; charge it evenly, with one barrier.
    if trace.seed_work:
        share = spec.work_seconds(trace.seed_work) / p
        clock.advance_level(
            LevelTiming(
                k=max(1, trace.k_min - 1),
                busy_seconds=tuple(share for _ in range(p)),
                sync_seconds=spec.sync_cost(),
                transfers=0,
                transferred_work=0,
            )
        )

    owner_of: dict[int, int] = {}
    # Observed cost ratios feed forward: the centralised scheduler saw
    # every item's execution time last level, so a child's estimate is
    # its static estimate scaled by its parent's observed true/estimate
    # ratio (children expand the same neighborhood their parent did).
    observed_ratio: dict[int, float] = {}
    for li, level in enumerate(trace.levels):
        items = [
            WorkItem(
                item_id=rec.item_id,
                estimate=max(
                    1,
                    int(
                        rec.estimate
                        * observed_ratio.get(rec.parent_id, 1.0)
                    ),
                ),
                true_work=rec.work,
                owner=owner_of.get(rec.item_id, 0),
                remote=False,
            )
            for rec in level
        ]
        for rec in level:
            observed_ratio[rec.item_id] = rec.work / max(1, rec.estimate)
        if li == 0:
            balancer.initial_distribution(items)
        if balance:
            decision = balancer.rebalance(items)
            total_transfers += decision.n_transfers
            total_transferred += decision.transferred_estimate
            level_transfers = decision.n_transfers
            level_transferred = decision.transferred_estimate
        else:
            level_transfers = 0
            level_transferred = 0
        busy = [0.0] * p
        executed_on: dict[int, int] = {}
        for item in items:
            busy[item.owner] += spec.work_seconds(
                item.true_work, remote=item.remote
            )
            executed_on[item.item_id] = item.owner
        clock.advance_level(
            LevelTiming(
                k=trace.level_ks[li],
                busy_seconds=tuple(busy),
                sync_seconds=spec.sync_cost(),
                transfers=level_transfers,
                transferred_work=level_transferred,
            )
        )
        # Children inherit the processor that expanded their parent.
        if li + 1 < len(trace.levels):
            for rec in trace.levels[li + 1]:
                owner_of[rec.item_id] = executed_on.get(rec.parent_id, 0)
    return SimulatedRun(
        spec=spec,
        clock=clock,
        n_transfers=total_transfers,
        transferred_estimate=total_transferred,
        balanced=balance,
    )


def simulate_processor_sweep(
    trace: EnumerationTrace,
    base_spec: MachineSpec,
    processor_counts: list[int],
    balance: bool = True,
) -> dict[int, SimulatedRun]:
    """Replay one trace at several processor counts (Figures 5–7)."""
    out: dict[int, SimulatedRun] = {}
    for p in processor_counts:
        out[p] = simulate_run(
            trace, base_spec.with_processors(p), balance=balance
        )
    return out
