"""Speedup and load-balance metrics for the parallel evaluation.

The paper defines (Section 3):

absolute speedup
    "the ratio between p processors and one processor run times" —
    ``T(1) / T(p)``.

relative speedup
    "the ratio between 2p processors and p processors run times" —
    ``T(p) / T(2p)``, ideally 2, observed "around 1.8" up to 64
    processors.

Figure 8 plots the mean and standard deviation of per-processor execution
time; the paper reports "the standard deviations are within 10% of the
average run times", its evidence that loads are balanced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.parallel_enumerator import SimulatedRun

__all__ = [
    "absolute_speedup",
    "relative_speedups",
    "speedup_table",
    "LoadBalanceStats",
    "load_balance_stats",
    "worker_load_balance",
    "BALANCE_TOLERANCE",
]

#: the paper's balance criterion: per-worker standard deviation within
#: 10% of the mean run time ("the standard deviations are within 10%
#: of the average run times").
BALANCE_TOLERANCE = 0.10


def absolute_speedup(runs: dict[int, SimulatedRun]) -> dict[int, float]:
    """``T(1) / T(p)`` for every processor count in ``runs``.

    Requires the single-processor run to be present.
    """
    if 1 not in runs:
        raise ValueError("absolute speedup needs the 1-processor run")
    t1 = runs[1].elapsed_seconds
    return {
        p: (t1 / r.elapsed_seconds if r.elapsed_seconds > 0 else 0.0)
        for p, r in runs.items()
    }


def relative_speedups(runs: dict[int, SimulatedRun]) -> dict[int, float]:
    """``T(p) / T(2p)`` for every doubling present in ``runs``.

    Keyed by the *larger* processor count (i.e. entry ``2p`` compares
    ``2p`` against ``p``), matching the paper's Figure 6 x-axis.
    """
    out: dict[int, float] = {}
    for p, run in runs.items():
        if 2 * p in runs and run.elapsed_seconds > 0:
            t2p = runs[2 * p].elapsed_seconds
            if t2p > 0:
                out[2 * p] = run.elapsed_seconds / t2p
    return out


def speedup_table(
    runs: dict[int, SimulatedRun]
) -> list[tuple[int, float, float, float]]:
    """Rows of ``(p, T(p), absolute speedup, efficiency)`` sorted by p."""
    abs_sp = absolute_speedup(runs)
    t1 = runs[1].elapsed_seconds
    rows = []
    for p in sorted(runs):
        tp = runs[p].elapsed_seconds
        rows.append((p, tp, abs_sp[p], t1 / (tp * p) if tp > 0 else 0.0))
    return rows


@dataclass(frozen=True)
class LoadBalanceStats:
    """Per-run load-balance summary (Figure 8 content).

    ``mean_busy``/``std_busy`` aggregate each processor's *total* busy
    time over the whole run; ``max_level_imbalance`` is the worst
    per-level ratio of (max - mean) / mean across processors.
    """

    n_processors: int
    mean_busy: float
    std_busy: float
    max_level_imbalance: float
    n_transfers: int

    @property
    def std_over_mean(self) -> float:
        """The paper's balance criterion: std as a fraction of the mean."""
        if self.mean_busy == 0:
            return 0.0
        return self.std_busy / self.mean_busy

    @property
    def balanced(self) -> bool:
        """True when the run meets the paper's ±10% criterion."""
        return self.std_over_mean <= BALANCE_TOLERANCE

    def to_dict(self) -> dict:
        """JSON-safe view for :class:`~repro.core.clique_enumerator.
        EnumerationResult` and the service wire protocol."""
        return {
            "n_workers": self.n_processors,
            "mean_busy": self.mean_busy,
            "std_busy": self.std_busy,
            "std_over_mean": self.std_over_mean,
            "max_level_imbalance": self.max_level_imbalance,
            "transfers": self.n_transfers,
            "balanced": self.balanced,
        }


def worker_load_balance(
    busy_seconds: list[float],
    transfers: int = 0,
    max_level_imbalance: float = 0.0,
) -> LoadBalanceStats:
    """Load-balance summary of a *real* parallel run.

    The measured analogue of :func:`load_balance_stats`: instead of a
    :class:`SimulatedRun`'s virtual-time ledger, ``busy_seconds`` is
    the wall-clock each worker actually spent expanding chunks (the
    :class:`~repro.parallel.thread_backend.ThreadedExpander` records
    it), so the paper's Figure 8 mean/std evidence — and its ±10%
    balance check — applies to genuine threaded runs, not only to the
    simulator.  ``max_level_imbalance`` carries the worst per-step
    ``(max - mean) / mean`` the caller observed across level barriers.
    """
    p = len(busy_seconds)
    mu = sum(busy_seconds) / p if p else 0.0
    var = sum((b - mu) ** 2 for b in busy_seconds) / p if p else 0.0
    return LoadBalanceStats(
        n_processors=p,
        mean_busy=mu,
        std_busy=var ** 0.5,
        max_level_imbalance=max_level_imbalance,
        n_transfers=transfers,
    )


def load_balance_stats(run: SimulatedRun) -> LoadBalanceStats:
    """Aggregate per-processor busy times of a simulated run."""
    p = run.n_processors
    totals = [0.0] * p
    max_imb = 0.0
    for lv in run.per_level():
        for t, b in enumerate(lv.busy_seconds):
            totals[t] += b
        if lv.busy_seconds:
            mx = max(lv.busy_seconds)
            mu = sum(lv.busy_seconds) / len(lv.busy_seconds)
            if mu > 0:
                max_imb = max(max_imb, (mx - mu) / mu)
    mu = sum(totals) / p if p else 0.0
    var = sum((b - mu) ** 2 for b in totals) / p if p else 0.0
    return LoadBalanceStats(
        n_processors=p,
        mean_busy=mu,
        std_busy=var ** 0.5,
        max_level_imbalance=max_imb,
        n_transfers=run.n_transfers,
    )
