"""Parallel substrate: the simulated shared-memory machine and backends.

* :class:`~repro.parallel.machine.MachineSpec` /
  :class:`~repro.parallel.machine.VirtualClock` — the SGI Altix stand-in;
* :class:`~repro.parallel.load_balancer.LoadBalancer` — the paper's
  centralised dynamic load balancing policy;
* :func:`~repro.parallel.parallel_enumerator.record_trace` /
  :func:`~repro.parallel.parallel_enumerator.simulate_run` — trace-replay
  simulation of the multithreaded Clique Enumerator;
* :func:`~repro.parallel.mp_backend.enumerate_maximal_cliques_mp` — real
  multiprocessing execution on host cores;
* :class:`~repro.parallel.thread_backend.ThreadedExpander` /
  :class:`~repro.parallel.load_balancer.StealingWorkQueue` — the
  shared-memory threaded substrate behind the engine's ``"threads"``
  backend: LPT-seeded worker threads with intra-level work stealing;
* :mod:`repro.parallel.metrics` — absolute/relative speedups and
  load-balance statistics as defined in the paper's Section 3.
"""

from repro.parallel.machine import (
    ALTIX_3700,
    LevelTiming,
    MachineSpec,
    VirtualClock,
)
from repro.parallel.load_balancer import (
    BalanceDecision,
    LoadBalancer,
    StealingWorkQueue,
    WorkItem,
)
from repro.parallel.parallel_enumerator import (
    EnumerationTrace,
    SimulatedRun,
    TraceItem,
    record_trace,
    simulate_processor_sweep,
    simulate_run,
)
from repro.parallel.mp_backend import MPResult, enumerate_maximal_cliques_mp
from repro.parallel.thread_backend import (
    ThreadedExpander,
    resolve_worker_count,
)
from repro.parallel.metrics import (
    LoadBalanceStats,
    absolute_speedup,
    load_balance_stats,
    relative_speedups,
    speedup_table,
)

__all__ = [
    "ALTIX_3700",
    "MachineSpec",
    "VirtualClock",
    "LevelTiming",
    "LoadBalancer",
    "WorkItem",
    "BalanceDecision",
    "StealingWorkQueue",
    "ThreadedExpander",
    "resolve_worker_count",
    "EnumerationTrace",
    "TraceItem",
    "SimulatedRun",
    "record_trace",
    "simulate_run",
    "simulate_processor_sweep",
    "MPResult",
    "enumerate_maximal_cliques_mp",
    "LoadBalanceStats",
    "absolute_speedup",
    "relative_speedups",
    "speedup_table",
    "load_balance_stats",
]
