"""Backend registry: named, pluggable execution substrates.

The paper's Section 2.3 argument is that one algorithm — the level-wise
Clique Enumerator — wins or loses purely on its storage and execution
substrate.  The registry makes that argument an API: a backend is a
callable ``(graph, config, on_clique) -> EnumerationResult`` registered
under a name, and every driver in the repo resolves substrates through
:func:`get_backend` instead of hard-wiring one.

Adding a sixth substrate (a sharded multi-machine backend, a
GPU-resident bitmap store) is one :func:`register_backend` call — no new
driver fork; the fifth (``"threads"``, the shared-memory analogue of the
paper's 256-processor Altix run) landed exactly that way.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = [
    "BackendInfo",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_table",
]

#: runner signature: (graph, config, on_clique) -> EnumerationResult
BackendRunner = Callable


@dataclass(frozen=True)
class BackendInfo:
    """Registry entry describing one execution substrate.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"incore"``.
    runner:
        ``(graph, config, on_clique) -> EnumerationResult``.
    description:
        One line for ``repro engines`` and the docs.
    storage:
        Where candidates live: ``"memory"`` or ``"disk"``.
    parallel:
        True when the backend distributes work across workers —
        processes (``"multiprocess"``) or shared-memory threads
        (``"threads"``).  Only parallel backends accept a non-``None``
        ``config.jobs``.
    min_k_min:
        Smallest supported ``k_min``; smaller requested values are
        promoted.  Every built-in supports 1.
    level_stores:
        The :data:`~repro.engine.config.LEVEL_STORES` substrates this
        backend honours via ``config.level_store``.  Empty means the
        backend manages its own storage; the engine facade rejects an
        explicit ``level_store`` before dispatch.  ``storage`` remains
        the backend's *default* substrate.
    compute_domains:
        The concrete :data:`~repro.engine.config.COMPUTE_DOMAINS`
        values (``"bitset"`` / ``"wah"``, never ``"auto"``) this
        backend's generation step can run on.  Every backend supports
        at least ``"bitset"``; an explicit ``config.compute_domain``
        outside this tuple is rejected before dispatch by the shared
        :func:`~repro.engine.config.resolve_for_backend`.
    kernels:
        The concrete :data:`~repro.engine.config.KERNELS` values
        (``"python"`` / ``"numpy"``, never ``"auto"``) this backend's
        WAH-domain step can run on.  Every backend supports at least
        ``"python"``; ``config.kernel = "auto"`` resolves to the
        fastest advertised kernel
        (:func:`~repro.engine.config.resolve_kernel`), and an explicit
        kernel outside this tuple is rejected before dispatch.
    """

    name: str
    runner: BackendRunner
    description: str = ""
    storage: str = "memory"
    parallel: bool = False
    min_k_min: int = 1
    level_stores: tuple[str, ...] = ()
    compute_domains: tuple[str, ...] = ("bitset",)
    kernels: tuple[str, ...] = ("python",)


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(
    name: str,
    runner: BackendRunner | None = None,
    *,
    description: str = "",
    storage: str = "memory",
    parallel: bool = False,
    min_k_min: int = 1,
    level_stores: tuple[str, ...] = (),
    compute_domains: tuple[str, ...] = ("bitset",),
    kernels: tuple[str, ...] = ("python",),
    replace: bool = False,
):
    """Register an execution backend under ``name``.

    Usable directly (``register_backend("incore", run_incore, ...)``) or
    as a decorator::

        @register_backend("mybackend", description="...")
        def run_mybackend(g, config, on_clique): ...

    Re-registering an existing name raises
    :class:`~repro.errors.ParameterError` unless ``replace=True``.
    """

    def _register(fn: BackendRunner) -> BackendRunner:
        if name in _REGISTRY and not replace:
            raise ParameterError(
                f"backend {name!r} is already registered; "
                "pass replace=True to override"
            )
        _REGISTRY[name] = BackendInfo(
            name=name,
            runner=fn,
            description=description or (fn.__doc__ or "").strip().split(
                "\n"
            )[0],
            storage=storage,
            parallel=parallel,
            min_k_min=min_k_min,
            level_stores=tuple(level_stores),
            compute_domains=tuple(compute_domains),
            kernels=tuple(kernels),
        )
        return fn

    if runner is not None:
        return _register(runner)
    return _register


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (for tests and plugins)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> BackendInfo:
    """Resolve a backend by name, or raise with the available choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends()) or '(none registered)'}"
        ) from None


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def backend_table() -> list[BackendInfo]:
    """Every registry entry, sorted by name (for ``repro engines``)."""
    return [_REGISTRY[n] for n in available_backends()]
