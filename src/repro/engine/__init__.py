"""Pluggable enumeration engine: one algorithm, interchangeable substrates.

The paper's core claim (Section 2.3) is that the level-wise Clique
Enumerator wins or loses purely on its storage and execution substrate —
in-core bitmap memory beat the out-of-core predecessor by removing disk
I/O, and the shared-memory port scaled it to 256 processors.  This
package turns that claim into architecture:

* :class:`~repro.engine.config.EnumerationConfig` — one frozen,
  validated description of a run (size window, budgets, backend name,
  backend options);
* :mod:`~repro.engine.registry` — named backends, each a callable
  ``(graph, config, on_clique) -> EnumerationResult``;
* :mod:`~repro.engine.level_store` /
  :mod:`~repro.engine.level_loop` — the shared single-pass level
  storage contract (``memory`` / ``disk`` / ``wah``-compressed,
  selected by ``EnumerationConfig.level_store``) and the one
  level-loop skeleton every store-based backend runs; the generation
  step itself can run on raw words or on the WAH-compressed form
  (``EnumerationConfig.compute_domain``,
  :mod:`repro.core.compressed_domain`);
* :mod:`~repro.engine.backends` — the five built-ins: ``"incore"``,
  ``"bitscan"``, ``"ooc"``, ``"threads"``, ``"multiprocess"``;
* :class:`~repro.engine.api.EnumerationEngine` — the facade that
  resolves, runs, and times a backend.

Quickstart::

    from repro.engine import EnumerationConfig, EnumerationEngine

    result = EnumerationEngine().run(
        g, EnumerationConfig(backend="multiprocess", k_min=3, jobs=4)
    )

Every backend returns the same canonical
:class:`~repro.core.clique_enumerator.EnumerationResult` and emits the
same clique sets for the same bounds; ``tests/engine/`` enforces the
equivalence across the whole registry.
"""

from repro.core.clique_enumerator import EnumerationResult, LevelStats
from repro.core.counters import IOStats, OpCounters
from repro.engine.config import (
    COMPUTE_DOMAINS,
    KERNELS,
    LEVEL_STORE_AUTO,
    LEVEL_STORES,
    EnumerationConfig,
    resolve_compute_domain,
    resolve_for_backend,
    resolve_kernel,
    resolve_level_store,
)
from repro.engine.registry import (
    BackendInfo,
    available_backends,
    backend_table,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.engine.level_store import (
    CompressedLevelStore,
    DiskLevelStore,
    LevelStore,
    MemoryLevelStore,
)
from repro.engine.level_loop import run_level_loop, seed_level
from repro.engine import backends as _backends  # noqa: F401 (registers)
from repro.engine.api import EnumerationEngine, run_enumeration

__all__ = [
    "EnumerationConfig",
    "resolve_for_backend",
    "resolve_compute_domain",
    "COMPUTE_DOMAINS",
    "KERNELS",
    "resolve_kernel",
    "EnumerationEngine",
    "EnumerationResult",
    "LevelStats",
    "IOStats",
    "OpCounters",
    "BackendInfo",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_table",
    "LEVEL_STORES",
    "LEVEL_STORE_AUTO",
    "resolve_level_store",
    "LevelStore",
    "MemoryLevelStore",
    "DiskLevelStore",
    "CompressedLevelStore",
    "run_level_loop",
    "seed_level",
    "run_enumeration",
]
