"""The shared level-loop skeleton every store-based backend runs.

This is the paper's algorithm with the substrate factored out: seeding
(edges for ``k_min <= 2``, the ``Init_K`` k-clique enumerator above
that), then repeated ``GenerateKCliques`` steps until exhaustion or
``k_max``, with per-level statistics, budget checks, and the emission
bookkeeping that every historical driver re-implemented separately.

A backend supplies exactly two policies:

* ``store_factory`` — where a level's candidates live
  (:class:`~repro.engine.level_store.MemoryLevelStore`,
  :class:`~repro.core.out_of_core.DiskLevelStore`, or the WAH
  :class:`~repro.engine.level_store.CompressedLevelStore`, resolved
  from ``config.level_store``);
* ``step`` — how one level becomes the next
  (:func:`~repro.core.clique_enumerator.generate_next_level` or the
  bit-scan ablation variant).

Everything else — budgets, stats, ordering guarantees — is shared, so a
new substrate cannot drift from the algorithm.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.errors import BudgetExceeded
from repro.core.clique_enumerator import (
    EnumerationResult,
    LevelStats,
    build_initial_sublists,
    build_sublists_from_k_cliques,
    paper_formula_bytes,
)
from repro.core.counters import IOStats, OpCounters
from repro.core.graph import Graph
from repro.core.kclique import enumerate_k_cliques
from repro.core.sublist import CliqueSubList
from repro.engine.config import EnumerationConfig
from repro.engine.level_store import LevelStore
from repro.obs.runtime import get_observability
from repro.obs.trace import NULL_SPAN

__all__ = ["make_emitter", "seed_level", "run_level_loop"]

GenerationStep = Callable[
    [list[CliqueSubList], Graph, OpCounters,
     Callable[[tuple[int, ...]], None]],
    list[CliqueSubList],
]


def make_emitter(
    result: EnumerationResult,
    config: EnumerationConfig,
    on_clique: Callable[[tuple[int, ...]], None] | None,
    current_level: Callable[[], int],
) -> Callable[[tuple[int, ...]], None]:
    """The shared emission sink: budget check, then stream or collect.

    ``current_level`` is read lazily so :class:`~repro.errors.
    BudgetExceeded` reports the level being generated when the budget
    tripped.

    The returned callable also carries a ``batch`` attribute —
    ``emit.batch(cliques)`` delivers a pre-ordered list through one
    budget check instead of one per clique.  Semantics match the
    per-clique path exactly: everything the budget still allows is
    delivered, then :class:`~repro.errors.BudgetExceeded` reports
    ``max_cliques`` emitted.  Parallel expanders use it to drain a
    whole merged level through the sink in a few calls.
    """
    emitted = 0
    max_cliques = config.max_cliques

    def deliver(clique: tuple[int, ...]) -> None:
        if on_clique is not None:
            on_clique(clique)
        else:
            result.cliques.append(clique)

    def emit(clique: tuple[int, ...]) -> None:
        nonlocal emitted
        emitted += 1
        if max_cliques is not None and emitted > max_cliques:
            raise BudgetExceeded(
                f"clique budget {max_cliques} exceeded",
                emitted=emitted - 1,
                level=current_level(),
            )
        deliver(clique)

    def emit_batch(cliques: list[tuple[int, ...]]) -> None:
        nonlocal emitted
        if (
            max_cliques is not None
            and emitted + len(cliques) > max_cliques
        ):
            for clique in cliques[: max_cliques - emitted]:
                deliver(clique)
            emitted = max_cliques
            raise BudgetExceeded(
                f"clique budget {max_cliques} exceeded",
                emitted=max_cliques,
                level=current_level(),
            )
        emitted += len(cliques)
        if on_clique is not None:
            for clique in cliques:
                on_clique(clique)
        else:
            result.cliques.extend(cliques)

    emit.batch = emit_batch
    return emit


def seed_level(
    g: Graph,
    k_min: int,
    counters: OpCounters,
    emit: Callable[[tuple[int, ...]], None],
    emit_maximal_edges: bool = True,
) -> tuple[int, list[CliqueSubList]]:
    """Seed the enumeration: the paper's ``Init_K``.

    Returns ``(k, sublists)`` — the starting level and its candidate
    sub-lists.  For ``k_min <= 2`` seeding starts from the edge set
    (emitting isolated vertices first when ``k_min == 1``); for larger
    ``k_min`` the k-clique enumerator provides the level directly.
    ``emit_maximal_edges=False`` suppresses the size-2 emissions (for
    runs bounded to ``k_max < 2``).
    """
    if k_min <= 2:
        if k_min == 1:
            for v in range(g.n):
                if g.degree(v) == 0:
                    counters.maximal_emitted += 1
                    emit((v,))
        return 2, build_initial_sublists(
            g, counters, emit, emit_maximal_edges=emit_maximal_edges
        )
    # enumerate_k_cliques counts its maximal cliques in `counters`;
    # here they only need to be routed to the sink.
    kres = enumerate_k_cliques(g, k_min, counters)
    for clique in kres.maximal:
        emit(clique)
    return k_min, build_sublists_from_k_cliques(
        g, k_min, kres.non_maximal, counters
    )


def _measure_store(
    k: int, store: LevelStore, maximal: int, n_vertices: int
) -> LevelStats:
    """One :class:`LevelStats` row from the store's accounting."""
    return LevelStats(
        k=k,
        n_sublists=store.n_sublists,
        n_candidates=store.n_candidates,
        maximal_emitted=maximal,
        candidate_bytes=store.candidate_bytes,
        paper_formula_bytes=paper_formula_bytes(
            k, store.n_sublists, store.n_candidates, n_vertices
        ),
    )


def _fold_store_stats(store: LevelStore, stats: dict) -> None:
    """Accumulate a retired store's codec traffic into ``domain_stats``.

    Only the compressed store carries the counters; other substrates
    contribute nothing (their levels were never compressed, so nothing
    was decompressed or avoided).
    """
    decompressed = getattr(store, "decompressed_bytes", None)
    if decompressed is None:
        return
    stats["decompressed_bytes"] = (
        stats.get("decompressed_bytes", 0) + decompressed
    )
    stats["decompressed_bytes_avoided"] = (
        stats.get("decompressed_bytes_avoided", 0) + store.bypassed_bytes
    )


def _trace_store_retired(trace, store: LevelStore, k: int) -> None:
    """Emit the ``store`` event for a level store about to retire.

    Captured *before* ``close()`` so the store's accounting is still
    live; the compressed store additionally reports its codec traffic.
    """
    fields = {
        "k": k,
        "sublists": store.n_sublists,
        "candidates": store.n_candidates,
        "candidate_bytes": store.candidate_bytes,
    }
    decompressed = getattr(store, "decompressed_bytes", None)
    if decompressed is not None:
        fields["decompressed_bytes"] = decompressed
        fields["bypassed_bytes"] = store.bypassed_bytes
    trace.event("store", **fields)


def run_level_loop(
    g: Graph,
    config: EnumerationConfig,
    on_clique: Callable[[tuple[int, ...]], None] | None,
    *,
    step: GenerationStep,
    store_factory: Callable[[], LevelStore],
    backend: str,
    io: IOStats | None = None,
    stream_mode: str = "raw",
) -> EnumerationResult:
    """Run the complete level-wise enumeration on one storage substrate.

    The single source of truth for the algorithm's control flow: seeding,
    level advance through ``step``, per-level :class:`LevelStats`, the
    ``max_cliques`` / ``max_candidate_bytes`` budgets, and the
    ``completed`` flag.  Backends built on this loop inherit the paper's
    output guarantees — each maximal clique exactly once, non-decreasing
    size order, canonical order within a size, nothing above ``k_max``.

    ``stream_mode`` selects how a level flows between the store and the
    step (the ``compute_domain="wah"`` + ``level_store="wah"`` pairing
    never materialises the level in raw word form):

    * ``"raw"`` — ``store.stream()`` yields plain
      :class:`~repro.core.sublist.CliqueSubList` chunks (every store);
    * ``"entries"`` — ``store.stream_entries()`` yields
      :class:`~repro.core.sublist.CompressedSubList` chunks and the
      step returns the same form (the per-entry compressed path);
    * ``"batches"`` — ``store.stream_batches()`` yields whole
      :class:`~repro.core.sublist.CompressedLevelBatch` objects and the
      step returns one per chunk, appended via ``append_batch`` (the
      numpy structure-of-arrays fast path).
    """
    k_min = config.k_min  # k_max >= k_min is the config's own invariant
    counters = OpCounters()
    result = EnumerationResult(
        counters=counters,
        k_min=k_min,
        k_max=config.k_max,
        backend=backend,
        io=io,
    )
    level = k_min
    # the ambient tracer, captured once per run; `trace is None` is the
    # strict no-op path — no span objects, no kwargs dicts, when disabled
    tracer = get_observability().tracer
    trace = tracer if tracer.enabled else None

    emit = make_emitter(result, config, on_clique, lambda: level)
    t_level = time.perf_counter()
    span = (
        trace.span("seed", backend=backend, k_min=k_min)
        if trace is not None else NULL_SPAN
    )
    with span:
        k, seed = seed_level(
            g, k_min, counters, emit,
            emit_maximal_edges=config.k_max is None or config.k_max >= 2,
        )
        span.set(
            k=k, sublists=len(seed), emitted=counters.maximal_emitted
        )

    store = store_factory()
    try:
        for sl in seed:
            store.append(sl)
        del seed
        result.level_stats.append(
            _measure_store(k, store, counters.maximal_emitted, g.n)
        )
        result.level_seconds.append(time.perf_counter() - t_level)
        counters.levels = k

        while len(store) and (config.k_max is None or k < config.k_max):
            budget = config.max_candidate_bytes
            if budget is not None and store.candidate_bytes > budget:
                raise BudgetExceeded(
                    f"candidate memory {store.candidate_bytes} exceeds "
                    f"budget {budget} at level {k}",
                    emitted=counters.maximal_emitted,
                    level=k,
                )
            before = counters.maximal_emitted
            level = k + 1
            t_level = time.perf_counter()
            span = (
                trace.span(
                    "level", k=level, backend=backend,
                    stream=stream_mode, parents=store.n_sublists,
                )
                if trace is not None else NULL_SPAN
            )
            with span:
                next_store = store_factory()
                try:
                    if stream_mode == "batches":
                        stream = store.stream_batches()
                    elif stream_mode == "entries":
                        stream = store.stream_entries()
                    else:
                        stream = store.stream()
                    for chunk in stream:
                        children = step(chunk, g, counters, emit)
                        if stream_mode == "batches":
                            next_store.append_batch(children)
                        else:
                            for child in children:
                                next_store.append(child)
                except BaseException:
                    next_store.close()
                    raise
                if trace is not None:
                    _trace_store_retired(trace, store, k)
                store.close()
                _fold_store_stats(store, result.domain_stats)
                store = next_store
                k += 1
                counters.levels = k
                result.level_stats.append(
                    _measure_store(
                        k, store, counters.maximal_emitted - before, g.n
                    )
                )
                span.set(
                    sublists=store.n_sublists,
                    candidates=store.n_candidates,
                    emitted=counters.maximal_emitted - before,
                    candidate_bytes=store.candidate_bytes,
                )
            result.level_seconds.append(time.perf_counter() - t_level)
        result.completed = not len(store)
    finally:
        store.close()
        _fold_store_stats(store, result.domain_stats)
    return result
