"""The built-in execution backends.

Each backend is ~30 lines of substrate policy over the shared loop in
:mod:`repro.engine.level_loop` (or, for ``"multiprocess"``, over the
partition-persistent worker pool in :mod:`repro.parallel.mp_backend`):

* ``"incore"`` — the paper's contribution: candidates in RAM, tail-list
  pair generation (Figure 3);
* ``"bitscan"`` — same storage, the paper's *rejected* n-bit-scan
  generation, kept runnable for the ablation;
* ``"ooc"`` — the retired predecessor: candidates spill to disk per
  level, I/O counted;
* ``"threads"`` — the paper's actual parallelisation: shared-memory
  worker threads over the same adjacency bitmap, LPT-seeded per level
  with intra-level work stealing
  (:mod:`repro.parallel.thread_backend`);
* ``"multiprocess"`` — the process-based analogue: persistent worker
  partitions plus the centralised load-balancing scheduler.

All five return the same canonical
:class:`~repro.core.clique_enumerator.EnumerationResult` and emit
identical clique sets for identical bounds — the invariant
``tests/engine/test_equivalence.py`` and the randomized
``tests/engine/test_property_harness.py`` enforce across the whole
registry.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import replace

from repro.errors import ParameterError
from repro.core.clique_enumerator import (
    EnumerationResult,
    generate_next_level,
    generate_next_level_bitscan,
)
from repro.core.compressed_domain import CompressedExpander
from repro.core.counters import IOStats
from repro.core.graph import Graph
from repro.core.out_of_core import DiskLevelStore
from repro.engine.config import (
    LEVEL_STORES,
    EnumerationConfig,
    resolve_compute_domain,
    resolve_for_backend,
    resolve_kernel,
)
from repro.engine.level_loop import make_emitter, run_level_loop
from repro.engine.level_store import CompressedLevelStore, MemoryLevelStore
from repro.engine.registry import get_backend, register_backend

__all__ = [
    "run_incore",
    "run_bitscan",
    "run_ooc",
    "run_threads",
    "run_multiprocess",
]

OnClique = Callable[[tuple[int, ...]], None] | None


def _reject_unknown_options(config: EnumerationConfig, known: set[str]):
    unknown = set(config.options) - known
    if unknown:
        raise ParameterError(
            f"backend {config.backend!r} does not understand option(s) "
            f"{', '.join(sorted(unknown))}; known: "
            f"{', '.join(sorted(known)) or '(none)'}"
        )


def _store_policy(
    config: EnumerationConfig, default: str, kernel: str = "python"
):
    """Resolve ``config.level_store`` for a level-loop backend.

    Returns ``(store_factory, io, store_options)`` — the factory for
    :func:`~repro.engine.level_loop.run_level_loop`, the shared
    :class:`IOStats` when the substrate touches disk (``None``
    otherwise), and the option keys the substrate understands (fed to
    :func:`_reject_unknown_options`, so e.g. a spill ``directory`` on
    the in-memory substrate still fails before work starts).
    ``kernel`` is the run's resolved WAH kernel — the compressed store
    uses it to pick its (byte-identical) batched or per-entry codec.
    """
    name = config.level_store or default
    if name == "auto":
        raise ParameterError(
            "level_store='auto' must be resolved before a runner is "
            "called — dispatch through EnumerationEngine.run (or the "
            "job service), which picks the concrete substrate"
        )
    if name == "memory":
        return MemoryLevelStore, None, set()
    if name == "wah":
        chunk_size = config.option("chunk_size", 256)
        return (
            lambda: CompressedLevelStore(chunk_size, kernel),
            None,
            {"chunk_size"},
        )
    if name == "disk":
        io = IOStats()
        directory = config.option("directory")
        chunk_size = config.option("chunk_size", 256)
        return (
            lambda: DiskLevelStore(directory, chunk_size, io),
            io,
            {"directory", "chunk_size"},
        )
    raise ParameterError(  # pragma: no cover - config validates first
        f"unknown level store {name!r}; expected one of "
        f"{', '.join(LEVEL_STORES)}"
    )


def _reject_jobs(config: EnumerationConfig):
    if config.jobs is not None:
        raise ParameterError(
            f"backend {config.backend!r} is sequential; jobs is only "
            "valid for parallel backends (see `repro engines`)"
        )


def _resolve_step(
    g: Graph,
    config: EnumerationConfig,
    store_name: str,
    backend_name: str,
    model: str,
    bitset_step,
):
    """Resolve the generation step for the configured compute domain.

    Returns ``(step, stream_mode, expander, domain, kernel)``: the step
    callable for :func:`~repro.engine.level_loop.run_level_loop`, how
    the level streams between store and step (``"raw"`` /
    ``"entries"`` / ``"batches"`` — the compressed modes are the
    ``"wah"`` domain on the ``"wah"`` store, the zero-round-trip
    pairing), the :class:`~repro.core.compressed_domain.
    CompressedExpander` carrying the kernel telemetry (``None`` in the
    bitset domain), the resolved domain name for
    ``result.compute_domain``, and the resolved kernel for
    ``result.kernel``.
    """
    info = get_backend(backend_name)
    domain = resolve_compute_domain(config, store_name, info)
    kernel = resolve_kernel(config, info)
    if domain == "bitset":
        return bitset_step, "raw", None, "bitset", kernel
    expander = CompressedExpander(
        g,
        model=model,
        emit_compressed=store_name == "wah",
        kernel=kernel,
    )
    if store_name != "wah":
        stream_mode = "raw"
    elif kernel == "numpy" and not info.parallel:
        # whole-batch streaming; the threads backend partitions levels
        # across workers per sub-list, so it keeps the entry form
        stream_mode = "batches"
    else:
        stream_mode = "entries"
    return expander.step, stream_mode, expander, "wah", kernel


@register_backend(
    "incore",
    description="in-memory candidates, tail-list generation (the paper)",
    storage="memory",
    level_stores=LEVEL_STORES,
    compute_domains=("bitset", "wah"),
    kernels=("python", "numpy"),
)
def run_incore(
    g: Graph, config: EnumerationConfig, on_clique: OnClique = None
) -> EnumerationResult:
    """The paper's in-core Clique Enumerator on the unified loop."""
    _reject_jobs(config)
    store_name = config.level_store or "memory"
    step, stream_mode, expander, domain, kernel = _resolve_step(
        g, config, store_name, "incore", "pairs", generate_next_level
    )
    store_factory, io, store_opts = _store_policy(
        config, "memory", kernel
    )
    _reject_unknown_options(config, store_opts)
    result = run_level_loop(
        g,
        config,
        on_clique,
        step=step,
        store_factory=store_factory,
        backend="incore",
        io=io,
        stream_mode=stream_mode,
    )
    result.compute_domain = domain
    result.kernel = kernel
    if expander is not None:
        result.domain_stats.update(expander.stats())
    return result


@register_backend(
    "bitscan",
    description="in-memory candidates, rejected n-bit-scan generation "
    "(ablation)",
    storage="memory",
    level_stores=LEVEL_STORES,
    compute_domains=("bitset", "wah"),
    kernels=("python", "numpy"),
)
def run_bitscan(
    g: Graph, config: EnumerationConfig, on_clique: OnClique = None
) -> EnumerationResult:
    """The Section 2.3 bit-scan generation variant on the unified loop."""
    _reject_jobs(config)
    store_name = config.level_store or "memory"
    step, stream_mode, expander, domain, kernel = _resolve_step(
        g,
        config,
        store_name,
        "bitscan",
        "bitscan",
        generate_next_level_bitscan,
    )
    store_factory, io, store_opts = _store_policy(
        config, "memory", kernel
    )
    _reject_unknown_options(config, store_opts)
    result = run_level_loop(
        g,
        config,
        on_clique,
        step=step,
        store_factory=store_factory,
        backend="bitscan",
        io=io,
        stream_mode=stream_mode,
    )
    result.compute_domain = domain
    result.kernel = kernel
    if expander is not None:
        result.domain_stats.update(expander.stats())
    return result


@register_backend(
    "ooc",
    description="disk-spilled candidates per level, I/O counted "
    "(the retired out-of-core mode)",
    storage="disk",
    level_stores=LEVEL_STORES,
    kernels=("python", "numpy"),
)
def run_ooc(
    g: Graph, config: EnumerationConfig, on_clique: OnClique = None
) -> EnumerationResult:
    """The out-of-core substrate: every level spilled and re-read once.

    ``config.level_store`` can override the substrate (e.g. ``"wah"``
    holds the levels compressed in RAM instead); the result's ``io``
    field is populated only when the effective substrate touches disk.
    """
    kernel = resolve_kernel(config, get_backend("ooc"))
    store_factory, io, store_opts = _store_policy(config, "disk", kernel)
    _reject_unknown_options(config, store_opts)
    _reject_jobs(config)
    result = run_level_loop(
        g,
        config,
        on_clique,
        step=generate_next_level,
        store_factory=store_factory,
        backend="ooc",
        io=io,
    )
    result.kernel = kernel
    return result


@register_backend(
    "threads",
    description="shared-memory worker threads with intra-level work "
    "stealing (the paper's Altix mode)",
    storage="memory",
    parallel=True,
    level_stores=LEVEL_STORES,
    compute_domains=("bitset", "wah"),
    kernels=("python", "numpy"),
)
def run_threads(
    g: Graph, config: EnumerationConfig, on_clique: OnClique = None
) -> EnumerationResult:
    """The shared-memory threaded substrate on the unified loop.

    The generation *step* is the parallel policy: each level (or store
    chunk) is LPT-partitioned across a persistent pool of
    ``config.jobs`` worker threads which expand shared-state sub-lists
    and steal ``steal_granularity``-sized slices from the heaviest
    partition when their own runs dry
    (:class:`~repro.parallel.thread_backend.ThreadedExpander`).
    Everything else — seeding, budgets, per-level statistics, all three
    level stores — is the same
    :func:`~repro.engine.level_loop.run_level_loop` the sequential
    backends run, so output, statistics, and operation counters are
    byte-identical to ``incore``.

    In the ``"wah"`` compute domain each worker runs the
    compressed-domain step over the shared WAH adjacency-row cache —
    with ``kernel="numpy"`` the batched structure-of-arrays kernels,
    whose vectorised inner loops release the GIL — the partitioning,
    stealing, and level-barrier machinery is unchanged (work estimates
    are identical by construction), and with the ``"wah"`` level store
    the sub-lists workers exchange stay compressed end to end.

    Unlike ``multiprocess`` (which collects the full clique set before
    replaying it), cliques stream through ``on_clique`` at every level
    barrier: budgets trip at the same clique they would in-core, and a
    cooperative cancellation raised by the sink takes effect one level
    late at worst.
    """
    from repro.parallel.thread_backend import (
        DEFAULT_STEAL_GRANULARITY,
        ThreadedExpander,
        resolve_worker_count,
    )

    store_name = config.level_store or "memory"
    step, stream_mode, wah_expander, domain, kernel = _resolve_step(
        g, config, store_name, "threads", "pairs", generate_next_level
    )
    store_factory, io, store_opts = _store_policy(
        config, "memory", kernel
    )
    _reject_unknown_options(config, store_opts | {"steal_granularity"})
    expander = ThreadedExpander(
        resolve_worker_count(config.jobs),
        config.option("steal_granularity", DEFAULT_STEAL_GRANULARITY),
        step=step,
    )
    with expander:
        result = run_level_loop(
            g,
            config,
            on_clique,
            step=expander.step,
            store_factory=store_factory,
            backend="threads",
            io=io,
            stream_mode=stream_mode,
        )
    result.n_workers = expander.n_workers
    result.transfers = expander.stolen_sublists
    result.compute_domain = domain
    result.kernel = kernel
    if any(expander.worker_busy):
        # narrow runs (every level below the parallel threshold) never
        # touch the pool and carry no balance evidence
        from repro.parallel.metrics import worker_load_balance

        result.load_balance = worker_load_balance(
            expander.worker_busy,
            transfers=expander.stolen_sublists,
            max_level_imbalance=expander.max_step_imbalance,
        ).to_dict()
    if wah_expander is not None:
        result.domain_stats.update(wah_expander.stats())
    return result


@register_backend(
    "multiprocess",
    description="partition-persistent worker processes with centralised "
    "load balancing",
    storage="memory",
    parallel=True,
    level_stores=("memory",),
)
def run_multiprocess(
    g: Graph, config: EnumerationConfig, on_clique: OnClique = None
) -> EnumerationResult:
    """The process-pool substrate, adapted to the canonical result type.

    Workers own persistent sub-list partitions (the paper's thread-local
    memory); the parent relays sub-lists between them when the estimated
    load gap crosses ``rel_tolerance``.  Cliques are canonically sorted
    within each level, so output order matches the sequential backends.
    Isolated vertices (``k_min == 1``) are emitted in the parent — they
    carry no parallel work — before the pool starts at level 2.

    The ``max_cliques`` budget is enforced while replaying the pool's
    output through the shared emitter, i.e. *after* the distributed
    enumeration has finished — unlike the sequential substrates it
    bounds the returned output, not the work in flight.
    """
    from repro.parallel.mp_backend import enumerate_maximal_cliques_mp

    _reject_unknown_options(config, {"rel_tolerance"})
    # workers keep their partitions in local memory; pretending to
    # honour a disk or compressed substrate would silently change what
    # candidate_bytes means.  The shared resolver raises the same
    # ConfigError the engine facade and the service submit path do, so
    # a direct runner call cannot drift from them.
    config = resolve_for_backend(config, get_backend("multiprocess"))
    if config.k_max is not None and config.k_max < 2:
        # no parallel work exists below level 2; the sequential loop is
        # the exact semantics (isolated vertices, completed flag) —
        # minus the multiprocess-only knobs it would not understand
        result = run_incore(
            g, replace(config, options={}, jobs=None), on_clique
        )
        result.backend = "multiprocess"
        return result
    result = EnumerationResult(
        k_min=config.k_min,
        k_max=config.k_max,
        backend="multiprocess",
    )
    level = [config.k_min]
    emit = make_emitter(result, config, on_clique, lambda: level[0])
    if config.k_min == 1:
        for v in range(g.n):
            if g.degree(v) == 0:
                result.counters.maximal_emitted += 1
                emit((v,))
    mp_res = enumerate_maximal_cliques_mp(
        g,
        k_min=max(2, config.k_min),
        k_max=config.k_max,
        n_workers=config.jobs,
        rel_tolerance=config.option("rel_tolerance", 0.20),
    )
    result.counters.merge(mp_res.counters)
    result.counters.levels = max(result.counters.levels, mp_res.levels)
    result.n_workers = mp_res.n_workers
    result.transfers = mp_res.transfers
    result.completed = mp_res.exhausted
    for clique in mp_res.cliques:
        level[0] = len(clique)
        emit(clique)
    return result
