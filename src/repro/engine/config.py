"""Unified run configuration for every enumeration backend.

One :class:`EnumerationConfig` describes a run completely: the size
window (the paper's ``Init_K`` and the optional upper bound), the safety
budgets, the backend name resolved through
:mod:`repro.engine.registry`, and a free-form ``options`` mapping for
backend-specific knobs (spill directory and chunk size for ``"ooc"``,
scheduler tolerance for ``"multiprocess"``).  The config is frozen and
validated at construction, so a bad parameter fails before any work
starts — and before a worker pool or spill directory is created.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError, ParameterError

__all__ = [
    "EnumerationConfig",
    "LEVEL_STORES",
    "LEVEL_STORE_AUTO",
    "COMPUTE_DOMAINS",
    "KERNELS",
    "resolve_for_backend",
    "resolve_level_store",
    "resolve_compute_domain",
    "resolve_kernel",
]

#: the level-storage substrates a config may request: ``"memory"``
#: (:class:`~repro.engine.level_store.MemoryLevelStore`), ``"disk"``
#: (:class:`~repro.core.out_of_core.DiskLevelStore`), ``"wah"``
#: (:class:`~repro.engine.level_store.CompressedLevelStore`).
LEVEL_STORES = ("memory", "disk", "wah")

#: the additional ``level_store`` policy value: pick the cheapest
#: concrete substrate whose *predicted* peak (:func:`repro.core.
#: memory_model.predict_profile`) fits the memory budget, preferring
#: ``memory`` over ``wah`` over ``disk``.  Resolved per run against
#: the graph — by :func:`resolve_level_store` via the engine facade,
#: or by the job scheduler against its configured budget — so it is
#: deliberately *not* part of :data:`LEVEL_STORES`: backends advertise
#: and run only concrete substrates.
LEVEL_STORE_AUTO = "auto"

#: the word representations a generation step may run on:
#: ``"bitset"`` (raw ``uint64`` word arrays, the historical hot path),
#: ``"wah"`` (the compressed-domain kernels of
#: :mod:`repro.core.compressed_domain`), or ``"auto"`` — resolve to
#: ``"wah"`` when the effective level store is ``"wah"`` and the
#: backend supports it (keeping the level compressed end to end),
#: ``"bitset"`` otherwise.
COMPUTE_DOMAINS = ("auto", "bitset", "wah")

#: the kernel implementations a WAH compute-domain step may select:
#: ``"python"`` (the scalar per-pair kernels of
#: :mod:`repro.core.compressed`), ``"numpy"`` (the batched
#: structure-of-arrays kernels of :mod:`repro.core.wah_kernels`), or
#: ``"auto"`` — resolve to ``"numpy"`` when the backend advertises it,
#: ``"python"`` otherwise.  The two are byte-equivalent; the choice
#: affects only speed and telemetry.
KERNELS = ("auto", "python", "numpy")


def _stable_key(value: Any) -> tuple[str, object]:
    """An order-insensitive, hash/eq-consistent stand-in for ``value``.

    Containers whose equality crosses hashability lines are unified
    *before* the hashable fast path — ``frozenset({1}) == {1}`` and a
    hashable Mapping equal to a plain dict must produce the same key —
    and are canonically sorted, so two equal options dicts built in
    different insertion orders agree.  Everything else collapses to its
    hash (``1`` and ``1.0`` compare equal and hash equal, so they stay
    consistent; ``tuple`` never equals ``list``, so their different
    tags are safe).  The leading tag keeps the sort inside
    mappings/sets well-defined for mixed types.
    """
    if isinstance(value, Mapping):
        return (
            "m",
            tuple(sorted(
                (_stable_key(k), _stable_key(v))
                for k, v in value.items()
            )),
        )
    if isinstance(value, (set, frozenset)):
        return ("s", tuple(sorted(_stable_key(v) for v in value)))
    try:
        return ("h", hash(value))
    except TypeError:
        pass
    if isinstance(value, (list, tuple)):
        return ("l", tuple(_stable_key(v) for v in value))
    return ("r", repr(value))


@dataclass(frozen=True)
class EnumerationConfig:
    """Everything a backend needs to know about one enumeration run.

    Attributes
    ----------
    backend:
        Registry name of the execution substrate (``"incore"``,
        ``"bitscan"``, ``"ooc"``, ``"multiprocess"``, or any backend
        registered via :func:`repro.engine.register_backend`).
    k_min:
        Lower clique-size bound (the paper's ``Init_K``).  All built-in
        backends support 1; for a backend registered with a higher
        ``min_k_min`` floor, the engine promotes the value before
        dispatch.
    k_max:
        Optional upper bound; enumeration stops after emitting maximal
        cliques of this size.
    max_cliques:
        Optional output budget; exceeding it raises
        :class:`~repro.errors.BudgetExceeded`.
    max_candidate_bytes:
        Optional per-level cap on measured candidate storage; exceeding
        it raises :class:`~repro.errors.BudgetExceeded`.  Ignored by
        backends that do not track level storage centrally.
    jobs:
        Worker count for parallel backends — processes for
        ``"multiprocess"``, shared-memory threads for ``"threads"``
        (``None`` lets the backend pick, e.g. the CPU count).
        Sequential backends reject a non-``None`` value rather than
        silently ignoring it.
    level_store:
        Storage substrate for candidate levels: one of
        :data:`LEVEL_STORES` (``"memory"``, ``"disk"``, ``"wah"``),
        :data:`LEVEL_STORE_AUTO` (``"auto"`` — the cheapest advertised
        substrate whose predicted peak fits the memory budget,
        resolved per run), or ``None`` for the backend's default
        (memory for ``incore``/``bitscan``, disk for ``ooc``).
        Backends that do
        not run the shared level loop reject substrates they cannot
        honour rather than silently ignoring the policy.  Part of the
        config's equality/hash, so the service result cache can never
        conflate runs on different substrates.
    compute_domain:
        Word representation of the generation step: one of
        :data:`COMPUTE_DOMAINS`.  ``"auto"`` (the default) follows the
        effective level store — a ``"wah"`` store runs the
        compressed-domain kernels on backends that support them, so the
        level never round-trips through raw bit strings; anything else
        runs the historical ``"bitset"`` word arrays.  An explicit
        domain a backend did not advertise (``BackendInfo.
        compute_domains``) is rejected by :func:`resolve_for_backend`.
        Part of the config's equality/hash, so the service result cache
        distinguishes the domains even though their outputs are
        byte-identical by construction.
    kernel:
        Kernel implementation for the WAH compute domain: one of
        :data:`KERNELS`.  ``"auto"`` (the default) picks the batched
        numpy structure-of-arrays kernels when the backend advertises
        them (``BackendInfo.kernels``) and the scalar python kernels
        otherwise; the explicit values pin one implementation (e.g. for
        the equivalence harness or microbenchmarks).  An explicit
        kernel a backend did not advertise is rejected by
        :func:`resolve_for_backend`.  Ignored by ``"bitset"``-domain
        runs, but still part of the config's equality/hash so the
        service result cache keys stay conservative.
    options:
        Backend-specific knobs, e.g. ``{"directory": ..., "chunk_size":
        512}`` for ``"ooc"``, ``{"rel_tolerance": 0.1}`` for
        ``"multiprocess"``, or ``{"steal_granularity": 4}`` for
        ``"threads"`` (validated here because it is a concurrency knob
        whose misconfiguration must fail before a pool starts; like
        every option it is hashed into the config identity, so the
        service result cache never conflates runs with different
        stealing policies).  Unknown keys are rejected by the backend.
    """

    backend: str = "incore"
    k_min: int = 1
    k_max: int | None = None
    max_cliques: int | None = None
    max_candidate_bytes: int | None = None
    jobs: int | None = None
    level_store: str | None = None
    compute_domain: str = "auto"
    kernel: str = "auto"
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ParameterError(
                f"backend must be a non-empty string, got {self.backend!r}"
            )
        if self.k_min < 1:
            raise ParameterError(f"k_min must be >= 1, got {self.k_min}")
        if self.k_max is not None and self.k_max < self.k_min:
            raise ParameterError(
                f"k_max ({self.k_max}) must be >= k_min ({self.k_min})"
            )
        if self.max_cliques is not None and self.max_cliques < 0:
            raise ParameterError(
                f"max_cliques must be >= 0, got {self.max_cliques}"
            )
        if (
            self.max_candidate_bytes is not None
            and self.max_candidate_bytes < 0
        ):
            raise ParameterError(
                "max_candidate_bytes must be >= 0, got "
                f"{self.max_candidate_bytes}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ParameterError(f"jobs must be >= 1, got {self.jobs}")
        if (
            self.level_store is not None
            and self.level_store != LEVEL_STORE_AUTO
            and self.level_store not in LEVEL_STORES
        ):
            raise ParameterError(
                f"level_store must be one of {', '.join(LEVEL_STORES)} "
                f"or {LEVEL_STORE_AUTO!r} (or None for the backend "
                f"default), got {self.level_store!r}"
            )
        if self.compute_domain not in COMPUTE_DOMAINS:
            raise ParameterError(
                f"compute_domain must be one of "
                f"{', '.join(COMPUTE_DOMAINS)}, got "
                f"{self.compute_domain!r}"
            )
        if self.kernel not in KERNELS:
            raise ParameterError(
                f"kernel must be one of {', '.join(KERNELS)}, got "
                f"{self.kernel!r}"
            )
        # normalise to a plain dict so `options` is hashable-agnostic and
        # cheap to .get() from; the field stays read-only by convention.
        object.__setattr__(self, "options", dict(self.options))
        gran = self.options.get("steal_granularity")
        if gran is not None and (
            not isinstance(gran, int)
            or isinstance(gran, bool)
            or gran < 1
        ):
            raise ParameterError(
                f"steal_granularity must be an int >= 1, got {gran!r}"
            )

    def __hash__(self) -> int:
        # the frozen dataclass's auto-hash would choke on the options
        # dict; hash its canonical :func:`_stable_key` instead.  The
        # canonical key is used unconditionally — a fast path for
        # all-hashable options would hash equal values differently
        # (frozenset vs set) depending on which path they took,
        # breaking the hash/eq contract the service ResultCache dict
        # key depends on.
        return hash((
            self.backend,
            self.k_min,
            self.k_max,
            self.max_cliques,
            self.max_candidate_bytes,
            self.jobs,
            self.level_store,
            self.compute_domain,
            self.kernel,
            _stable_key(self.options),
        ))

    def with_backend(self, backend: str) -> "EnumerationConfig":
        """A copy of this config targeting a different backend."""
        return replace(self, backend=backend)

    def option(self, key: str, default: Any = None) -> Any:
        """Read one backend-specific option with a default."""
        return self.options.get(key, default)


def resolve_for_backend(
    config: "EnumerationConfig", info: Any
) -> "EnumerationConfig":
    """Cross-validate a config against its backend's registry entry.

    The single place config-vs-backend consistency is decided, shared
    by every path that accepts a config — the engine facade before
    dispatch, and the job service at *submit* time — so ``repro
    enumerate`` and ``repro submit`` raise the identical
    :class:`~repro.errors.ConfigError` for the identical mistake
    (historically the service only discovered an unsupported
    ``level_store`` when the job ran, burning a queue slot on a job
    doomed to fail).

    ``info`` is a :class:`~repro.engine.registry.BackendInfo` (typed
    loosely to keep this module below the registry).  Returns the
    config, with ``k_min`` promoted to the backend's ``min_k_min``
    floor when needed.
    """
    if config.level_store == LEVEL_STORE_AUTO:
        if not info.level_stores:
            # a backend that manages its own storage has nothing for
            # the auto policy to choose between — its default *is* the
            # resolution, exactly as a None level_store would be
            return resolve_for_backend(
                replace(config, level_store=None), info
            )
    elif (
        config.level_store is not None
        and config.level_store not in info.level_stores
    ):
        raise ConfigError(
            f"backend {config.backend!r} does not support level store "
            f"{config.level_store!r}; supported: "
            f"{', '.join(info.level_stores) or '(backend-managed)'}"
        )
    if (
        config.compute_domain != "auto"
        and config.compute_domain not in info.compute_domains
    ):
        raise ConfigError(
            f"backend {config.backend!r} does not support compute "
            f"domain {config.compute_domain!r}; supported: "
            f"{', '.join(info.compute_domains)} (or 'auto')"
        )
    if (
        config.kernel != "auto"
        and config.kernel not in info.kernels
    ):
        raise ConfigError(
            f"backend {config.backend!r} does not support kernel "
            f"{config.kernel!r}; supported: "
            f"{', '.join(info.kernels)} (or 'auto')"
        )
    if config.k_min < info.min_k_min:
        return replace(config, k_min=info.min_k_min)
    return config


#: substrate preference of the auto policy: raw in-memory candidates
#: are fastest, WAH compression cuts the peak ~5.2x at modest CPU
#: cost, and the disk spill bounds residency at streaming speed.
_AUTO_STORE_PREFERENCE = ("memory", "wah", "disk")


def resolve_level_store(
    config: "EnumerationConfig",
    g: Any,
    info: Any,
    budget_bytes: int | None = None,
    *,
    predicted: Any = None,
) -> str:
    """The concrete substrate a ``level_store="auto"`` run executes on.

    Forward-runs the paper recurrences (:func:`repro.core.memory_model.
    predict_profile`) on the graph's ``(n, m)`` and picks the first
    substrate in memory → wah → disk order that the backend advertises
    *and* whose predicted peak fits ``budget_bytes``.  With no budget
    given, the machine's currently available memory is used; when even
    that is unknown, or nothing fits, the cheapest advertised substrate
    (the last preference) wins — the disk spill always "fits" in the
    sense that its residency barely grows with the level.

    ``g`` needs ``n``/``m`` attributes, plus the adjacency bitmap when
    ``k_min <= 2`` (for the exact seed count that sharpens the 2→3
    recurrence transition — skipped for duck-typed graphs without
    ``adj``); ``info`` is the backend's
    :class:`~repro.engine.registry.BackendInfo`.  A caller that has
    already run the model (the job scheduler predicts for admission
    control anyway) passes its
    :class:`~repro.core.memory_model.PredictedProfile` as ``predicted``
    to skip the recomputation.
    """
    from repro.core.memory_model import (
        available_memory_bytes,
        predict_profile,
        seed_sublist_count,
    )

    advertised = [
        s for s in _AUTO_STORE_PREFERENCE if s in info.level_stores
    ]
    if not advertised:
        raise ConfigError(
            f"backend {config.backend!r} advertises no level stores; "
            "level_store='auto' needs at least one to choose from"
        )
    if budget_bytes is None:
        budget_bytes = available_memory_bytes()
    if budget_bytes is None:
        return advertised[0]
    if predicted is None:
        seeds = (
            seed_sublist_count(g)
            if config.k_min <= 2 and hasattr(g, "adj")
            else None
        )
        predicted = predict_profile(
            g.n, g.m, config.k_min, seeds, k_max=config.k_max
        )
    for store in advertised:
        if predicted.peak_bytes(store) <= budget_bytes:
            return store
    return advertised[-1]


def resolve_compute_domain(
    config: "EnumerationConfig", effective_store: str, info: Any
) -> str:
    """The concrete domain (``"bitset"`` / ``"wah"``) of one run.

    ``"auto"`` follows the effective level store: a ``"wah"`` store runs
    the compressed-domain kernels when the backend advertises them, so
    the level never round-trips through raw bit strings; every other
    store — and every backend without compressed kernels — resolves to
    ``"bitset"``.  Explicit domains pass through (they were validated
    against ``info.compute_domains`` by :func:`resolve_for_backend`).
    """
    if config.compute_domain != "auto":
        return config.compute_domain
    if effective_store == "wah" and "wah" in info.compute_domains:
        return "wah"
    return "bitset"


def resolve_kernel(config: "EnumerationConfig", info: Any) -> str:
    """The concrete kernel (``"python"`` / ``"numpy"``) of one run.

    ``"auto"`` picks the batched numpy kernels whenever the backend
    advertises them — they are byte-equivalent to the python kernels
    and strictly faster on whole-level batches — falling back to
    ``"python"`` otherwise.  Explicit kernels pass through (validated
    against ``info.kernels`` by :func:`resolve_for_backend`).
    """
    if config.kernel != "auto":
        return config.kernel
    if "numpy" in info.kernels:
        return "numpy"
    return "python"
