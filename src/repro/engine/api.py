"""The :class:`EnumerationEngine` facade — one door to every substrate.

Resolve a named backend from the registry, run it, time it, and hand
back the canonical result::

    from repro.engine import EnumerationConfig, EnumerationEngine

    engine = EnumerationEngine()
    result = engine.run(g, EnumerationConfig(backend="ooc", k_min=3))
    print(result.backend, result.wall_seconds, result.io.total_bytes)

:func:`run_enumeration` is the function-style shorthand the legacy
drivers shim through.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import replace

from repro.core.clique_enumerator import EnumerationResult
from repro.core.graph import Graph
from repro.engine.config import (
    LEVEL_STORE_AUTO,
    EnumerationConfig,
    resolve_for_backend,
    resolve_level_store,
)
from repro.engine.registry import (
    BackendInfo,
    available_backends,
    backend_table,
    get_backend,
)

__all__ = ["EnumerationEngine", "run_enumeration"]


class EnumerationEngine:
    """Facade dispatching enumeration runs to registered backends.

    An engine optionally carries a default :class:`EnumerationConfig`;
    per-call configs override it.  The engine is stateless between runs
    — it exists so callers hold one object with one ``run`` method
    instead of four driver imports.
    """

    def __init__(self, config: EnumerationConfig | None = None):
        self.config = config if config is not None else EnumerationConfig()

    def run(
        self,
        g: Graph,
        config: EnumerationConfig | None = None,
        on_clique: Callable[[tuple[int, ...]], None] | None = None,
    ) -> EnumerationResult:
        """Run one enumeration through the configured backend.

        Parameters
        ----------
        g:
            Input graph.
        config:
            Run configuration; falls back to the engine's default.
        on_clique:
            Optional streaming sink; when given, cliques are not
            collected in the result.

        Returns
        -------
        EnumerationResult
            The canonical result, with ``backend`` and ``wall_seconds``
            filled in.

        Notes
        -----
        A ``k_min`` below the backend's registered ``min_k_min`` is
        promoted before dispatch (every built-in supports 1, so this
        only affects third-party backends that declare a floor).  An
        explicit ``level_store`` the backend did not register support
        for is rejected here — through the shared
        :func:`~repro.engine.config.resolve_for_backend`, so the
        service's submit-time validation raises the identical
        :class:`~repro.errors.ConfigError` — before any work starts.
        A ``level_store="auto"`` is resolved here against the graph
        and the machine's available memory
        (:func:`~repro.engine.config.resolve_level_store`); jobs going
        through the service resolve against its configured budget
        instead, before dispatch reaches this method.
        """
        cfg = config if config is not None else self.config
        info = get_backend(cfg.backend)
        cfg = resolve_for_backend(cfg, info)
        if cfg.level_store == LEVEL_STORE_AUTO:
            cfg = replace(
                cfg, level_store=resolve_level_store(cfg, g, info)
            )
        t0 = time.perf_counter()
        result = info.runner(g, cfg, on_clique)
        result.wall_seconds = time.perf_counter() - t0
        return result

    def run_with_sink(
        self,
        g: Graph,
        config: EnumerationConfig | None = None,
        sink: Callable[[tuple[int, ...]], None] | None = None,
    ) -> EnumerationResult:
        """Run streaming into a sink and manage its lifecycle.

        A sink is any ``on_clique`` callable; when it additionally has
        the :class:`repro.service.sinks.CliqueSink` surface (``close``
        and ``summary``, duck-typed so the engine layer stays below the
        service layer) it is closed on completion *and* on error, and
        its summary is folded into ``result.counters.extra`` under
        ``sink_*`` keys.
        """
        if sink is None:
            return self.run(g, config)
        try:
            result = self.run(g, config, on_clique=sink)
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        except BaseException:
            # abort, not close: neither a failed run nor a failed
            # close (e.g. the jsonl rename target is a directory) may
            # finalize output or leak the sink's temp file
            if not getattr(sink, "closed", False):
                release = getattr(sink, "abort", None) or getattr(
                    sink, "close", None
                )
                if release is not None:
                    release()
            raise
        summary = getattr(sink, "summary", None)
        if summary is not None:
            report = summary()
            result.counters.extra["sink_cliques"] = report.get(
                "cliques", 0
            )
            result.counters.extra["sink_max_size"] = report.get(
                "max_size", 0
            )
        return result

    @staticmethod
    def backends() -> list[str]:
        """Names of every registered backend."""
        return available_backends()

    @staticmethod
    def describe() -> list[BackendInfo]:
        """Full registry entries (for ``repro engines`` and docs)."""
        return backend_table()


def run_enumeration(
    g: Graph,
    config: EnumerationConfig | None = None,
    on_clique: Callable[[tuple[int, ...]], None] | None = None,
) -> EnumerationResult:
    """Function-style shorthand for ``EnumerationEngine().run(...)``."""
    return EnumerationEngine().run(g, config, on_clique)
