"""Level storage substrates for the unified enumeration loop.

The Clique Enumerator touches its candidate sub-lists in exactly one
pattern: append the whole next level, then stream it back once for
expansion.  :class:`LevelStore` captures that single-pass contract plus
the accounting the level loop needs (``N[k]``, ``M[k]``, measured bytes
— the paper's per-level statistics), so the storage substrate becomes a
policy choice (:attr:`repro.engine.config.EnumerationConfig.level_store`):

* :class:`MemoryLevelStore` — candidates stay in RAM; streaming yields
  the whole level as one chunk so the generation step keeps its full
  cross-sub-list batching (the paper's in-core mode);
* :class:`~repro.core.out_of_core.DiskLevelStore` — candidates spill to
  disk and stream back chunk by chunk with counted I/O (the retired
  out-of-core mode, kept measurable);
* :class:`CompressedLevelStore` — candidates held WAH-compressed
  (:mod:`repro.core.compressed`), realising the paper's closing remark
  that the sparse bitmap index "can potentially provide high
  compression rate"; decompression happens one chunk at a time as the
  level streams back for expansion.

All are driven by the same loop in :mod:`repro.engine.level_loop`, and
all enforce the single-pass contract: a second ``stream()`` — or an
``append()`` once streaming began — raises
:class:`~repro.errors.LevelStoreError` instead of silently replaying or
corrupting the level.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.errors import LevelStoreError, ParameterError
from repro.core.clique_enumerator import INDEX_BYTES, POINTER_BYTES
from repro.core.out_of_core import DiskLevelStore
from repro.core.sublist import (
    CliqueSubList,
    CompressedLevelBatch,
    CompressedSubList,
)

__all__ = [
    "LevelStore",
    "MemoryLevelStore",
    "DiskLevelStore",
    "CompressedLevelStore",
]


class LevelStore(ABC):
    """Single-pass storage for one level of candidate sub-lists.

    Contract: ``append`` the complete level, then ``stream`` it back
    exactly once (in insertion order, as chunks), then ``close``.  The
    contract is enforced — a second ``stream()`` or a late ``append()``
    raises :class:`~repro.errors.LevelStoreError`.  The accounting
    properties must reflect everything appended so far; the level loop
    reads them for per-level statistics and memory budgets without
    materialising the level.
    """

    @abstractmethod
    def append(self, sl: CliqueSubList) -> None:
        """Add one sub-list to the level."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored sub-lists."""

    @property
    @abstractmethod
    def n_sublists(self) -> int:
        """The paper's ``N[k]`` for this level."""

    @property
    @abstractmethod
    def n_candidates(self) -> int:
        """The paper's ``M[k]`` for this level."""

    @property
    @abstractmethod
    def candidate_bytes(self) -> int:
        """Measured candidate storage of this level, in bytes."""

    @abstractmethod
    def stream(self) -> Iterator[list[CliqueSubList]]:
        """Yield the sub-lists back in insertion order, chunk by chunk."""

    @abstractmethod
    def close(self) -> None:
        """Release any backing resources; idempotent."""

    def __enter__(self) -> "LevelStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryLevelStore(LevelStore):
    """In-memory level store: a list with the paper's accounting.

    ``stream`` yields the entire level as a single chunk, so the
    generation step sees every sub-list at once and its cross-sub-list
    pair batching (``PAIR_BATCH``) is unchanged from the historical
    in-core driver.
    """

    def __init__(self) -> None:
        self._sublists: list[CliqueSubList] = []
        self._n_candidates = 0
        self._candidate_bytes = 0
        self._streamed = False

    def append(self, sl: CliqueSubList) -> None:
        """Add one sub-list to the level."""
        if self._streamed:
            raise LevelStoreError(
                "append() after stream(): the level store is single-pass"
            )
        self._sublists.append(sl)
        self._n_candidates += len(sl)
        self._candidate_bytes += sl.nbytes(INDEX_BYTES, POINTER_BYTES)

    def __len__(self) -> int:
        return len(self._sublists)

    @property
    def n_sublists(self) -> int:
        """The paper's ``N[k]`` for this level."""
        return len(self._sublists)

    @property
    def n_candidates(self) -> int:
        """The paper's ``M[k]`` for this level."""
        return self._n_candidates

    @property
    def candidate_bytes(self) -> int:
        """Measured candidate storage of this level, in bytes."""
        return self._candidate_bytes

    def stream(self) -> Iterator[list[CliqueSubList]]:
        """Yield the whole level as one chunk (full batching preserved)."""
        if self._streamed:
            raise LevelStoreError(
                "stream() called twice on a single-pass level store"
            )
        self._streamed = True
        return self._stream()

    def _stream(self) -> Iterator[list[CliqueSubList]]:
        if self._sublists:
            yield self._sublists

    def close(self) -> None:
        """Drop the level (lists are garbage-collected)."""
        self._sublists = []


class CompressedLevelStore(LevelStore):
    """WAH-compressed in-memory level store — the paper's "work underway".

    Every appended sub-list is held as a
    :class:`~repro.core.sublist.CompressedSubList`: tails and the
    common-neighbor string become
    :class:`~repro.core.compressed.WahBitmap` payloads, so
    :attr:`candidate_bytes` — the figure the Figure-9 experiment and the
    ``max_candidate_bytes`` budget read — is the *compressed* footprint.
    On sparse genome-scale graphs the deep-level common-neighbor strings
    are a few set bits in a universe of thousands, where WAH shrinks
    them by an order of magnitude.

    ``stream`` decompresses ``chunk_size`` sub-lists at a time, so at
    most one chunk of full-width bit strings is live while the
    generation step expands the level; everything not yet streamed stays
    compressed.  ``stream_entries`` skips even that: it yields the
    stored :class:`CompressedSubList` entries themselves, which is how
    the compressed-domain generation step
    (:class:`~repro.core.compressed_domain.CompressedExpander`,
    ``compute_domain="wah"``) consumes a level with zero decompression.
    Both share the single-pass contract.  The two counters
    :attr:`decompressed_bytes` / :attr:`bypassed_bytes` record which
    path each streamed byte took, feeding the run's
    ``domain_stats["decompressed_bytes"]`` /
    ``["decompressed_bytes_avoided"]`` telemetry.

    The numpy kernel (``kernel="numpy"``) changes *how* the same bytes
    are produced, never the bytes themselves: raw appends are buffered
    and batch-encoded ``chunk_size`` at a time through
    :meth:`~repro.core.sublist.CompressedLevelBatch.from_sublists`
    (one vectorised encode instead of per-entry group walks), the
    decompressing :meth:`stream` decodes each chunk with one vectorised
    pass, and the :meth:`append_batch` / :meth:`stream_batches` pair
    moves whole :class:`~repro.core.sublist.CompressedLevelBatch`
    levels in and out without materialising per-entry objects at all —
    the structure-of-arrays fast path of the numpy generation step.
    The WAH encoding is canonical, so stored words — and therefore
    every accounting property — are byte-identical across kernels.

    Parameters
    ----------
    chunk_size:
        Sub-lists decompressed per streamed chunk.  Larger chunks keep
        more of the generation step's cross-sub-list batching; smaller
        chunks bound the transient decompressed working set.
    kernel:
        ``"python"`` (per-entry scalar codec) or ``"numpy"`` (batched
        structure-of-arrays codec).  Byte-identical storage either way.
    """

    def __init__(self, chunk_size: int = 256, kernel: str = "python"):
        if chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if kernel not in ("python", "numpy"):
            raise ParameterError(
                f"kernel must be 'python' or 'numpy', got {kernel!r}"
            )
        self.chunk_size = chunk_size
        self.kernel = kernel
        self._pending: list[CliqueSubList] = []
        #: ordered mix of per-entry and whole-batch parts; insertion
        #: order across both kinds is the level's canonical order.
        self._parts: list[CompressedSubList | CompressedLevelBatch] = []
        self._n_sublists = 0
        self._n_candidates = 0
        self._candidate_bytes = 0
        self._uncompressed_bytes = 0
        self._streamed = False
        #: raw sub-list bytes materialised by the decompressing stream().
        self.decompressed_bytes = 0
        #: raw-equivalent bytes that stayed compressed through
        #: stream_entries() — the "decompressed bytes avoided".
        self.bypassed_bytes = 0

    def append(self, sl: CliqueSubList | CompressedSubList) -> None:
        """Store one sub-list, compressing unless it already is.

        A :class:`CompressedSubList` (as produced by the
        compressed-domain generation step) is stored as-is — no
        re-encode; the WAH encoder is canonical, so the stored words
        are identical either way.
        """
        if self._streamed:
            raise LevelStoreError(
                "append() after stream(): the level store is single-pass"
            )
        if isinstance(sl, CompressedSubList):
            entry = sl
            uncompressed = entry.uncompressed_nbytes(
                INDEX_BYTES, POINTER_BYTES
            )
        elif self.kernel == "numpy":
            # buffer raw appends and batch-encode a chunk at a time —
            # canonical words, so accounting is unchanged byte for byte
            self._pending.append(sl)
            if len(self._pending) >= self.chunk_size:
                self._flush_pending()
            return
        else:
            entry = CompressedSubList.from_sublist(sl)
            uncompressed = sl.nbytes(INDEX_BYTES, POINTER_BYTES)
        self._account(entry, uncompressed)

    def _account(
        self, entry: CompressedSubList, uncompressed: int
    ) -> None:
        self._parts.append(entry)
        self._n_sublists += 1
        self._n_candidates += len(entry)
        self._candidate_bytes += entry.nbytes(INDEX_BYTES, POINTER_BYTES)
        self._uncompressed_bytes += uncompressed

    def _flush_pending(self) -> None:
        pending, self._pending = self._pending, []
        self._store_batch(CompressedLevelBatch.from_sublists(pending))

    def _store_batch(self, batch: CompressedLevelBatch) -> None:
        # batch.nbytes()/uncompressed_nbytes() equal the per-entry sums
        # exactly (same formulas over the same canonical words), so the
        # bulk charge is byte-identical to entry-at-a-time accounting.
        self._parts.append(batch)
        self._n_sublists += len(batch)
        self._n_candidates += int(batch.n_tails.sum())
        self._candidate_bytes += batch.nbytes(INDEX_BYTES, POINTER_BYTES)
        self._uncompressed_bytes += batch.uncompressed_nbytes(
            INDEX_BYTES, POINTER_BYTES
        )

    def append_batch(self, batch: CompressedLevelBatch) -> None:
        """Store a whole compressed level batch (numpy fast path).

        The batch is held as-is — one part, no per-entry objects — and
        accounted in bulk; :meth:`stream_batches` later yields it back
        untouched, so a batches-mode level loop never materialises an
        entry.  Equivalent byte for byte to appending
        ``batch.to_entries()`` one at a time.
        """
        if self._streamed:
            raise LevelStoreError(
                "append() after stream(): the level store is single-pass"
            )
        if len(batch):
            self._store_batch(batch)

    def __len__(self) -> int:
        return self._n_sublists + len(self._pending)

    @property
    def n_sublists(self) -> int:
        """The paper's ``N[k]`` for this level."""
        return self._n_sublists + len(self._pending)

    @property
    def n_candidates(self) -> int:
        """The paper's ``M[k]`` for this level."""
        if self._pending:
            self._flush_pending()
        return self._n_candidates

    @property
    def candidate_bytes(self) -> int:
        """Measured *compressed* candidate storage, in bytes."""
        if self._pending:
            self._flush_pending()
        return self._candidate_bytes

    @property
    def uncompressed_bytes(self) -> int:
        """What :class:`MemoryLevelStore` would have charged for this
        level — the baseline for :meth:`compression_ratio`."""
        if self._pending:
            self._flush_pending()
        return self._uncompressed_bytes

    def compression_ratio(self) -> float:
        """Uncompressed bytes over compressed bytes (>= 1 means win)."""
        if not self._candidate_bytes:
            return 1.0
        return self._uncompressed_bytes / self._candidate_bytes

    def entries(self) -> list[CompressedSubList]:
        """The compressed sub-lists, for compressed-domain consumers."""
        if self._pending:
            self._flush_pending()
        out: list[CompressedSubList] = []
        for part in self._parts:
            if isinstance(part, CompressedLevelBatch):
                out.extend(part.to_entries())
            else:
                out.append(part)
        return out

    def _iter_runs(
        self,
    ) -> Iterator[CompressedLevelBatch | list[CompressedSubList]]:
        """The stored parts in insertion order: whole batches as-is,
        loose entries re-chunked ``chunk_size`` at a time between them.
        """
        buf: list[CompressedSubList] = []
        for part in self._parts:
            if isinstance(part, CompressedLevelBatch):
                if buf:
                    yield buf
                    buf = []
                yield part
            else:
                buf.append(part)
                if len(buf) >= self.chunk_size:
                    yield buf
                    buf = []
        if buf:
            yield buf

    def stream(self) -> Iterator[list[CliqueSubList]]:
        """Decompress and yield ``chunk_size`` sub-lists at a time."""
        if self._streamed:
            raise LevelStoreError(
                "stream() called twice on a single-pass level store"
            )
        if self._pending:
            self._flush_pending()
        self._streamed = True
        return self._stream()

    def _stream(self) -> Iterator[list[CliqueSubList]]:
        for run in self._iter_runs():
            if isinstance(run, CompressedLevelBatch):
                self.decompressed_bytes += run.uncompressed_nbytes(
                    INDEX_BYTES, POINTER_BYTES
                )
                yield run.to_sublists()
                continue
            self.decompressed_bytes += sum(
                entry.uncompressed_nbytes(INDEX_BYTES, POINTER_BYTES)
                for entry in run
            )
            if self.kernel == "numpy":
                yield CompressedLevelBatch.from_entries(
                    run
                ).to_sublists()
            else:
                yield [entry.to_sublist() for entry in run]

    def stream_batches(self) -> Iterator[CompressedLevelBatch]:
        """Yield the level as :class:`CompressedLevelBatch` chunks.

        The structure-of-arrays counterpart of :meth:`stream_entries`
        for the numpy generation step: same chunking, same single-pass
        contract, same ``bypassed_bytes`` accounting — the words never
        leave compressed form.
        """
        if self._streamed:
            raise LevelStoreError(
                "stream() called twice on a single-pass level store"
            )
        if self._pending:
            self._flush_pending()
        self._streamed = True
        return self._stream_batches()

    def _stream_batches(self) -> Iterator[CompressedLevelBatch]:
        # consecutive batch parts are coalesced into one yield: the
        # consumer's per-call fixed cost dominates the array concat, and
        # nothing decompresses either way, so no working-set concern
        batch_run: list[CompressedLevelBatch] = []
        for run in self._iter_runs():
            if isinstance(run, CompressedLevelBatch):
                batch_run.append(run)
                continue
            if batch_run:
                yield self._merge_batches(batch_run)
                batch_run = []
            self.bypassed_bytes += sum(
                entry.uncompressed_nbytes(INDEX_BYTES, POINTER_BYTES)
                for entry in run
            )
            yield CompressedLevelBatch.from_entries(run)
        if batch_run:
            yield self._merge_batches(batch_run)

    def _merge_batches(
        self, batch_run: list[CompressedLevelBatch]
    ) -> CompressedLevelBatch:
        merged = CompressedLevelBatch.concat(batch_run)
        self.bypassed_bytes += merged.uncompressed_nbytes(
            INDEX_BYTES, POINTER_BYTES
        )
        return merged

    def stream_entries(self) -> Iterator[list[CompressedSubList]]:
        """Yield the compressed entries themselves, never decompressing.

        The zero-round-trip counterpart of :meth:`stream` for
        compressed-domain consumers; shares the same single-pass
        contract (one streaming pass total, whichever method starts
        it).  Chunking follows ``chunk_size`` so the generation step's
        chunk granularity matches the decompressing path.
        """
        if self._streamed:
            raise LevelStoreError(
                "stream() called twice on a single-pass level store"
            )
        if self._pending:
            self._flush_pending()
        self._streamed = True
        return self._stream_entries()

    def _stream_entries(self) -> Iterator[list[CompressedSubList]]:
        for run in self._iter_runs():
            if isinstance(run, CompressedLevelBatch):
                self.bypassed_bytes += run.uncompressed_nbytes(
                    INDEX_BYTES, POINTER_BYTES
                )
                yield run.to_entries()
                continue
            self.bypassed_bytes += sum(
                entry.uncompressed_nbytes(INDEX_BYTES, POINTER_BYTES)
                for entry in run
            )
            yield run

    def close(self) -> None:
        """Drop the compressed level."""
        self._parts = []
        self._pending = []


# The disk substrate implements the same interface structurally; register
# it so isinstance(LevelStore) holds without making repro.core depend on
# the engine package.
LevelStore.register(DiskLevelStore)
