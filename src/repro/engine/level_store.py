"""Level storage substrates for the unified enumeration loop.

The Clique Enumerator touches its candidate sub-lists in exactly one
pattern: append the whole next level, then stream it back once for
expansion.  :class:`LevelStore` captures that single-pass contract plus
the accounting the level loop needs (``N[k]``, ``M[k]``, measured bytes
— the paper's per-level statistics), so the storage substrate becomes a
policy choice:

* :class:`MemoryLevelStore` — candidates stay in RAM; streaming yields
  the whole level as one chunk so the generation step keeps its full
  cross-sub-list batching (the paper's in-core mode);
* :class:`~repro.core.out_of_core.DiskLevelStore` — candidates spill to
  disk and stream back chunk by chunk with counted I/O (the retired
  out-of-core mode, kept measurable).

Both are driven by the same loop in :mod:`repro.engine.level_loop`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.core.clique_enumerator import INDEX_BYTES, POINTER_BYTES
from repro.core.out_of_core import DiskLevelStore
from repro.core.sublist import CliqueSubList

__all__ = ["LevelStore", "MemoryLevelStore", "DiskLevelStore"]


class LevelStore(ABC):
    """Single-pass storage for one level of candidate sub-lists.

    Contract: ``append`` the complete level, then ``stream`` it back
    exactly once (in insertion order, as chunks), then ``close``.  The
    accounting properties must reflect everything appended so far; the
    level loop reads them for per-level statistics and memory budgets
    without materialising the level.
    """

    @abstractmethod
    def append(self, sl: CliqueSubList) -> None:
        """Add one sub-list to the level."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored sub-lists."""

    @property
    @abstractmethod
    def n_sublists(self) -> int:
        """The paper's ``N[k]`` for this level."""

    @property
    @abstractmethod
    def n_candidates(self) -> int:
        """The paper's ``M[k]`` for this level."""

    @property
    @abstractmethod
    def candidate_bytes(self) -> int:
        """Measured candidate storage of this level, in bytes."""

    @abstractmethod
    def stream(self) -> Iterator[list[CliqueSubList]]:
        """Yield the sub-lists back in insertion order, chunk by chunk."""

    @abstractmethod
    def close(self) -> None:
        """Release any backing resources; idempotent."""

    def __enter__(self) -> "LevelStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryLevelStore(LevelStore):
    """In-memory level store: a list with the paper's accounting.

    ``stream`` yields the entire level as a single chunk, so the
    generation step sees every sub-list at once and its cross-sub-list
    pair batching (``PAIR_BATCH``) is unchanged from the historical
    in-core driver.
    """

    def __init__(self) -> None:
        self._sublists: list[CliqueSubList] = []
        self._n_candidates = 0
        self._candidate_bytes = 0

    def append(self, sl: CliqueSubList) -> None:
        """Add one sub-list to the level."""
        self._sublists.append(sl)
        self._n_candidates += len(sl)
        self._candidate_bytes += sl.nbytes(INDEX_BYTES, POINTER_BYTES)

    def __len__(self) -> int:
        return len(self._sublists)

    @property
    def n_sublists(self) -> int:
        """The paper's ``N[k]`` for this level."""
        return len(self._sublists)

    @property
    def n_candidates(self) -> int:
        """The paper's ``M[k]`` for this level."""
        return self._n_candidates

    @property
    def candidate_bytes(self) -> int:
        """Measured candidate storage of this level, in bytes."""
        return self._candidate_bytes

    def stream(self) -> Iterator[list[CliqueSubList]]:
        """Yield the whole level as one chunk (full batching preserved)."""
        if self._sublists:
            yield self._sublists

    def close(self) -> None:
        """Drop the level (lists are garbage-collected)."""
        self._sublists = []


# The disk substrate implements the same interface structurally; register
# it so isinstance(LevelStore) holds without making repro.core depend on
# the engine package.
LevelStore.register(DiskLevelStore)
