"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or mutation (bad vertex ids, self loops)."""


class BitSetError(ReproError):
    """Invalid bitset operation (universe mismatch, out-of-range index)."""


class ParseError(ReproError):
    """Malformed input encountered while reading a graph or dataset file."""


class ParameterError(ReproError):
    """An algorithm parameter is out of its documented domain."""


class ConfigError(ParameterError):
    """A run configuration is inconsistent with the backend it targets.

    Raised by :func:`repro.engine.config.resolve_for_backend` — the one
    place a config is cross-checked against a registry entry — so the
    CLI (``repro enumerate``), the engine facade, and the job service's
    submit path all fail with the *same* message at the earliest point
    they can: before any worker pool, spill directory, or queue slot is
    created.  Subclasses :class:`ParameterError` so existing callers
    that catch the broader class keep working.
    """


class LevelStoreError(ReproError):
    """A level store was used outside its single-pass contract.

    The level-wise enumeration appends one complete level, streams it
    back exactly once, then closes the store.  Streaming twice (which
    would double-count expansion) or appending after streaming began
    raises this error instead of silently corrupting the level.
    """


class BudgetExceeded(ReproError):
    """A configured resource budget (cliques, memory, work) was exceeded.

    Raised by enumeration drivers when ``max_cliques`` or ``max_bytes``
    limits are hit; carries partial-progress information.
    """

    def __init__(self, message: str, *, emitted: int = 0, level: int = 0):
        super().__init__(message)
        #: number of maximal cliques emitted before the budget tripped
        self.emitted = emitted
        #: clique size level the enumerator had reached
        self.level = level


class SolverError(ReproError):
    """An exact solver failed to certify a solution (internal invariant)."""


class ServiceError(ReproError):
    """A job-service request failed (transport error or refused op)."""


class AlignmentError(ReproError):
    """Sequence or pathway alignment received inconsistent inputs."""
