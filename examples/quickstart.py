"""Quickstart: maximal clique enumeration on a small graph.

Builds a graph, enumerates its maximal cliques with the paper's Clique
Enumerator (non-decreasing size order), computes the maximum clique and a
paraclique, and shows the bitmap data representation underneath.

Run:  python examples/quickstart.py
"""

from repro import (
    BitSet,
    Graph,
    enumerate_maximal_cliques,
    maximum_clique,
    paraclique,
)
from repro.core.generators import planted_clique


def main() -> None:
    # --- a tiny hand-built graph --------------------------------------
    g = Graph.from_edges(
        7,
        [
            (0, 1), (0, 2), (1, 2),          # triangle {0,1,2}
            (2, 3),                          # bridge
            (3, 4), (3, 5), (3, 6),
            (4, 5), (4, 6), (5, 6),          # K4 {3,4,5,6}
        ],
    )
    print(f"graph: {g}")

    result = enumerate_maximal_cliques(g)
    print("maximal cliques (emitted in non-decreasing size order):")
    for clique in result.cliques:
        print(f"  size {len(clique)}: {clique}")

    print(f"maximum clique: {maximum_clique(g)}")

    # --- the bitmap index the algorithms run on ------------------------
    neighbors_of_3 = g.neighbor_bitset(3)
    print(f"N(3) as a bit string: {neighbors_of_3}")
    common = g.common_neighbors([4, 5])
    print(f"common neighbors of {{4, 5}}: {sorted(common)}")

    # --- a noisy planted clique and its paraclique ---------------------
    noisy, members = planted_clique(40, 8, p=0.12, seed=7)
    print(f"\nplanted 8-clique in {noisy}: {members}")
    best = maximum_clique(noisy)
    print(f"recovered maximum clique:     {best}")
    glommed = paraclique(noisy, glom=1, base=best)
    print(f"paraclique (glom=1):          {glommed}")

    # --- BitSet algebra -------------------------------------------------
    a = BitSet.from_indices(10, [1, 3, 5, 7])
    b = BitSet.from_indices(10, [3, 5, 8])
    print(f"\nbitset a & b = {sorted(a & b)}, a | b = {sorted(a | b)}")


if __name__ == "__main__":
    main()
