"""Parallel clique enumeration: simulated Altix sweep + real processes.

Demonstrates both halves of the parallel substrate:

1. the trace-replay simulation of the paper's 256-processor SGI Altix —
   record the enumeration once, replay it at any processor count, and
   print the speedup/balance tables of Figures 5–8;
2. the real ``multiprocessing`` backend executing the identical
   level-synchronous algorithm on this machine's cores — selected, like
   its sequential siblings, by backend name through the unified
   enumeration engine.

Run:  python examples/parallel_scaling.py
"""

import time

from repro.core.generators import planted_partition
from repro.engine import EnumerationConfig, EnumerationEngine
from repro.parallel import (
    MachineSpec,
    load_balance_stats,
    record_trace,
    simulate_processor_sweep,
    speedup_table,
)


def main() -> None:
    g, _ = planted_partition(
        400, [16, 14, 13, 12, 11, 10, 9], p_in=0.95, p_out=0.015, seed=3
    )
    print(f"workload: {g}")

    # --- trace once, simulate any processor count ------------------------
    trace = record_trace(g, k_min=3)
    print(
        f"trace: {sum(len(l) for l in trace.levels)} sub-list expansions "
        f"over {len(trace.levels)} levels, "
        f"{trace.total_maximal} maximal cliques"
    )
    spec = MachineSpec(n_processors=1, seconds_per_work_unit=2e-7)
    runs = simulate_processor_sweep(
        trace, spec, [1, 2, 4, 8, 16, 32, 64, 128, 256]
    )
    print("\nsimulated Altix (virtual seconds):")
    print(f"{'p':>4} {'T(p)':>10} {'speedup':>8} {'efficiency':>10}")
    for p, tp, sp, eff in speedup_table(runs):
        print(f"{p:>4} {tp:>10.4f} {sp:>8.1f} {eff:>10.2f}")

    stats = load_balance_stats(runs[16])
    print(
        f"load balance at p=16: std/mean = {stats.std_over_mean:.1%}, "
        f"{stats.n_transfers} transfers (paper bound: 10%)"
    )

    # --- real multiprocessing on this host ------------------------------
    # First measure what the host can deliver at all: two processes
    # burning pure numpy concurrently.  Containers often cap CPU
    # bandwidth below the visible core count.
    host_scaling = _raw_two_process_scaling()
    print(
        f"\nhost parallel capacity: 2-process raw numpy scaling = "
        f"{host_scaling:.2f}x (ideal 2.0)"
    )

    print("real multiprocessing backend (partition-persistent workers):")
    engine = EnumerationEngine()
    seq = engine.run(g, EnumerationConfig(backend="incore", k_min=3))
    par = engine.run(
        g, EnumerationConfig(backend="multiprocess", k_min=3, jobs=2)
    )

    assert sorted(seq.cliques) == sorted(par.cliques)
    print(
        f"  sequential: {seq.wall_seconds:.2f}s   "
        f"{par.n_workers} workers: {par.wall_seconds:.2f}s"
    )
    print(
        f"  identical output ({len(seq.cliques)} maximal cliques), "
        f"{par.transfers} scheduler transfers; wall-clock ratio "
        f"{seq.wall_seconds / par.wall_seconds:.2f}x against a host "
        f"ceiling of {host_scaling:.2f}x"
    )


def _burn(q) -> None:
    import numpy as np

    t0 = time.perf_counter()
    a = np.arange(2_000_000, dtype=np.uint64)
    acc = 0
    for _ in range(40):
        acc += int(
            np.bitwise_count(a & np.uint64(0x5555555555555555)).sum() & 7
        )
    q.put(time.perf_counter() - t0)


def _raw_two_process_scaling() -> float:
    """Measured speedup of two concurrent numpy burners vs one."""
    import multiprocessing as mp

    ctx = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    )
    q = ctx.Queue()
    t0 = time.perf_counter()
    p = ctx.Process(target=_burn, args=(q,))
    p.start()
    p.join()
    single = time.perf_counter() - t0
    t0 = time.perf_counter()
    procs = [ctx.Process(target=_burn, args=(q,)) for _ in range(2)]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    double = time.perf_counter() - t0
    return 2 * single / double if double > 0 else 1.0


if __name__ == "__main__":
    main()
