"""ClustalXP-style multiple sequence alignment pipeline.

The paper cites "the construction of ClustalXP for high-performance
multiple sequence alignment" as a framework consumer.  This example runs
the rebuilt skeleton: a mutated sequence family, the (parallelisable)
all-pairs distance stage, a neighbor-joining guide tree, progressive
profile alignment, and — as the pathway-analysis counterpart — a
PathBLAST-style alignment of two metabolic pathways.

Run:  python examples/msa_clustalxp.py
"""

import time

from repro.bio.msa import (
    distance_matrix,
    neighbor_joining,
    progressive_alignment,
    sum_of_pairs,
)
from repro.bio.pathway_alignment import align_pathways, conserved_segments
from repro.bio.sequences import sequence_family


def main() -> None:
    ancestor, family = sequence_family(
        ancestor_length=80,
        n_members=8,
        substitution_rate=0.08,
        indel_rate=0.03,
        seed=1234,
    )
    print(f"family of {len(family)} sequences from an 80-bp ancestor")

    # --- distance stage (ClustalXP's parallel fan-out) -----------------
    t0 = time.perf_counter()
    dist = distance_matrix(family, n_workers=2)
    t_par = time.perf_counter() - t0
    print(
        f"all-pairs distances ({len(family) * (len(family) - 1) // 2} "
        f"alignments) in {t_par:.2f}s with 2 workers"
    )

    # --- guide tree + progressive alignment -----------------------------
    tree = neighbor_joining(dist)
    msa = progressive_alignment(family, tree=tree)
    print(f"\nMSA ({len(msa)} rows x {len(msa[0])} columns):")
    for i, row in enumerate(msa):
        print(f"  seq{i}: {row}")
    print(f"sum-of-pairs score: {sum_of_pairs(msa):.0f}")

    # column conservation summary
    conserved = sum(
        1
        for col in zip(*msa)
        if len({c for c in col if c != '-'}) == 1 and "-" not in col
    )
    print(
        f"fully conserved columns: {conserved}/{len(msa[0])} "
        f"({conserved / len(msa[0]):.0%})"
    )

    # --- pathway alignment (PathBLAST-style) -----------------------------
    yeast_glycolysis = ["HXK2", "PGI1", "PFK1", "FBA1", "TPI1", "TDH3",
                        "PGK1", "GPM1", "ENO2", "CDC19"]
    human_glycolysis = ["HK1", "PGI1", "PFK1", "FBA1", "TPI1", "GAPDH",
                        "PGK1", "PGAM1", "ENO1", "PKM"]
    alignment = align_pathways(yeast_glycolysis, human_glycolysis)
    print(
        f"\npathway alignment score (yeast vs human glycolysis): "
        f"{alignment.score:.0f}"
    )
    for seg in conserved_segments(alignment, min_length=2):
        steps = " -> ".join(a for a, _ in seg)
        print(f"  conserved module: {steps}")


if __name__ == "__main__":
    main()
