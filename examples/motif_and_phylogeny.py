"""Clique applications beyond networks: motifs and phylogeny.

Two more clique consumers from the paper's Sections 1–2.1:

* **cis-regulatory motif finding** — a planted (l, d)-motif instance is
  solved by maximum clique on the WINNOWER occurrence graph;
* **character compatibility in phylogenetics** — the largest set of
  binary characters consistent with one evolutionary tree is a maximum
  clique of the four-gamete compatibility graph, and a perfect phylogeny
  is built for it.

Run:  python examples/motif_and_phylogeny.py
"""

import numpy as np

from repro.bio.motifs import find_motif, hamming, plant_motif
from repro.bio.phylo_compat import (
    build_perfect_phylogeny,
    compatibility_graph,
    largest_compatible_set,
)


def motif_demo() -> None:
    print("=== cis-regulatory motif finding (clique on occurrence graph)")
    inst = plant_motif(
        n_sequences=6, seq_length=60, motif_length=9, d=1, seed=77
    )
    print(f"planted motif: {inst.motif} (one copy per sequence, d=1)")
    result = find_motif(inst.sequences, inst.l, inst.d)
    print(f"clique occurrences: {result.occurrences}")
    print(
        f"recovered consensus: {result.consensus} "
        f"(Hamming distance to truth: "
        f"{hamming(result.consensus, inst.motif)})"
    )
    hits = sum(
        1
        for (si, off) in result.occurrences
        if off == inst.positions[si]
    )
    print(f"planted positions recovered: {hits}/{len(inst.sequences)}")


def phylogeny_demo() -> None:
    print("\n=== character compatibility (maximum clique) + perfect "
          "phylogeny")
    rng = np.random.default_rng(5)
    matrix = (rng.random((7, 9)) < 0.4).astype(int)
    g = compatibility_graph(matrix)
    print(
        f"characters: {matrix.shape[1]}, compatible pairs: {g.m} "
        f"of {g.n * (g.n - 1) // 2}"
    )
    best = largest_compatible_set(matrix)
    print(f"largest jointly compatible set: {best} "
          f"({len(best)} characters)")
    tree = build_perfect_phylogeny(matrix, best)

    def render(node, depth=0):
        label = "root" if node.character < 0 else (
            f"char {node.character}" + (" (flipped)" if node.flipped else "")
        )
        taxa = f" taxa={node.taxa}" if node.taxa else ""
        print("  " * depth + f"- {label}{taxa}")
        for child in node.children:
            render(child, depth + 1)

    render(tree)


if __name__ == "__main__":
    motif_demo()
    phylogeny_demo()
