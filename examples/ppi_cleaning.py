"""Cleaning noisy protein-interaction data with Boolean graph queries.

The paper: two-hybrid screens carry "high potential for false positive
identifications"; representing each experiment as a graph and running
"at-least-k-of-n over multiple graphs" separates true interactions from
noise.  This example simulates replicate screens of a ground-truth
interactome, cleans them by voting, scores the recovery, and then mines
the cleaned network for protein complexes (maximal cliques).

Run:  python examples/ppi_cleaning.py
"""

from repro.bio.ppi import (
    clean_by_voting,
    interaction_modules,
    score_recovery,
    simulate_replicates,
)
from repro.core.generators import planted_partition
from repro.engine import EnumerationConfig


def main() -> None:
    # ground truth: protein complexes are dense blocks
    truth, complexes = planted_partition(
        200,
        sizes=[8, 7, 6, 6, 5],
        p_in=0.9,
        p_out=0.01,
        seed=11,
    )
    print(f"true interactome: {truth} with {len(complexes)} complexes")

    # five replicate two-hybrid screens, each noisy
    replicates = simulate_replicates(
        truth, n_replicates=5, fp_rate=0.01, fn_rate=0.15, seed=99
    )
    print("\nper-replicate quality:")
    for i, rep in enumerate(replicates):
        s = score_recovery(truth, rep)
        print(
            f"  screen {i}: precision={s.precision:.3f} "
            f"recall={s.recall:.3f} f1={s.f1:.3f}"
        )

    print("\nat-least-k-of-5 voting:")
    for k in range(1, 6):
        cleaned = clean_by_voting(replicates, k)
        s = score_recovery(truth, cleaned)
        print(
            f"  k={k}: precision={s.precision:.3f} "
            f"recall={s.recall:.3f} f1={s.f1:.3f} edges={cleaned.m}"
        )

    # complex discovery on the best cleaning, through the engine
    best, cliques = interaction_modules(
        replicates, 3, config=EnumerationConfig(k_min=4)
    )
    print(
        f"\nmaximal cliques (size >= 4) in the cleaned network: "
        f"{len(cliques.cliques)} (backend={cliques.backend})"
    )
    clique_sets = [set(c) for c in cliques.cliques]
    for i, cx in enumerate(complexes):
        # a complex counts as found when some clique covers most of it
        overlap = max(
            (len(set(cx) & cs) / len(cx) for cs in clique_sets),
            default=0.0,
        )
        print(f"  complex {i} (size {len(cx)}): best coverage {overlap:.0%}")


if __name__ == "__main__":
    main()
