"""Gene co-expression network analysis — the paper's primary workload.

Reproduces the paper's Section 3 pipeline end to end on synthetic
microarray data with planted co-expression modules:

1. generate expression (genes x conditions) with known modules,
2. normalize, compute the Spearman rank correlation matrix,
3. threshold to a sparse co-expression graph,
4. enumerate maximal cliques through the unified enumeration engine
   (swap ``backend="incore"`` for ``"ooc"`` or ``"multiprocess"`` to
   change the substrate without touching the pipeline),
5. check that the planted modules are recovered as cliques, and extend
   the largest one to a paraclique.

Run:  python examples/gene_coexpression.py
"""

from repro.bio.coexpression import coexpression_cliques
from repro.bio.expression import ModuleSpec, synthetic_expression
from repro.bio.threshold_selection import select_threshold, threshold_sweep
from repro.core.decomposition import paraclique_decomposition
from repro.core.maximum_clique import maximum_clique
from repro.core.memory_model import memory_profile
from repro.core.paraclique import paraclique, subgraph_density
from repro.engine import EnumerationConfig


def main() -> None:
    # --- synthetic microarray with planted modules ----------------------
    modules = [
        ModuleSpec(size=14, rho=0.97),
        ModuleSpec(size=11, rho=0.96),
        ModuleSpec(size=9, rho=0.95),
        ModuleSpec(size=7, rho=0.95),
    ]
    dataset = synthetic_expression(
        n_genes=600, n_conditions=60, modules=modules, seed=42
    )
    print(
        f"expression matrix: {dataset.n_genes} genes x "
        f"{dataset.n_conditions} conditions, "
        f"{len(dataset.modules)} planted modules"
    )

    # --- normalization -> Spearman -> threshold -> graph -> cliques -----
    res, enum = coexpression_cliques(
        dataset,
        target_density=0.002,
        config=EnumerationConfig(backend="incore", k_min=4),
    )
    g = res.graph
    print(
        f"co-expression graph: {g} "
        f"(|r| >= {res.threshold:.3f}, {res.method})"
    )
    print(
        f"maximal cliques of size >= 4: {len(enum.cliques)} "
        f"(backend={enum.backend}, {enum.wall_seconds:.2f}s)"
    )
    by_size = enum.by_size()
    for size in sorted(by_size):
        print(f"  size {size}: {len(by_size[size])}")

    # --- module recovery --------------------------------------------------
    clique_sets = [set(c) for c in enum.cliques]
    for i, module in enumerate(dataset.modules):
        recovered = any(set(module) <= cs for cs in clique_sets)
        print(
            f"module {i} (size {len(module)}): "
            f"{'recovered as clique' if recovered else 'NOT recovered'}"
        )

    # --- the paper's memory profile (Figure 9 shape) ---------------------
    prof = memory_profile(enum.level_stats)
    peak_k, peak_bytes = prof.peak()
    print(
        f"candidate memory peaks at clique size {peak_k} "
        f"({peak_bytes / 1024:.1f} KB) — rise-peak-fall, Figure 9"
    )

    # --- densely connected neighborhood of the top module ----------------
    top = maximum_clique(g)
    glommed = paraclique(g, glom=1, base=top)
    print(
        f"maximum clique has {len(top)} genes; paraclique extends it to "
        f"{len(glommed)} at density {subgraph_density(g, glommed):.2f}"
    )
    names = [dataset.gene_names[v] for v in top[:6]]
    print(f"first genes of the top module: {', '.join(names)} ...")

    # --- threshold selection by clique inflection (Section 2.1) ----------
    sweep = threshold_sweep(res.correlation, [0.9, 0.8, 0.7, 0.6, 0.5])
    chosen = select_threshold(sweep)
    print("\nthreshold sweep (max clique size per cutoff):")
    for p in sweep:
        marker = "  <- selected" if p is chosen else ""
        print(
            f"  |r| >= {p.threshold:.2f}: edges={p.n_edges:5d} "
            f"max clique={p.max_clique}{marker}"
        )

    # --- dimensionality reduction by paraclique peeling -------------------
    decomp = paraclique_decomposition(g, min_size=5, glom=1)
    print(
        f"\nparaclique decomposition: {len(decomp.modules)} modules "
        f"covering {decomp.coverage(g.n):.0%} of the genes"
    )
    for i, mod in enumerate(decomp.modules):
        print(
            f"  module {i}: {len(mod)} genes "
            f"(seed clique {mod.seed_clique_size}, "
            f"density {mod.density:.2f})"
        )


if __name__ == "__main__":
    main()
