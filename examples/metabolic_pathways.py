"""Extreme pathway analysis of metabolic networks.

The paper's introduction puts extreme-pathway enumeration "at the core"
of systemic pathway analysis.  This example builds metabolic models —
including a small glycolysis-like chain with branches and a reversible
isomerase — and enumerates their extreme pathways exactly, in rational
arithmetic.

Run:  python examples/metabolic_pathways.py
"""

from repro.bio.extreme_pathways import extreme_pathways
from repro.bio.stoichiometry import MetabolicNetwork, Reaction, example_network


def glycolysis_like() -> MetabolicNetwork:
    """A branched toy central-carbon model.

    Glucose is taken up and processed along a linear backbone with an
    overflow branch (fermentation) and a biosynthetic drain, plus a
    reversible isomerase step — enough structure for non-obvious
    pathways without combinatorial blow-up.
    """
    return MetabolicNetwork(
        [
            Reaction("GLC_uptake", {"GLCext": -1, "G6P": 1}),
            Reaction("PGI", {"G6P": -1, "F6P": 1}, reversible=True),
            Reaction("PFK", {"F6P": -1, "FBP": 1}),
            Reaction("ALD", {"FBP": -1, "PYR": 2}),
            Reaction("biosynth", {"G6P": -1, "BIOM": 1}),
            Reaction("biomass_drain", {"BIOM": -1, "BIOMext": 1}),
            Reaction("PDC", {"PYR": -1, "ETH": 1}),
            Reaction("eth_export", {"ETH": -1, "ETHext": 1}),
            Reaction("pyr_export", {"PYR": -1, "PYRext": 1}),
        ],
        external={"GLCext", "BIOMext", "ETHext", "PYRext"},
    )


def show(name: str, net: MetabolicNetwork) -> None:
    print(f"\n=== {name}: {net}")
    result = extreme_pathways(net)
    print(f"{len(result)} extreme pathways:")
    for i, flux in enumerate(result.pathways):
        active = ", ".join(
            f"{rname}={f}"
            for rname, f in zip(result.reaction_names, flux)
            if f
        )
        print(f"  P{i + 1}: {active}")


def main() -> None:
    show("textbook branched network", example_network())
    show("glycolysis-like model", glycolysis_like())

    # every enumerated pathway satisfies steady state by construction;
    # demonstrate the check explicitly on one of them
    net = glycolysis_like()
    result = extreme_pathways(net)
    flux = result.pathways[0]
    print(
        f"\nsteady-state check for P1: "
        f"S v = 0 holds -> {net.flux_is_steady(list(flux))}"
    )


if __name__ == "__main__":
    main()
