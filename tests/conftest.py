"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    planted_clique,
    star_graph,
)
from repro.core.graph import Graph


@pytest.fixture
def empty_graph() -> Graph:
    return Graph(0)


@pytest.fixture
def singleton_graph() -> Graph:
    return Graph(1)


@pytest.fixture
def triangle() -> Graph:
    return complete_graph(3)


@pytest.fixture
def k5() -> Graph:
    return complete_graph(5)


@pytest.fixture
def p4() -> Graph:
    return path_graph(4)


@pytest.fixture
def c6() -> Graph:
    return cycle_graph(6)


@pytest.fixture
def star7() -> Graph:
    return star_graph(7)


@pytest.fixture
def barbell4() -> Graph:
    return barbell_graph(4)


@pytest.fixture
def random_graph() -> Graph:
    """A fixed mid-size random graph with varied clique structure."""
    g, _ = planted_clique(40, 7, 0.15, seed=11)
    return g


@pytest.fixture(params=[0, 1, 2, 3])
def seeded_er(request) -> Graph:
    """Four small random graphs for cross-validation sweeps."""
    return erdos_renyi(18, 0.35, seed=request.param)


def nx_maximal_cliques(g: Graph) -> list[tuple[int, ...]]:
    """Reference maximal cliques via networkx, sorted canonically."""
    import networkx as nx

    nxg = g.to_networkx()
    return sorted(tuple(sorted(c)) for c in nx.find_cliques(nxg))
