"""Tests for the report renderer."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import (
    format_bytes,
    format_seconds,
    render_table,
)


class TestFormatters:
    def test_seconds_ranges(self):
        assert format_seconds(1234.5) == "1,234 s"
        assert format_seconds(5.678) == "5.68 s"
        assert format_seconds(0.0123) == "12.30 ms"
        assert format_seconds(2.5e-6) == "2.5 us"

    def test_bytes_ranges(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(3 * 1024**3) == "3.0 GB"


class TestRenderTable:
    def test_basic_structure(self):
        out = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+-")
        assert "| name" in lines[2]
        assert out.count("|") >= 9

    def test_numeric_columns_right_aligned(self):
        out = render_table(["x"], [["1"], ["22"]])
        rows = [l for l in out.splitlines() if l.startswith("|")]
        # the data cell '1' must be right-aligned under the header
        assert rows[1].endswith(" 1 |")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
