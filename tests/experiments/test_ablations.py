"""Tests for the ablation experiment driver."""

from __future__ import annotations

import pytest

from repro.core.generators import planted_partition
from repro.experiments import ablations
from repro.experiments.workloads import Workload


@pytest.fixture(scope="module")
def result():
    g, _ = planted_partition(
        120, [11, 10, 9], p_in=0.95, p_out=0.02, seed=13
    )
    w = Workload(
        name="ablation_test",
        graph=g,
        paper_analog="test-only",
        expected_max_clique=11,
        description="small ablation workload",
    )
    return ablations.run(w)


class TestAblations:
    def test_bitscan_scans_more_volume(self, result):
        """The paper's §2.3 argument: n bits per clique vs bounded list."""
        assert result.bitscan_bits > 10 * result.list_pair_checks

    def test_ooc_pays_disk_traffic(self, result):
        assert result.ooc_bytes > 0
        assert result.ooc_seconds > 0

    def test_balancing_helps(self, result):
        assert result.balanced_16p <= result.unbalanced_16p + 1e-9

    def test_penalty_monotone(self, result):
        series = sorted(result.penalty_series.items())
        times = [t for _, t in series]
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))

    def test_report_renders(self, result):
        text = ablations.report(result)
        assert "generation" in text
        assert "out-of-core" in text
