"""Tests pinning the scaled workloads to their paper analogs."""

from __future__ import annotations

import pytest

from repro.core.maximum_clique import maximum_clique_size
from repro.experiments.workloads import (
    mouse_brain_dense,
    mouse_brain_sparse,
    myogenic_like,
    scaled_init_k,
)


class TestInitKMap:
    def test_paper_labels(self):
        assert scaled_init_k(18) == 9
        assert scaled_init_k(19) == 10
        assert scaled_init_k(20) == 11
        assert scaled_init_k(3) == 3

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            scaled_init_k(21)


class TestMouseBrainSparse:
    def test_cached(self):
        assert mouse_brain_sparse() is mouse_brain_sparse()

    def test_scale(self):
        w = mouse_brain_sparse()
        assert w.graph.n == 1242  # 12,422 / 10
        assert w.graph.density() < 0.005  # sparse regime

    def test_max_clique_is_17(self):
        """Paper: maximum clique 17 on this graph."""
        w = mouse_brain_sparse()
        assert maximum_clique_size(w.graph) == 17
        assert w.expected_max_clique == 17


class TestMyogenicLike:
    def test_scale(self):
        w = myogenic_like()
        assert w.graph.n == 724  # ~2,895 / 4

    def test_max_clique_is_14(self):
        """Paper's 28 with the documented k-axis halving."""
        w = myogenic_like()
        assert maximum_clique_size(w.graph) == 14

    def test_init_k_levels_have_work(self):
        """The scaled Init_K levels must hold candidate cliques."""
        from repro.core.kclique import enumerate_k_cliques

        w = myogenic_like()
        for scaled in (9, 10, 11):
            res = enumerate_k_cliques(w.graph, scaled)
            assert len(res.non_maximal) > 0, f"Init_K={scaled} is empty"


class TestMouseBrainDense:
    def test_scale_and_max_clique(self):
        w = mouse_brain_dense()
        assert w.graph.n == 1242
        assert maximum_clique_size(w.graph) == w.expected_max_clique == 22

    def test_denser_than_sparse(self):
        assert (
            mouse_brain_dense().graph.density()
            > mouse_brain_sparse().graph.density()
        )
