"""Tests for the experiment drivers.

Heavy experiments run on a small substitute workload where possible; the
figure drivers that depend on the cached myogenic traces exercise the real
thing once (module-scoped) and assert the paper's qualitative claims.
"""

from __future__ import annotations

import pytest

from repro.core.generators import planted_partition
from repro.experiments import (
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
)
from repro.experiments.runner import EXPERIMENTS, main
from repro.experiments.workloads import Workload


@pytest.fixture(scope="module")
def small_workload() -> Workload:
    # large enough that the Clique Enumerator's asymptotic advantage over
    # Kose shows despite interpreter overheads (see table1 docstring)
    g, _ = planted_partition(
        300, [15, 14, 13, 12, 10], p_in=0.97, p_out=0.02, seed=77
    )
    return Workload(
        name="test_small",
        graph=g,
        paper_analog="test-only",
        expected_max_clique=15,
        description="small workload for experiment tests",
    )


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self, small_workload):
        # warm-up pass: JIT-free but the first numpy/code-path touch is
        # measurably slower, and Table 1 is a timing comparison
        from repro.core.clique_enumerator import enumerate_maximal_cliques

        enumerate_maximal_cliques(small_workload.graph, k_min=3, k_max=5)
        return table1.run(small_workload)

    def test_run_on_small(self, result):
        assert result.outputs_match
        assert result.kose_seconds > 0 and result.ce_seconds > 0
        assert result.n_maximal > 0

    def test_ce_beats_kose(self, result):
        """Table 1's claim at any scale: the Clique Enumerator wins."""
        assert result.speedup > 1.0

    def test_ce_uses_less_memory(self, result):
        """Candidate pruning beats full retention on peak storage."""
        assert result.memory_ratio > 1.5

    def test_report_renders(self, result):
        text = table1.report(result)
        assert "Kose RAM" in text
        assert "383" in text  # paper reference row present


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(processor_counts=(1, 2, 4, 64, 256))

    def test_monotone_to_mid_range(self, result):
        """Run time decreases with processors up to 64."""
        for k in (18, 19, 20):
            assert result.seconds(k, 2) < result.seconds(k, 1)
            assert result.seconds(k, 4) < result.seconds(k, 2)
            assert result.seconds(k, 64) < result.seconds(k, 4)

    def test_init_k_halving(self, result):
        """Paper: +1 Init_K roughly halves the run time."""
        t18 = result.seconds(18, 1)
        t19 = result.seconds(19, 1)
        t20 = result.seconds(20, 1)
        assert 1.4 < t18 / t19 < 2.8
        assert 1.4 < t19 / t20 < 2.8

    def test_degradation_at_256(self, result):
        """Paper: performance degrades a little at 256 processors."""
        for k in (18, 19, 20):
            assert result.seconds(k, 256) > result.seconds(k, 64) * 0.8

    def test_report_renders(self, result):
        text = figure5.report(result)
        assert "Init_K=18" in text and "256" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6.run(processor_counts=(1, 2, 4, 8, 16, 32, 64))

    def test_relative_speedup_near_paper(self, result):
        """Paper: relative speedups remain around 1.8 up to 64."""
        for k in (18, 19, 20, 3):
            mean_rel = result.mean_relative(k)
            assert 1.5 <= mean_rel <= 2.0, f"Init_K={k}: {mean_rel}"

    def test_absolute_below_ideal(self, result):
        for k, series in result.absolute.items():
            for p, s in series.items():
                assert s <= p + 1e-9

    def test_report_renders(self, result):
        text = figure6.report(result)
        assert "relative" in text.lower()


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run()

    def test_monotonicity(self, result):
        """The figure's claim: speedup grows with sequential time."""
        assert result.is_monotone()

    def test_speedups_in_paper_band(self, result):
        """Paper band at 256 processors: 22x to 51x."""
        speedups = [row.speedup for row in result.rows]
        assert min(speedups) > 10
        assert max(speedups) < 110

    def test_report_renders(self, result):
        assert "speedup increases" in figure7.report(result)


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run()

    def test_paper_balance_criterion(self, result):
        """Paper: std within 10% of mean busy time."""
        assert result.max_std_over_mean() <= 0.10

    def test_balancer_not_worse(self, result):
        for p in result.balanced:
            assert (
                result.balanced[p].std_over_mean
                <= result.unbalanced[p].std_over_mean + 1e-9
            )

    def test_report_renders(self, result):
        assert "Figure 8" in figure8.report(result)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self, small_workload):
        return figure9.run(small_workload)

    def test_rise_peak_fall(self, result):
        sizes = result.profile.sizes
        series = result.profile.measured_bytes
        peak_k, peak_b = result.profile.peak()
        assert sizes[0] < peak_k < sizes[-1]
        assert series[-1] < peak_b

    def test_peak_fraction_mid_range(self, result):
        """Paper peak at 13/28 = 46%; shape check: peak in 25–75%."""
        assert 0.25 <= result.peak_fraction() <= 0.75

    def test_report_renders(self, result):
        assert "peak" in figure9.report(result)


class TestRunner:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "maxclique", "figure5", "figure6", "figure7",
            "figure8", "figure9", "figure9_stores", "figure9_domains",
            "ablations",
        }

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_single_experiment_runs(self, capsys):
        assert main(["figure8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
