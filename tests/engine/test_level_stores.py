"""Level-store substrate tests: the single-pass contract, the WAH
compressed store, and the ``level_store`` policy threading through
config, registry, facade, and cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bitset as bs
from repro.core.generators import erdos_renyi, overlapping_cliques
from repro.core.sublist import CliqueSubList, CompressedSubList
from repro.engine import (
    LEVEL_STORES,
    CompressedLevelStore,
    DiskLevelStore,
    EnumerationConfig,
    EnumerationEngine,
    LevelStore,
    MemoryLevelStore,
    get_backend,
    run_enumeration,
)
from repro.errors import LevelStoreError, ParameterError
from repro.service.cache import ResultCache

ENGINE = EnumerationEngine()

#: the backends that run the shared level loop over a pluggable store.
STORE_BACKENDS = ("incore", "bitscan", "ooc", "threads")


def _sl(prefix, tails, n=256):
    return CliqueSubList(
        prefix=tuple(prefix),
        tails=np.asarray(tails, dtype=np.int64),
        cn_words=bs.indices_to_words(tails, n),
    )


def _stores(tmp_path):
    return {
        "memory": MemoryLevelStore(),
        "disk": DiskLevelStore(tmp_path),
        "wah": CompressedLevelStore(),
    }


class TestSinglePassContract:
    """Regression: a second stream() used to silently replay the whole
    level (MemoryLevelStore), double-counting expansion."""

    @pytest.mark.parametrize("name", LEVEL_STORES)
    def test_second_stream_raises(self, name, tmp_path):
        store = _stores(tmp_path)[name]
        store.append(_sl([0], [1, 2]))
        assert sum(len(c) for c in store.stream()) == 1
        with pytest.raises(LevelStoreError, match="twice"):
            store.stream()
        store.close()

    @pytest.mark.parametrize("name", LEVEL_STORES)
    def test_second_stream_raises_even_unconsumed(self, name, tmp_path):
        """The violation is detected at call time, not first-next."""
        store = _stores(tmp_path)[name]
        store.append(_sl([0], [1, 2]))
        store.stream()  # never iterated
        with pytest.raises(LevelStoreError):
            store.stream()
        store.close()

    @pytest.mark.parametrize("name", LEVEL_STORES)
    def test_append_after_stream_raises(self, name, tmp_path):
        store = _stores(tmp_path)[name]
        store.append(_sl([0], [1, 2]))
        list(store.stream())
        with pytest.raises(LevelStoreError, match="single-pass"):
            store.append(_sl([1], [2, 3]))
        store.close()

    @pytest.mark.parametrize("name", LEVEL_STORES)
    def test_close_stays_idempotent(self, name, tmp_path):
        store = _stores(tmp_path)[name]
        store.append(_sl([0], [1, 2]))
        store.close()
        store.close()


class TestCompressedLevelStore:
    def test_is_level_store(self):
        assert isinstance(CompressedLevelStore(), LevelStore)

    def test_accounting_matches_memory_counts(self):
        mem, wah = MemoryLevelStore(), CompressedLevelStore()
        for sl in (_sl([0], [1, 2]), _sl([1], [2, 3, 4])):
            mem.append(sl)
            wah.append(sl)
        assert wah.n_sublists == mem.n_sublists == 2
        assert wah.n_candidates == mem.n_candidates == 5
        assert wah.uncompressed_bytes == mem.candidate_bytes
        # the sparse 256-bit cn strings compress below the raw bytes
        assert wah.candidate_bytes < mem.candidate_bytes
        assert wah.compression_ratio() > 1

    def test_stream_roundtrips_sublists(self):
        store = CompressedLevelStore()
        items = [_sl([0], [1, 2]), _sl([1], [2, 3, 4]), _sl([2], [5, 9])]
        for sl in items:
            store.append(sl)
        streamed = [sl for chunk in store.stream() for sl in chunk]
        assert len(streamed) == len(items)
        for got, want in zip(streamed, items):
            assert got.prefix == want.prefix
            assert np.array_equal(got.tails, want.tails)
            assert np.array_equal(got.cn_words, want.cn_words)

    def test_stream_chunks_bound_decompression(self):
        store = CompressedLevelStore(chunk_size=2)
        for i in range(5):
            store.append(_sl([i], [i + 1, i + 2]))
        chunks = [len(c) for c in store.stream()]
        assert chunks == [2, 2, 1]

    def test_empty_store_streams_nothing(self):
        assert list(CompressedLevelStore().stream()) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ParameterError):
            CompressedLevelStore(chunk_size=0)

    def test_entries_are_compressed_sublists(self):
        store = CompressedLevelStore()
        store.append(_sl([0], [1, 2]))
        (entry,) = store.entries()
        assert isinstance(entry, CompressedSubList)
        assert len(entry) == 2
        # compressed-domain ops work without any decompression
        assert entry.cn.count() == 2
        assert list(entry.tails.iter_indices()) == [1, 2]
        assert entry.tails.intersect_any(entry.cn)


class TestLevelStorePolicy:
    def test_constant_lists_stores(self):
        assert LEVEL_STORES == ("memory", "disk", "wah")

    def test_invalid_level_store_rejected_at_config(self):
        with pytest.raises(ParameterError, match="level_store"):
            EnumerationConfig(level_store="zip")

    def test_level_store_part_of_identity(self):
        a = EnumerationConfig(level_store="wah")
        b = EnumerationConfig()
        c = EnumerationConfig(level_store="wah")
        assert a != b
        assert a == c and hash(a) == hash(c)
        assert len({a, b, c}) == 2

    def test_registry_advertises_supported_stores(self):
        for backend in STORE_BACKENDS:
            assert get_backend(backend).level_stores == LEVEL_STORES
        assert get_backend("multiprocess").level_stores == ("memory",)

    def test_multiprocess_rejects_nondefault_store(self, triangle):
        with pytest.raises(ParameterError, match="does not support"):
            run_enumeration(
                triangle,
                EnumerationConfig(
                    backend="multiprocess", level_store="wah"
                ),
            )

    def test_multiprocess_accepts_memory_store(self, triangle):
        res = run_enumeration(
            triangle,
            EnumerationConfig(
                backend="multiprocess", level_store="memory", jobs=1
            ),
        )
        assert res.cliques == [(0, 1, 2)]

    def test_facade_rejects_store_on_storeless_backend(self, triangle):
        from repro.engine import register_backend, unregister_backend

        @register_backend("test-storeless")
        def run_storeless(g, config, on_clique=None):
            """Backend registered without level-store support."""
            raise AssertionError("must be rejected before dispatch")

        try:
            with pytest.raises(ParameterError, match="backend-managed"):
                run_enumeration(
                    triangle,
                    EnumerationConfig(
                        backend="test-storeless", level_store="memory"
                    ),
                )
        finally:
            unregister_backend("test-storeless")

    def test_spill_directory_rejected_off_disk_substrate(self, triangle):
        """A spill directory on the in-memory substrate fails before
        work, like every other inapplicable option."""
        for store in (None, "wah"):
            with pytest.raises(ParameterError, match="directory"):
                run_enumeration(
                    triangle,
                    EnumerationConfig(
                        backend="incore",
                        level_store=store,
                        options={"directory": "/tmp/x"},
                    ),
                )

    def test_incore_on_disk_substrate_accepts_spill_options(
        self, tmp_path
    ):
        g = erdos_renyi(30, 0.3, seed=6)
        res = run_enumeration(
            g,
            EnumerationConfig(
                backend="incore",
                k_min=2,
                level_store="disk",
                options={"directory": tmp_path, "chunk_size": 4},
            ),
        )
        ref = run_enumeration(g, EnumerationConfig(k_min=2))
        assert sorted(res.cliques) == sorted(ref.cliques)
        assert res.io is not None and res.io.bytes_written > 0
        assert list(tmp_path.glob("*.spill")) == []

    def test_ooc_on_wah_substrate_reports_no_io(self):
        g = erdos_renyi(25, 0.3, seed=7)
        res = run_enumeration(
            g,
            EnumerationConfig(backend="ooc", k_min=2, level_store="wah"),
        )
        assert res.io is None


class TestWahRuns:
    @pytest.fixture(scope="class")
    def sparse(self):
        g, _ = overlapping_cliques(
            400, [9, 8, 8, 7], 3, p=0.01, seed=13
        )
        return g

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_wah_matches_memory_cliques(self, backend, sparse):
        ref = ENGINE.run(sparse, EnumerationConfig(k_min=3))
        res = ENGINE.run(
            sparse,
            EnumerationConfig(
                backend=backend, k_min=3, level_store="wah"
            ),
        )
        assert sorted(res.cliques) == sorted(ref.cliques)

    def test_wah_shrinks_the_figure9_peak(self, sparse):
        mem = ENGINE.run(
            sparse, EnumerationConfig(k_min=3, level_store="memory")
        )
        wah = ENGINE.run(
            sparse, EnumerationConfig(k_min=3, level_store="wah")
        )
        # N[k]/M[k] are substrate-independent; bytes are what shrink
        assert [
            (s.k, s.n_sublists, s.n_candidates) for s in mem.level_stats
        ] == [
            (s.k, s.n_sublists, s.n_candidates) for s in wah.level_stats
        ]
        assert 0 < wah.peak_candidate_bytes() < mem.peak_candidate_bytes()

    def test_wah_honours_byte_budget_on_compressed_footprint(self, sparse):
        from repro.errors import BudgetExceeded

        mem_peak = ENGINE.run(
            sparse, EnumerationConfig(k_min=3)
        ).peak_candidate_bytes()
        wah_peak = ENGINE.run(
            sparse, EnumerationConfig(k_min=3, level_store="wah")
        ).peak_candidate_bytes()
        # a budget between the two peaks kills the memory run but the
        # compressed run fits — the paper's whole point
        budget = (wah_peak + mem_peak) // 2
        with pytest.raises(BudgetExceeded):
            ENGINE.run(
                sparse,
                EnumerationConfig(k_min=3, max_candidate_bytes=budget),
            )
        res = ENGINE.run(
            sparse,
            EnumerationConfig(
                k_min=3, level_store="wah", max_candidate_bytes=budget
            ),
        )
        assert res.completed


class TestCacheKeyedByStore:
    def test_cache_distinguishes_level_store(self, triangle):
        cache = ResultCache()
        mem_cfg = EnumerationConfig(k_min=2)
        wah_cfg = EnumerationConfig(k_min=2, level_store="wah")
        first, hit1 = cache.run(ENGINE, triangle, mem_cfg)
        again, hit2 = cache.run(ENGINE, triangle, mem_cfg)
        other, hit3 = cache.run(ENGINE, triangle, wah_cfg)
        assert (hit1, hit2, hit3) == (False, True, False)
        assert again is first
        assert other is not first
        assert sorted(other.cliques) == sorted(first.cliques)
