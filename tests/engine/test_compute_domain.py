"""The compute-domain axis: ``bitset`` vs ``wah`` generation.

The contract the tentpole must keep forever: for every backend that
advertises the ``wah`` compute domain (``incore``/``bitscan``/
``threads``) on every level store it supports, the compressed-domain
generation step produces the byte-identical clique *sequence*, the
byte-identical per-level :class:`~repro.core.clique_enumerator.
LevelStats`, and the byte-identical merged
:class:`~repro.core.counters.OpCounters` as the raw-word path — the
representation changes, the algorithm (and its paper-faithful operation
model) does not.  What may differ is only the telemetry in
``result.domain_stats``, which this suite also pins: the
``wah``+``wah`` pairing streams levels compressed end to end (zero
decompressed bytes), while the at-rest path reports the codec traffic
it pays.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ParameterError
from repro.core.compressed_domain import CompressedExpander
from repro.core.generators import (
    erdos_renyi,
    overlapping_cliques,
    planted_clique,
)
from repro.core.graph import Graph
from repro.core.sublist import CliqueSubList, CompressedSubList
from repro.engine import (
    COMPUTE_DOMAINS,
    EnumerationConfig,
    EnumerationEngine,
    get_backend,
    resolve_compute_domain,
    resolve_for_backend,
)
from repro.engine.level_store import CompressedLevelStore

ENGINE = EnumerationEngine()

#: the backends the tentpole wired the compressed domain into.
WAH_BACKENDS = ("incore", "bitscan", "threads")


def _graph():
    g, _ = overlapping_cliques(
        120, [9, 8, 7, 6], 3, p=0.03, seed=11
    )
    return g


class TestConfigValidation:
    def test_domains_tuple(self):
        assert COMPUTE_DOMAINS == ("auto", "bitset", "wah")

    def test_default_is_auto(self):
        assert EnumerationConfig().compute_domain == "auto"

    def test_unknown_domain_rejected(self):
        with pytest.raises(ParameterError, match="compute_domain"):
            EnumerationConfig(compute_domain="simd")

    def test_hash_and_eq_distinguish_domains(self):
        """The service result cache may never conflate the domains."""
        a = EnumerationConfig(level_store="wah", compute_domain="bitset")
        b = EnumerationConfig(level_store="wah", compute_domain="wah")
        assert a != b
        assert hash(a) != hash(b)

    @pytest.mark.parametrize("backend", ["ooc", "multiprocess"])
    def test_explicit_wah_rejected_where_unsupported(self, backend):
        config = EnumerationConfig(
            backend=backend,
            compute_domain="wah",
            jobs=2 if backend == "multiprocess" else None,
        )
        with pytest.raises(ConfigError, match="compute domain"):
            resolve_for_backend(config, get_backend(backend))
        with pytest.raises(ConfigError, match="compute domain"):
            ENGINE.run(Graph(4), config)

    def test_submit_path_raises_identical_error(self):
        """`repro submit` refuses at submission with the engine's exact
        ConfigError — the shared resolution point."""
        from repro.service.jobs import JobSpec

        config = EnumerationConfig(
            backend="multiprocess", compute_domain="wah", jobs=2
        )
        with pytest.raises(ConfigError) as engine_exc:
            resolve_for_backend(config, get_backend("multiprocess"))
        with pytest.raises(ConfigError) as submit_exc:
            JobSpec(graph=Graph(3), config=config)
        assert str(submit_exc.value) == str(engine_exc.value)

    def test_advertised_via_backend_info(self):
        for name in WAH_BACKENDS:
            assert get_backend(name).compute_domains == ("bitset", "wah")
        assert get_backend("ooc").compute_domains == ("bitset",)
        assert get_backend("multiprocess").compute_domains == ("bitset",)

    def test_auto_resolution(self):
        incore = get_backend("incore")
        assert resolve_compute_domain(
            EnumerationConfig(), "memory", incore
        ) == "bitset"
        assert resolve_compute_domain(
            EnumerationConfig(), "wah", incore
        ) == "wah"
        assert resolve_compute_domain(
            EnumerationConfig(), "wah", get_backend("ooc")
        ) == "bitset"
        assert resolve_compute_domain(
            EnumerationConfig(compute_domain="wah"), "memory", incore
        ) == "wah"


class TestDomainEquivalence:
    """wah vs bitset: byte-identical everything but the telemetry."""

    @pytest.fixture(scope="class")
    def graph(self):
        return _graph()

    @pytest.mark.parametrize("backend", WAH_BACKENDS)
    @pytest.mark.parametrize("store", ["memory", "disk", "wah"])
    def test_byte_identical_across_matrix(self, graph, backend, store):
        jobs = 2 if get_backend(backend).parallel else None
        base = ENGINE.run(graph, EnumerationConfig(
            backend=backend, level_store=store,
            compute_domain="bitset", jobs=jobs,
        ))
        wah = ENGINE.run(graph, EnumerationConfig(
            backend=backend, level_store=store,
            compute_domain="wah", jobs=jobs,
        ))
        assert wah.cliques == base.cliques
        assert wah.level_stats == base.level_stats
        assert wah.counters.snapshot() == base.counters.snapshot()
        assert wah.completed == base.completed
        assert base.compute_domain == "bitset"
        assert wah.compute_domain == "wah"

    def test_size_window_and_budget_parity(self, graph):
        """Init_K seeding, k_max cuts, and streamed sinks behave the
        same in both domains."""
        collected: list = []
        base = ENGINE.run(graph, EnumerationConfig(
            backend="incore", level_store="wah", k_min=3, k_max=6,
            compute_domain="bitset",
        ))
        wah = ENGINE.run(
            graph,
            EnumerationConfig(
                backend="incore", level_store="wah", k_min=3, k_max=6,
                compute_domain="wah",
            ),
            on_clique=collected.append,
        )
        assert collected == base.cliques
        assert wah.completed == base.completed

    def test_resolved_domain_reported_for_auto(self, graph):
        res = ENGINE.run(graph, EnumerationConfig(
            backend="incore", level_store="wah"
        ))
        assert res.compute_domain == "wah"
        res = ENGINE.run(graph, EnumerationConfig(backend="incore"))
        assert res.compute_domain == "bitset"
        # ooc never runs the wah domain, even under an "auto" config
        res = ENGINE.run(graph, EnumerationConfig(
            backend="ooc", level_store="wah"
        ))
        assert res.compute_domain == "bitset"


class TestDomainTelemetry:
    @pytest.fixture(scope="class")
    def graph(self):
        return _graph()

    def test_wah_domain_on_wah_store_never_decompresses(self, graph):
        res = ENGINE.run(graph, EnumerationConfig(
            backend="incore", level_store="wah", compute_domain="wah"
        ))
        stats = res.domain_stats
        assert stats.get("decompressed_bytes", 0) == 0
        assert stats["decompressed_bytes_avoided"] > 0
        assert stats["kernel_word_ops"] > 0
        assert stats["kernel_ands"] > 0
        assert stats["adj_rows_compressed"] > 0

    def test_at_rest_path_reports_codec_traffic(self, graph):
        res = ENGINE.run(graph, EnumerationConfig(
            backend="incore", level_store="wah", compute_domain="bitset"
        ))
        assert res.domain_stats["decompressed_bytes"] > 0
        assert res.domain_stats.get("decompressed_bytes_avoided", 0) == 0

    def test_bitset_on_raw_stores_reports_nothing(self, graph):
        res = ENGINE.run(graph, EnumerationConfig(backend="incore"))
        assert res.domain_stats == {}

    def test_level_seconds_recorded_by_the_loop(self, graph):
        res = ENGINE.run(graph, EnumerationConfig(backend="incore"))
        assert len(res.level_seconds) == len(res.level_stats)
        assert all(s >= 0 for s in res.level_seconds)


class TestCompressedStream:
    """The zero-round-trip store surface the wah domain rides on."""

    def _store_with(self, g, k=3):
        store = CompressedLevelStore(chunk_size=2)
        from repro.core.counters import OpCounters
        from repro.engine.level_loop import seed_level

        _, seed = seed_level(g, 2, OpCounters(), lambda c: None)
        for sl in seed:
            store.append(sl)
        return store

    def test_stream_entries_yields_compressed(self):
        g, _ = planted_clique(40, 6, 0.1, seed=3)
        store = self._store_with(g)
        chunks = list(store.stream_entries())
        assert chunks
        assert all(
            isinstance(e, CompressedSubList)
            for chunk in chunks
            for e in chunk
        )
        assert store.bypassed_bytes > 0
        assert store.decompressed_bytes == 0

    def test_stream_entries_shares_single_pass_contract(self):
        from repro.errors import LevelStoreError

        g, _ = planted_clique(40, 6, 0.1, seed=3)
        store = self._store_with(g)
        list(store.stream_entries())
        with pytest.raises(LevelStoreError, match="single-pass"):
            store.stream()
        store2 = self._store_with(g)
        list(store2.stream())
        with pytest.raises(LevelStoreError, match="single-pass"):
            store2.stream_entries()

    def test_native_compressed_append_identical_accounting(self):
        """Appending a CompressedSubList directly (the wah-domain path)
        charges the same bytes as compressing the equivalent raw
        sub-list (the bitset path) — so per-level stats stay
        byte-identical across domains."""
        g, _ = planted_clique(40, 6, 0.1, seed=3)
        raw_store = self._store_with(g)
        native_store = CompressedLevelStore(chunk_size=2)
        from repro.core.counters import OpCounters
        from repro.engine.level_loop import seed_level

        _, seed = seed_level(g, 2, OpCounters(), lambda c: None)
        for sl in seed:
            native_store.append(CompressedSubList.from_sublist(sl))
        assert native_store.candidate_bytes == raw_store.candidate_bytes
        assert native_store.n_candidates == raw_store.n_candidates
        assert (
            native_store.uncompressed_bytes == raw_store.uncompressed_bytes
        )


class TestCompressedExpander:
    def test_model_validated(self):
        with pytest.raises(ParameterError, match="step model"):
            CompressedExpander(Graph(4), model="vectorised")

    def test_work_estimate_parity(self):
        """LPT partitioning sees identical weights in both forms."""
        g = erdos_renyi(80, 0.2, seed=2)
        from repro.core.counters import OpCounters
        from repro.engine.level_loop import seed_level

        _, seed = seed_level(g, 2, OpCounters(), lambda c: None)
        assert seed
        for sl in seed:
            assert (
                CompressedSubList.from_sublist(sl).work_estimate()
                == sl.work_estimate()
            )

    def test_step_signature_matches_generation_step(self):
        """The expander is a drop-in GenerationStep: same call shape,
        same children as the reference on raw sub-lists."""
        from repro.core.clique_enumerator import generate_next_level
        from repro.core.counters import OpCounters
        from repro.engine.level_loop import seed_level

        g, _ = planted_clique(50, 7, 0.12, seed=5)
        _, seed = seed_level(g, 2, OpCounters(), lambda c: None)
        ref_counters, wah_counters = OpCounters(), OpCounters()
        ref_cliques: list = []
        wah_cliques: list = []
        ref_children = generate_next_level(
            seed, g, ref_counters, ref_cliques.append
        )
        expander = CompressedExpander(g, model="pairs")
        wah_children = expander.step(
            seed, g, wah_counters, wah_cliques.append
        )
        assert wah_cliques == ref_cliques
        assert wah_counters.snapshot() == ref_counters.snapshot()
        assert len(wah_children) == len(ref_children)
        for ours, theirs in zip(wah_children, ref_children):
            assert isinstance(ours, CliqueSubList)
            assert ours.prefix == theirs.prefix
            assert ours.tails.tolist() == theirs.tails.tolist()
            assert (ours.cn_words == theirs.cn_words).all()


class TestWireProtocol:
    def test_payload_roundtrip(self):
        from repro.service.protocol import (
            config_from_payload,
            config_to_payload,
        )

        config = EnumerationConfig(
            backend="incore", level_store="wah", compute_domain="wah"
        )
        payload = config_to_payload(config)
        assert payload["compute_domain"] == "wah"
        assert config_from_payload(payload) == config
        # the default never travels
        assert "compute_domain" not in config_to_payload(
            EnumerationConfig()
        )

    def test_job_to_dict_carries_domain(self):
        from repro.service.jobs import Job, JobSpec

        job = Job("j1", JobSpec(
            graph=Graph(3),
            config=EnumerationConfig(
                backend="incore", level_store="wah", compute_domain="wah"
            ),
        ))
        assert job.to_dict()["compute_domain"] == "wah"
