"""Unit tests for the engine layer: config, registry, stores, facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bitset as bs
from repro.core.generators import complete_graph, erdos_renyi
from repro.core.sublist import CliqueSubList
from repro.engine import (
    DiskLevelStore,
    EnumerationConfig,
    EnumerationEngine,
    LevelStore,
    MemoryLevelStore,
    available_backends,
    backend_table,
    get_backend,
    register_backend,
    run_enumeration,
    unregister_backend,
)
from repro.errors import BudgetExceeded, ParameterError


def _sl(prefix, tails, n=32):
    return CliqueSubList(
        prefix=tuple(prefix),
        tails=np.asarray(tails, dtype=np.int64),
        cn_words=bs.indices_to_words(tails, n),
    )


class TestConfig:
    def test_defaults(self):
        cfg = EnumerationConfig()
        assert cfg.backend == "incore"
        assert cfg.k_min == 1
        assert cfg.k_max is None

    def test_invalid_k_min(self):
        with pytest.raises(ParameterError):
            EnumerationConfig(k_min=0)

    def test_invalid_range(self):
        with pytest.raises(ParameterError):
            EnumerationConfig(k_min=5, k_max=4)

    def test_invalid_jobs(self):
        with pytest.raises(ParameterError):
            EnumerationConfig(jobs=0)

    def test_invalid_backend_name(self):
        with pytest.raises(ParameterError):
            EnumerationConfig(backend="")

    def test_with_backend(self):
        cfg = EnumerationConfig(k_min=3).with_backend("ooc")
        assert cfg.backend == "ooc"
        assert cfg.k_min == 3

    @pytest.mark.parametrize("bad", [0, -1, "4", 2.5, True])
    def test_invalid_steal_granularity(self, bad):
        with pytest.raises(ParameterError, match="steal_granularity"):
            EnumerationConfig(
                backend="threads", options={"steal_granularity": bad}
            )

    def test_steal_granularity_part_of_identity(self):
        a = EnumerationConfig(
            backend="threads", options={"steal_granularity": 2}
        )
        b = EnumerationConfig(
            backend="threads", options={"steal_granularity": 8}
        )
        c = EnumerationConfig(
            backend="threads", options={"steal_granularity": 2}
        )
        assert a != b
        assert a == c and hash(a) == hash(c)

    def test_options_are_copied(self):
        opts = {"chunk_size": 8}
        cfg = EnumerationConfig(backend="ooc", options=opts)
        opts["chunk_size"] = 99
        assert cfg.option("chunk_size") == 8

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EnumerationConfig().k_min = 2

    def test_hashable(self):
        a = EnumerationConfig(backend="ooc", options={"chunk_size": 8})
        b = EnumerationConfig(backend="ooc", options={"chunk_size": 8})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_hashable_with_unhashable_option_values(self):
        """Regression: a list-valued option (e.g. spill dirs) used to
        raise TypeError from __hash__."""
        a = EnumerationConfig(
            backend="ooc", options={"dirs": ["/tmp/a", "/tmp/b"]}
        )
        b = EnumerationConfig(
            backend="ooc", options={"dirs": ["/tmp/a", "/tmp/b"]}
        )
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        c = EnumerationConfig(backend="ooc", options={"dirs": ["/tmp/c"]})
        assert a != c

    def test_hashable_with_mixed_type_option_keys(self):
        """Regression: mixed-type keys broke sorted() inside __hash__."""
        a = EnumerationConfig(options={1: "x", "z": 2})
        b = EnumerationConfig(options={"z": 2, 1: "x"})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_hash_fallback_still_usable_as_dict_key(self):
        cfg = EnumerationConfig(options={"dirs": ["/tmp/a"]})
        table = {cfg: "cached"}
        same = EnumerationConfig(options={"dirs": ["/tmp/a"]})
        assert table[same] == "cached"

    def test_hash_eq_contract_with_nested_dict_insertion_order(self):
        """Regression: equal configs whose unhashable option values are
        dicts built in different insertion orders must hash equal."""
        a = EnumerationConfig(options={"m": {"a": 1, "b": 2}, "l": [0]})
        b = EnumerationConfig(options={"m": {"b": 2, "a": 1}, "l": [0]})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_hash_eq_contract_with_numeric_type_mix(self):
        """[1] == [1.0] implies the configs are equal; their hashes
        must agree (hash(1) == hash(1.0) carries through)."""
        a = EnumerationConfig(options={"x": [1]})
        b = EnumerationConfig(options={"x": [1.0]})
        assert a == b
        assert hash(a) == hash(b)

    def test_hash_eq_contract_across_hashability_lines(self):
        """frozenset({1}) == {1}: equal configs must hash equal even
        when one option value is hashable and the other is not."""
        a = EnumerationConfig(options={"x": frozenset({1})})
        b = EnumerationConfig(options={"x": {1}})
        assert a == b
        assert hash(a) == hash(b)
        assert {a: "cached"}[b] == "cached"

    def test_jobs_rejected_by_sequential_backends(self, triangle):
        for backend in ("incore", "bitscan", "ooc"):
            with pytest.raises(ParameterError, match="sequential"):
                run_enumeration(
                    triangle,
                    EnumerationConfig(backend=backend, jobs=2),
                )


class TestResolveForBackend:
    def test_unsupported_store_raises_config_error(self):
        from repro.errors import ConfigError
        from repro.engine import resolve_for_backend

        with pytest.raises(ConfigError, match="does not support"):
            resolve_for_backend(
                EnumerationConfig(
                    backend="multiprocess", level_store="wah", jobs=2
                ),
                get_backend("multiprocess"),
            )

    def test_supported_store_passes_through(self):
        from repro.engine import resolve_for_backend

        cfg = EnumerationConfig(backend="incore", level_store="wah")
        assert resolve_for_backend(cfg, get_backend("incore")) is cfg

    def test_k_min_floor_promoted(self):
        from repro.engine import resolve_for_backend

        @register_backend("test-resolve-floor", min_k_min=4)
        def run_floor(g, config, on_clique=None):
            """Never dispatched in this test."""

        try:
            out = resolve_for_backend(
                EnumerationConfig(backend="test-resolve-floor", k_min=2),
                get_backend("test-resolve-floor"),
            )
        finally:
            unregister_backend("test-resolve-floor")
        assert out.k_min == 4

    def test_direct_multiprocess_runner_raises_same_error(self, triangle):
        """Bypassing the facade cannot dodge (or reword) the check."""
        from repro.errors import ConfigError
        from repro.engine.backends import run_multiprocess

        with pytest.raises(ConfigError) as direct:
            run_multiprocess(
                triangle,
                EnumerationConfig(
                    backend="multiprocess", level_store="disk", jobs=2
                ),
            )
        with pytest.raises(ConfigError) as facade:
            run_enumeration(
                triangle,
                EnumerationConfig(
                    backend="multiprocess", level_store="disk", jobs=2
                ),
            )
        assert str(direct.value) == str(facade.value)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"incore", "bitscan", "ooc", "multiprocess"} <= set(
            available_backends()
        )

    def test_unknown_backend(self):
        with pytest.raises(ParameterError, match="unknown backend"):
            get_backend("does-not-exist")

    def test_unknown_backend_via_run(self, triangle):
        with pytest.raises(ParameterError, match="available"):
            run_enumeration(
                triangle, EnumerationConfig(backend="does-not-exist")
            )

    def test_register_and_unregister(self, triangle):
        @register_backend("test-null", description="no-op test backend")
        def run_null(g, config, on_clique=None):
            """No-op backend for registry tests."""
            from repro.core.clique_enumerator import EnumerationResult

            return EnumerationResult(backend="test-null")

        try:
            assert "test-null" in available_backends()
            res = run_enumeration(
                triangle, EnumerationConfig(backend="test-null")
            )
            assert res.backend == "test-null"
        finally:
            unregister_backend("test-null")
        assert "test-null" not in available_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_backend("incore", lambda g, c, s: None)

    def test_min_k_min_promoted_by_engine(self, triangle):
        seen: list[int] = []

        @register_backend("test-floor", min_k_min=3)
        def run_floor(g, config, on_clique=None):
            """Records the k_min it was dispatched with."""
            from repro.core.clique_enumerator import EnumerationResult

            seen.append(config.k_min)
            return EnumerationResult(backend="test-floor")

        try:
            run_enumeration(
                triangle, EnumerationConfig(backend="test-floor", k_min=1)
            )
        finally:
            unregister_backend("test-floor")
        assert seen == [3]

    def test_backend_table_entries(self):
        table = backend_table()
        names = [info.name for info in table]
        assert names == sorted(names)
        ooc = next(info for info in table if info.name == "ooc")
        assert ooc.storage == "disk"
        mp = next(info for info in table if info.name == "multiprocess")
        assert mp.parallel

    def test_unknown_option_rejected(self, triangle):
        with pytest.raises(ParameterError, match="option"):
            run_enumeration(
                triangle,
                EnumerationConfig(
                    backend="incore", options={"bogus": 1}
                ),
            )


class TestLevelStores:
    def test_memory_store_accounting(self):
        store = MemoryLevelStore()
        store.append(_sl([0], [1, 2]))
        store.append(_sl([1], [2, 3, 4]))
        assert len(store) == 2
        assert store.n_sublists == 2
        assert store.n_candidates == 5
        assert store.candidate_bytes > 0

    def test_memory_store_single_chunk(self):
        store = MemoryLevelStore()
        items = [_sl([0], [1, 2]), _sl([1], [2, 3])]
        for sl in items:
            store.append(sl)
        chunks = list(store.stream())
        assert len(chunks) == 1
        assert chunks[0] == items

    def test_empty_memory_store_streams_nothing(self):
        assert list(MemoryLevelStore().stream()) == []

    def test_disk_store_is_level_store(self, tmp_path):
        assert issubclass(DiskLevelStore, LevelStore)
        with DiskLevelStore(tmp_path) as store:
            assert isinstance(store, LevelStore)

    def test_disk_store_accounting_matches_memory(self, tmp_path):
        mem, disk = MemoryLevelStore(), DiskLevelStore(tmp_path)
        for sl in (_sl([0], [1, 2]), _sl([1], [2, 3, 4])):
            mem.append(sl)
            disk.append(sl)
        assert disk.n_sublists == mem.n_sublists
        assert disk.n_candidates == mem.n_candidates
        assert disk.candidate_bytes == mem.candidate_bytes
        disk.close()


class TestFacade:
    def test_default_config(self, triangle):
        res = EnumerationEngine().run(triangle)
        assert res.cliques == [(0, 1, 2)]
        assert res.backend == "incore"

    def test_engine_level_default_config(self, triangle):
        engine = EnumerationEngine(EnumerationConfig(backend="bitscan"))
        assert engine.run(triangle).backend == "bitscan"

    def test_per_call_config_overrides(self, triangle):
        engine = EnumerationEngine(EnumerationConfig(backend="bitscan"))
        res = engine.run(triangle, EnumerationConfig(backend="incore"))
        assert res.backend == "incore"

    def test_backends_listing(self):
        assert EnumerationEngine.backends() == available_backends()

    def test_wall_seconds_measured(self):
        res = run_enumeration(erdos_renyi(20, 0.3, seed=1))
        assert res.wall_seconds > 0

    def test_max_cliques_budget_across_backends(self):
        g = erdos_renyi(30, 0.5, seed=1)
        for backend in ("incore", "bitscan", "ooc"):
            with pytest.raises(BudgetExceeded):
                run_enumeration(
                    g,
                    EnumerationConfig(
                        backend=backend, k_min=2, max_cliques=3
                    ),
                )

    def test_memory_budget_on_disk_backend(self):
        g = complete_graph(10)
        with pytest.raises(BudgetExceeded):
            run_enumeration(
                g,
                EnumerationConfig(
                    backend="ooc", k_min=2, max_candidate_bytes=10
                ),
            )

    def test_ooc_reports_io(self):
        g = erdos_renyi(25, 0.35, seed=2)
        res = run_enumeration(g, EnumerationConfig(backend="ooc"))
        assert res.io is not None
        assert res.io.bytes_written > 0
        assert res.io.bytes_read > 0

    def test_ooc_shared_directory_across_levels(self, tmp_path):
        """Consecutive levels spill into one directory without the next
        level's writer truncating the file the current level streams."""
        g = erdos_renyi(120, 0.25, seed=9)
        cfg = EnumerationConfig(
            backend="ooc",
            k_min=2,
            options={"directory": tmp_path, "chunk_size": 4},
        )
        res = run_enumeration(g, cfg)
        ref = run_enumeration(g, EnumerationConfig(k_min=2))
        assert sorted(res.cliques) == sorted(ref.cliques)
        assert list(tmp_path.glob("*.spill")) == []

    def test_level_stats_match_across_store_backends(self):
        g = erdos_renyi(25, 0.35, seed=3)
        incore = run_enumeration(
            g, EnumerationConfig(backend="incore", k_min=2)
        )
        ooc = run_enumeration(g, EnumerationConfig(backend="ooc", k_min=2))
        assert incore.level_stats == ooc.level_stats

    def test_multiprocess_jobs_respected(self):
        g = erdos_renyi(25, 0.35, seed=4)
        res = run_enumeration(
            g, EnumerationConfig(backend="multiprocess", jobs=2)
        )
        assert res.n_workers == 2

    def test_multiprocess_counters_are_canonical(self):
        """Worker op counts fold into the canonical fields, so the
        counters stay comparable with the sequential substrates."""
        g = erdos_renyi(25, 0.35, seed=5)
        mp = run_enumeration(
            g, EnumerationConfig(backend="multiprocess", k_min=2, jobs=2)
        )
        seq = run_enumeration(g, EnumerationConfig(k_min=2))
        assert mp.counters.pair_checks == seq.counters.pair_checks
        assert mp.counters.maximal_emitted == seq.counters.maximal_emitted
        assert mp.counters.total_work() == seq.counters.total_work()
