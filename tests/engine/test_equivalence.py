"""Cross-backend equivalence: the registry-wide output invariant.

Every backend docstring promises output identical to the sequential
in-core driver; this suite is the single place that invariant is
enforced across *all* registered backends at once — identical maximal
clique sets and identical per-size counts on a spread of random
``generators`` graphs and size windows.
"""

from __future__ import annotations

import pytest

from repro.core.generators import (
    barbell_graph,
    erdos_renyi,
    overlapping_cliques,
    planted_clique,
    planted_partition,
)
from repro.core.graph import Graph
from repro.engine import (
    EnumerationConfig,
    EnumerationEngine,
    available_backends,
)

ENGINE = EnumerationEngine()

#: every graph here is enumerated on every backend.
GRAPHS = {
    "er_sparse": lambda: erdos_renyi(40, 0.12, seed=7),
    "er_dense": lambda: erdos_renyi(24, 0.45, seed=3),
    "planted": lambda: planted_clique(45, 8, 0.12, seed=5)[0],
    "overlap": lambda: overlapping_cliques(40, [7, 7, 6], 3, seed=2)[0],
    "partition": lambda: planted_partition(
        60, [9, 8, 7], p_in=0.9, p_out=0.03, seed=4
    )[0],
    "barbell": lambda: barbell_graph(5),
}


def _by_size_counts(cliques):
    counts: dict[int, int] = {}
    for c in cliques:
        counts[len(c)] = counts.get(len(c), 0) + 1
    return counts


def _config(backend, **kw):
    """Per-backend config: jobs only where the backend is parallel."""
    jobs = 2 if backend == "multiprocess" else None
    return EnumerationConfig(backend=backend, jobs=jobs, **kw)


#: the (graph, k_min, k_max) windows the tests below actually consume.
REFERENCE_KEYS = [(g, 2, None) for g in GRAPHS] + [
    ("planted", 3, None),
    ("er_dense", 2, 4),
]


@pytest.fixture(scope="module")
def reference():
    """Incore results for every consumed graph/window, computed once."""
    out = {}
    for gname, k_min, k_max in REFERENCE_KEYS:
        res = ENGINE.run(
            GRAPHS[gname](),
            EnumerationConfig(backend="incore", k_min=k_min, k_max=k_max),
        )
        out[(gname, k_min, k_max)] = sorted(res.cliques)
    return out


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("gname", sorted(GRAPHS))
def test_identical_clique_sets(backend, gname, reference):
    """Same maximal cliques and per-size counts as the incore reference."""
    g = GRAPHS[gname]()
    config = _config(backend, k_min=2)
    got = sorted(ENGINE.run(g, config).cliques)
    want = reference[(gname, 2, None)]
    assert got == want
    assert _by_size_counts(got) == _by_size_counts(want)


@pytest.mark.parametrize("backend", available_backends())
def test_identical_at_k_min_1_with_isolated_vertices(backend):
    """k_min=1 emits isolated vertices on *every* backend."""
    base = barbell_graph(4)
    g = Graph(base.n + 3)  # three isolated vertices appended
    for u in range(base.n):
        for v in base.neighbors(u).tolist():
            if u < v:
                g.add_edge(u, int(v))
    config = _config(backend, k_min=1)
    got = sorted(ENGINE.run(g, config).cliques)
    want = sorted(
        ENGINE.run(g, EnumerationConfig(backend="incore", k_min=1)).cliques
    )
    assert got == want
    assert {(base.n,), (base.n + 1,), (base.n + 2,)} <= set(got)


@pytest.mark.parametrize("backend", available_backends())
def test_identical_with_init_k_seeding(backend, reference):
    """Init_K = 3 seeding agrees across the whole registry."""
    g = GRAPHS["planted"]()
    config = _config(backend, k_min=3)
    got = sorted(ENGINE.run(g, config).cliques)
    assert got == reference[("planted", 3, None)]


@pytest.mark.parametrize("backend", available_backends())
def test_identical_with_k_max(backend, reference):
    """An upper size bound cuts every backend at the same place, and
    every backend reports the same (incomplete) completed flag."""
    g = GRAPHS["er_dense"]()
    config = _config(backend, k_min=2, k_max=4)
    res = ENGINE.run(g, config)
    assert sorted(res.cliques) == reference[("er_dense", 2, 4)]
    incore = ENGINE.run(
        g, EnumerationConfig(backend="incore", k_min=2, k_max=4)
    )
    assert res.completed == incore.completed


@pytest.mark.parametrize("backend", available_backends())
def test_identical_at_degenerate_k_max_1(backend):
    """k_max=1 yields exactly the isolated vertices on every backend."""
    g = Graph.from_edges(5, [(0, 1), (1, 2)])  # vertices 3, 4 isolated
    config = _config(backend, k_min=1, k_max=1)
    res = ENGINE.run(g, config)
    assert sorted(res.cliques) == [(3,), (4,)]


@pytest.mark.parametrize("backend", available_backends())
def test_streaming_sink_matches_collection(backend):
    """on_clique streams the same cliques the result would collect."""
    g = GRAPHS["overlap"]()
    config = _config(backend, k_min=2)
    seen: list[tuple[int, ...]] = []
    res = ENGINE.run(g, config, on_clique=seen.append)
    assert res.cliques == []
    assert sorted(seen) == sorted(ENGINE.run(g, config).cliques)


@pytest.mark.parametrize("backend", available_backends())
def test_result_carries_backend_name(backend):
    g = barbell_graph(4)
    res = ENGINE.run(g, _config(backend))
    assert res.backend == backend
    assert res.wall_seconds > 0


@pytest.mark.parametrize("store", ["memory", "disk", "wah"])
@pytest.mark.parametrize("backend", ["incore", "bitscan", "ooc"])
@pytest.mark.parametrize("gname", sorted(GRAPHS))
def test_identical_on_every_level_store(backend, store, gname, reference):
    """The level-store policy never changes the emitted clique set:
    every store-based backend on every substrate (including the WAH
    compressed store) matches the incore reference."""
    g = GRAPHS[gname]()
    config = EnumerationConfig(backend=backend, k_min=2, level_store=store)
    got = sorted(ENGINE.run(g, config).cliques)
    assert got == reference[(gname, 2, None)]
