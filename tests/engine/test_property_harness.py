"""Randomized cross-backend property harness: the registry-wide oracle.

``tests/engine/test_equivalence.py`` pins a handful of fixed graphs;
this harness generalises it into a *property*: for any seeded graph
from a family spanning the regimes the paper cares about (sparse
background, dense blocks, bipartite-ish triangle-free, hub-and-spoke,
planted modules), **every registered backend on every level store and
every compute domain it advertises** must emit the byte-identical
maximal clique sequence, the identical per-size counts, and — for
every backend running the paper's generation step — the byte-identical
merged operation counters.  Backends with their own documented counter
model (``bitscan``) are exempt from equality *with incore*, but their
compute domains must still agree with each other, counter for counter.

The matrix is read from the live registry
(:func:`repro.engine.backend_table`) at each call, so a backend
registered tomorrow is covered by tonight's test run without a single
new test being written — ``test_harness_flags_a_defective_backend``
proves that property by registering a deliberately wrong backend and
watching the harness catch it.

The randomized entry point runs under Hypothesis with
``derandomize=True`` (deterministic in CI); a failure shrinks to the
smallest failing ``(family, seed, n)`` and prints the generator seed in
the falsifying example, so one copy-paste reproduces it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, note, settings
from hypothesis import strategies as st

from repro.core.generators import (
    erdos_renyi,
    overlapping_cliques,
    planted_clique,
    planted_partition,
    star_graph,
)
from repro.core.graph import Graph
from repro.core.memory_model import predict_profile, seed_sublist_count
from repro.engine import (
    LEVEL_STORES,
    EnumerationConfig,
    EnumerationEngine,
    backend_table,
    register_backend,
    unregister_backend,
)

ENGINE = EnumerationEngine()

#: backends whose documented operation model differs from the paper's
#: tail-list step — exempt from exact counter equality (their *output*
#: equality is still enforced).  A future backend with its own op model
#: adds itself here, consciously.
COUNTER_MODEL_EXEMPT = frozenset({"bitscan"})

#: seeded graph families spanning the regimes the backends must agree
#: on: sparse background, dense, triangle-free bipartite, hub-and-spoke
#: with noise, and the paper's planted-module shape.
FAMILIES = {
    "sparse": lambda seed, n: erdos_renyi(n, 0.10, seed=seed),
    "dense": lambda seed, n: erdos_renyi(n, 0.45, seed=seed),
    "bipartite": lambda seed, n: planted_partition(
        n, [n // 2, n - n // 2], p_in=0.0, p_out=0.25, seed=seed
    )[0],
    "star": lambda seed, n: _noisy_star(seed, n),
    "clique_planted": lambda seed, n: planted_clique(
        n, max(3, min(n, 3 + seed % 6)), 0.10, seed=seed
    )[0],
}


def _noisy_star(seed: int, n: int) -> Graph:
    """A hub-and-spoke graph plus sparse background noise."""
    g = star_graph(max(2, n))
    noise = erdos_renyi(g.n, 0.05, seed=seed)
    for u, v in noise.edges():
        if u != v:
            g.add_edge(u, v)
    return g


def make_family_graph(family: str, seed: int, n: int) -> Graph:
    """One deterministic graph of a named family (the harness input)."""
    return FAMILIES[family](seed, n)


def _by_size(cliques) -> dict[int, int]:
    counts: dict[int, int] = {}
    for c in cliques:
        counts[len(c)] = counts.get(len(c), 0) + 1
    return counts


def assert_cross_backend_equivalence(
    g: Graph, case: str = "", k_min: int = 1, k_max: int | None = None
) -> None:
    """The harness core: the registry × level-store × domain matrix.

    Asserts, against the ``incore`` reference on the same window:

    * identical maximal clique *sequence* (set and emission order);
    * identical per-size counts;
    * identical ``completed`` flag;
    * ``maximal_emitted`` equals the emitted clique count (every
      backend's own accounting is self-consistent);
    * identical merged counter snapshots for every backend outside
      :data:`COUNTER_MODEL_EXEMPT` — the merge invariant that makes
      per-worker :class:`~repro.core.counters.OpCounters` trustworthy;
    * for exempt backends, identical counter snapshots *across their
      own compute domains* — the representation may change the word
      arithmetic, never the documented operation model.

    The compute domains are read from ``BackendInfo.compute_domains``
    just as the stores are read from ``level_stores``, so a backend
    that advertises a new domain tomorrow is swept tonight.
    """
    ref = ENGINE.run(
        g, EnumerationConfig(backend="incore", k_min=k_min, k_max=k_max)
    )
    ref_sizes = _by_size(ref.cliques)
    ref_snapshot = ref.counters.snapshot()
    for info in backend_table():
        stores = info.level_stores or (None,)
        for store in stores:
            domain_snapshots: dict[str, dict] = {}
            for domain in info.compute_domains or ("bitset",):
                # the kernel only participates when WAH words exist —
                # as the store codec or as the generation domain; the
                # sweep covers every kernel the backend advertises
                kernels = (
                    info.kernels
                    if (store == "wah" or domain == "wah")
                    else ("python",)
                )
                kernel_snapshots: dict[str, dict] = {}
                for kernel in kernels:
                    label = (
                        f"[{case}] backend={info.name} store={store} "
                        f"domain={domain} kernel={kernel} "
                        f"k_min={k_min} k_max={k_max}"
                    )
                    config = EnumerationConfig(
                        backend=info.name,
                        k_min=k_min,
                        k_max=k_max,
                        level_store=store,
                        compute_domain=domain,
                        kernel=kernel,
                        jobs=2 if info.parallel else None,
                    )
                    res = ENGINE.run(g, config)
                    assert res.cliques == ref.cliques, (
                        f"clique sequence diverged from incore: {label}"
                    )
                    assert _by_size(res.cliques) == ref_sizes, (
                        f"per-size counts diverged: {label}"
                    )
                    assert res.completed == ref.completed, (
                        f"completed flag diverged: {label}"
                    )
                    assert res.counters.maximal_emitted == len(
                        res.cliques
                    ), f"emission accounting inconsistent: {label}"
                    kernel_snapshots[kernel] = res.counters.snapshot()
                    if info.name not in COUNTER_MODEL_EXEMPT:
                        assert res.counters.snapshot() == ref_snapshot, (
                            f"merged counters diverged from incore: "
                            f"{label}"
                        )
                first_kernel, first_ksnap = next(
                    iter(kernel_snapshots.items())
                )
                for kernel, snapshot in kernel_snapshots.items():
                    assert snapshot == first_ksnap, (
                        f"[{case}] backend={info.name} store={store} "
                        f"domain={domain}: counters diverged between "
                        f"kernels {first_kernel!r} and {kernel!r}"
                    )
                domain_snapshots[domain] = first_ksnap
            first_domain, first_snapshot = next(
                iter(domain_snapshots.items())
            )
            for domain, snapshot in domain_snapshots.items():
                assert snapshot == first_snapshot, (
                    f"[{case}] backend={info.name} store={store}: "
                    f"counters diverged between compute domains "
                    f"{first_domain!r} and {domain!r}"
                )


# -- randomized entry point (shrinks, prints the generator seed) ----------


@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    family=st.sampled_from(sorted(FAMILIES)),
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=4, max_value=36),
)
def test_randomized_equivalence_across_registry(family, seed, n):
    """Any seeded family graph → full matrix agreement (shrinkable)."""
    note(
        "reproduce with: assert_cross_backend_equivalence("
        f"make_family_graph({family!r}, seed={seed}, n={n}))"
    )
    g = make_family_graph(family, seed, n)
    assert_cross_backend_equivalence(
        g, case=f"family={family} seed={seed} n={n}"
    )


# -- deterministic sweeps (always-on, independent of hypothesis profile) --


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_family_sweep_full_matrix(family, seed):
    g = make_family_graph(family, seed, 30)
    assert_cross_backend_equivalence(
        g, case=f"family={family} seed={seed} n=30"
    )


def assert_prediction_bounds_measured(
    g: Graph, case: str = "", k_min: int = 1, k_max: int | None = None
) -> None:
    """Admission control's contract: the memory model's *raw* forward
    prediction bounds the measured candidate-storage peak of every
    level-store substrate.  (The wah store measures its compressed
    footprint and the disk store only a resident window, so the raw
    bound holds for them a fortiori — asserting it against all three
    keeps the matrix honest if a store's accounting ever changes.)"""
    seeds = seed_sublist_count(g) if k_min <= 2 else None
    predicted = predict_profile(g.n, g.m, k_min, seeds, k_max=k_max)
    bound = predicted.peak_bytes("memory")
    for store in LEVEL_STORES:
        res = ENGINE.run(
            g,
            EnumerationConfig(
                backend="incore",
                k_min=k_min,
                k_max=k_max,
                level_store=store,
            ),
        )
        measured = max(
            (ls.candidate_bytes for ls in res.level_stats), default=0
        )
        assert measured <= bound, (
            f"[{case}] store={store} k_min={k_min} k_max={k_max}: "
            f"measured peak {measured} exceeds the admission "
            f"prediction {bound}"
        )


@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    family=st.sampled_from(sorted(FAMILIES)),
    seed=st.integers(min_value=0, max_value=2**16),
    n=st.integers(min_value=4, max_value=36),
    k_min=st.integers(min_value=1, max_value=3),
)
def test_randomized_prediction_bounds_measured(family, seed, n, k_min):
    """Any seeded family graph: prediction >= measurement (shrinkable)."""
    note(
        "reproduce with: assert_prediction_bounds_measured("
        f"make_family_graph({family!r}, seed={seed}, n={n}), "
        f"k_min={k_min})"
    )
    g = make_family_graph(family, seed, n)
    assert_prediction_bounds_measured(
        g, case=f"family={family} seed={seed} n={n}", k_min=k_min
    )


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_prediction_bound_sweep_store_matrix(family, seed):
    g = make_family_graph(family, seed, 24)
    assert_prediction_bounds_measured(
        g, case=f"family={family} seed={seed} n=24"
    )


def test_window_bounds_agree_across_matrix():
    """Init_K seeding and a k_max cut hit every backend identically."""
    g, _ = overlapping_cliques(40, [7, 7, 6], 3, p=0.02, seed=9)
    assert_cross_backend_equivalence(g, case="window", k_min=3, k_max=5)


def test_empty_and_degenerate_graphs_across_matrix():
    for n, case in ((0, "empty"), (1, "singleton"), (5, "no-edges")):
        assert_cross_backend_equivalence(Graph(n), case=case)


# -- the harness guards the future, not just the present ------------------


def test_harness_flags_a_defective_backend():
    """A backend registered tomorrow is covered tonight.

    Register a deliberately defective backend (drops its last clique)
    and assert the harness rejects it by name — the property that makes
    a fifth, sixth, or tenth registry entry safe without new tests.
    """
    from repro.engine.backends import run_incore

    @register_backend(
        "test-defective",
        description="drops one clique (harness canary)",
        level_stores=("memory",),
    )
    def run_defective(g, config, on_clique=None):
        res = run_incore(g, replace(config, backend="incore"), on_clique)
        if res.cliques:
            res.cliques.pop()
        res.backend = "test-defective"
        return res

    try:
        with pytest.raises(AssertionError, match="test-defective"):
            assert_cross_backend_equivalence(
                make_family_graph("clique_planted", seed=3, n=24),
                case="defective-canary",
            )
    finally:
        unregister_backend("test-defective")


def test_harness_sweeps_the_compute_domain_axis():
    """A backend advertising a compute domain is tested *on* it.

    Register a backend whose ``"wah"`` domain drops a clique while its
    ``"bitset"`` domain is correct: only a harness that actually runs
    the advertised domains can tell them apart — and the failure names
    the domain.
    """
    from repro.engine.backends import run_incore

    @register_backend(
        "test-wahless",
        description="correct bitset, defective wah (harness canary)",
        level_stores=("memory",),
        compute_domains=("bitset", "wah"),
    )
    def run_wahless(g, config, on_clique=None):
        res = run_incore(
            g,
            replace(config, backend="incore", compute_domain="bitset"),
            on_clique,
        )
        if config.compute_domain == "wah" and res.cliques:
            res.cliques.pop()
        res.backend = "test-wahless"
        return res

    try:
        with pytest.raises(AssertionError, match="domain=wah"):
            assert_cross_backend_equivalence(
                make_family_graph("clique_planted", seed=3, n=24),
                case="domain-canary",
            )
    finally:
        unregister_backend("test-wahless")


def test_harness_sweeps_the_kernel_axis():
    """A backend advertising a kernel is tested *on* it.

    Register a backend whose ``"numpy"`` kernel drops a clique while
    its ``"python"`` kernel is correct; the harness must run both on
    the WAH combinations and name the kernel in the failure.
    """
    from repro.engine.backends import run_incore

    @register_backend(
        "test-kernelless",
        description="correct python, defective numpy (harness canary)",
        level_stores=("wah",),
        compute_domains=("bitset", "wah"),
        kernels=("python", "numpy"),
    )
    def run_kernelless(g, config, on_clique=None):
        res = run_incore(
            g,
            replace(config, backend="incore", kernel="python"),
            on_clique,
        )
        if config.kernel == "numpy" and res.cliques:
            res.cliques.pop()
        res.backend = "test-kernelless"
        return res

    try:
        with pytest.raises(AssertionError, match="kernel=numpy"):
            assert_cross_backend_equivalence(
                make_family_graph("clique_planted", seed=3, n=24),
                case="kernel-canary",
            )
    finally:
        unregister_backend("test-kernelless")


def test_harness_counter_check_catches_a_lying_merge():
    """A parallel backend whose counter merge drops work is caught."""
    from repro.engine.backends import run_incore

    @register_backend(
        "test-undercount",
        description="forgets half its pair checks (harness canary)",
        level_stores=("memory",),
    )
    def run_undercount(g, config, on_clique=None):
        res = run_incore(g, replace(config, backend="incore"), on_clique)
        res.counters.pair_checks //= 2
        res.backend = "test-undercount"
        return res

    try:
        with pytest.raises(AssertionError, match="test-undercount"):
            assert_cross_backend_equivalence(
                make_family_graph("dense", seed=1, n=20),
                case="undercount-canary",
            )
    finally:
        unregister_backend("test-undercount")
