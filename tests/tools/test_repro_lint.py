"""repro-lint: rule canaries, suppressions, CLI output, live tree.

Each rule gets a *good* fixture tree (no findings) and a *bad* one
proving the rule actually fires — without the canaries, a refactor
that silently broke a rule's AST pattern would make the linter pass
vacuously forever.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import all_rules, lint_project  # noqa: E402
from tools.repro_lint.cli import main  # noqa: E402


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def dedent_tree(files: dict[str, str]) -> dict[str, str]:
    """Dedent fixture sources up front so tests can splice plain text."""
    return {rel: textwrap.dedent(text) for rel, text in files.items()}


def codes(violations) -> set[str]:
    return {v.rule for v in violations}


# -- RL001: config-threading completeness ------------------------------------

GOOD_RL001 = dedent_tree({
    "src/repro/engine/config.py": """\
        LEVEL_STORES = ("memory", "disk")

        class EnumerationConfig:
            def __post_init__(self):
                if self.level_store not in LEVEL_STORES:
                    raise ValueError("bad level_store")

            def __hash__(self):
                return hash((self.backend, self.level_store))

        def resolve_for_backend(config, info):
            if config.level_store not in info.level_stores:
                raise ValueError("unsupported")
            return {}
        """,
    "src/repro/cli.py": """\
        def build_parser(parser):
            parser.add_argument("--level-store", default="memory")
        """,
    "src/repro/service/protocol.py": """\
        _CONFIG_FIELDS = ("backend", "level_store")
        """,
    "src/repro/service/jobs.py": """\
        class Job:
            def to_dict(self):
                return {"id": self.id, "level_store": self.level_store}
        """,
    "src/repro/engine/registry.py": """\
        class BackendInfo:
            name: str = ""
            level_stores: tuple = ()
        """,
    "src/repro/service/cache.py": """\
        class ResultCache:
            @staticmethod
            def key(graph, config):
                return ("fingerprint", config)
        """,
})


class TestRL001:
    def test_complete_threading_is_clean(self, tmp_path):
        write_tree(tmp_path, GOOD_RL001)
        assert lint_project(tmp_path, select=["RL001"]) == []

    @pytest.mark.parametrize(
        "relpath, old, new, fragment",
        [
            (
                "src/repro/engine/config.py",
                "self.backend, self.level_store",
                "self.backend,",
                "__hash__",
            ),
            (
                "src/repro/engine/config.py",
                "if config.level_store not in info.level_stores:\n"
                "        raise ValueError(\"unsupported\")\n    ",
                "",
                "resolve_for_backend",
            ),
            (
                "src/repro/cli.py",
                '"--level-store"',
                '"--verbose"',
                "--level-store",
            ),
            (
                "src/repro/service/protocol.py",
                '"level_store"',
                '"options"',
                "_CONFIG_FIELDS",
            ),
            (
                "src/repro/service/jobs.py",
                '"level_store": self.level_store',
                '"backend": self.backend',
                "to_dict",
            ),
            (
                "src/repro/engine/registry.py",
                "level_stores: tuple = ()",
                "kernels: tuple = ()",
                "level_stores",
            ),
        ],
    )
    def test_each_missing_layer_fires(
        self, tmp_path, relpath, old, new, fragment
    ):
        files = dict(GOOD_RL001)
        assert old in textwrap.dedent(files[relpath])
        files[relpath] = textwrap.dedent(files[relpath]).replace(
            old, new
        )
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL001"])
        assert codes(violations) == {"RL001"}
        assert any(fragment in v.message for v in violations)

    def test_cache_projection_fires(self, tmp_path):
        files = dict(GOOD_RL001)
        files["src/repro/service/cache.py"] = """\
            class ResultCache:
                @staticmethod
                def key(graph, config):
                    return ("fingerprint", config.backend)
            """
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL001"])
        assert any(
            v.path == "src/repro/service/cache.py" for v in violations
        )

    def test_whole_config_through_hash_is_clean(self, tmp_path):
        # hash(config) passes the whole object (its __hash__ carries
        # every policy field), unlike the config.backend projection
        files = dict(GOOD_RL001)
        files["src/repro/service/cache.py"] = """\
            class ResultCache:
                @staticmethod
                def key(graph, config):
                    return (id(graph), hash(config))
            """
        write_tree(tmp_path, files)
        assert lint_project(tmp_path, select=["RL001"]) == []


# -- RL002: metric-name authority ---------------------------------------------

GOOD_RL002 = dedent_tree({
    "src/repro/obs/bridge.py": """\
        METRIC_NAMES = ("repro_good_total", "repro_depth")

        def fold(registry):
            registry.counter("repro_good_total", "Good things.").inc()
            registry.gauge("repro_depth", "Depth.").set(1)
        """,
    "docs/ARCHITECTURE.md": """\
        # Architecture

        | metric | type | meaning |
        |--------|------|---------|
        | `repro_good_total` | counter | good things |
        | `repro_depth{k}` | gauge | depth, labelled |
        """,
})


class TestRL002:
    def test_manifest_docs_and_calls_agree(self, tmp_path):
        write_tree(tmp_path, GOOD_RL002)
        assert lint_project(tmp_path, select=["RL002"]) == []

    def test_rogue_metric_literal_fires(self, tmp_path):
        files = dict(GOOD_RL002)
        files["src/app.py"] = """\
            def fold(registry):
                registry.counter("repro_rogue_total", "Rogue.").inc()
            """
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL002"])
        assert [v.path for v in violations] == ["src/app.py"]
        assert "repro_rogue_total" in violations[0].message

    def test_undocumented_manifest_name_fires(self, tmp_path):
        files = dict(GOOD_RL002)
        files["docs/ARCHITECTURE.md"] = """\
            | metric | type | meaning |
            |--------|------|---------|
            | `repro_good_total` | counter | good things |
            """
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL002"])
        assert any("repro_depth" in v.message for v in violations)

    def test_stale_docs_row_fires(self, tmp_path):
        files = dict(GOOD_RL002)
        files["docs/ARCHITECTURE.md"] += (
            "| `repro_removed_total` | counter | gone |\n"
        )
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL002"])
        assert any(
            "repro_removed_total" in v.message
            and v.path == "docs/ARCHITECTURE.md"
            and v.line > 0
            for v in violations
        )

    def test_missing_manifest_fires(self, tmp_path):
        files = dict(GOOD_RL002)
        files["src/repro/obs/bridge.py"] = """\
            def fold(registry):
                registry.counter("repro_good_total", "Good.").inc()
            """
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL002"])
        assert any("METRIC_NAMES" in v.message for v in violations)

    def test_prose_mentions_in_later_cells_ignored(self, tmp_path):
        files = dict(GOOD_RL002)
        files["docs/ARCHITECTURE.md"] += (
            "| `repro_depth` | gauge | compare `repro_other_series` |\n"
        )
        write_tree(tmp_path, files)
        assert lint_project(tmp_path, select=["RL002"]) == []

    def test_live_bridge_fstring_names_stay_in_manifest(self):
        # the fold loops render names dynamically; RL002 cannot see
        # them statically, so pin the rendered set to the manifest here
        from repro.obs import bridge

        rendered = {
            f"repro_{name}_total"
            for name in bridge._COUNTER_FIELDS
            if name != "maximal_emitted"
        } | set(bridge._DOMAIN_FIELDS.values())
        assert rendered <= set(bridge.METRIC_NAMES)


# -- RL003: obs disabled-path purity ------------------------------------------


class TestRL003:
    def test_ambient_access_inside_function_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/app.py": """\
                from repro.obs.runtime import get_observability

                def run():
                    obs = get_observability()
                    with obs.tracer.span("job"):
                        pass
                """
            },
        )
        assert lint_project(tmp_path, select=["RL003"]) == []

    def test_direct_registry_construction_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/app.py": """\
                from repro.obs.metrics import MetricsRegistry

                def run():
                    reg = MetricsRegistry()
                    return reg
                """
            },
        )
        violations = lint_project(tmp_path, select=["RL003"])
        assert codes(violations) == {"RL003"}
        assert "MetricsRegistry" in violations[0].message

    def test_module_level_span_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/app.py": """\
                from repro.obs.runtime import get_observability

                OBS = get_observability()
                """
            },
        )
        violations = lint_project(tmp_path, select=["RL003"])
        assert codes(violations) == {"RL003"}
        assert "module-level" in violations[0].message

    def test_obs_package_itself_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/obs/runtime.py": """\
                from repro.obs.metrics import MetricsRegistry

                def configure():
                    return MetricsRegistry()
                """
            },
        )
        assert lint_project(tmp_path, select=["RL003"]) == []


# -- RL004: lock discipline ---------------------------------------------------

GOOD_RL004 = dedent_tree({
    "src/box.py": """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []
                self._closed = False

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def close(self):
                with self._lock:
                    self._closed = True
                    self._items = []
        """
})


class TestRL004:
    def test_all_mutations_locked_is_clean(self, tmp_path):
        write_tree(tmp_path, GOOD_RL004)
        assert lint_project(tmp_path, select=["RL004"]) == []

    def test_bare_mutation_of_protected_attr_fires(self, tmp_path):
        files = dict(GOOD_RL004)
        # move the _items reset outside the lock; add() still mutates
        # _items under it, so the bare write is the race RL004 pins
        files["src/box.py"] = files["src/box.py"].replace(
            "def close(self):\n"
            "        with self._lock:\n"
            "            self._closed = True\n"
            "            self._items = []",
            "def close(self):\n"
            "        with self._lock:\n"
            "            self._closed = True\n"
            "        self._items = []",
        )
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL004"])
        assert codes(violations) == {"RL004"}
        assert "'_items'" in violations[0].message
        assert "self._lock" in violations[0].message

    def test_init_and_locked_helpers_exempt(self, tmp_path):
        # __init__ already assigns _items bare; a *_locked helper (the
        # caller-holds-the-lock convention) may too — both sanctioned
        text = GOOD_RL004["src/box.py"].replace(
            "def close",
            "def _prune_locked(self):\n"
            "        self._items = []\n\n"
            "    def close",
        )
        write_tree(tmp_path, {"src/box.py": text})
        assert lint_project(tmp_path, select=["RL004"]) == []

    def test_container_mutator_outside_lock_fires(self, tmp_path):
        files = dict(GOOD_RL004)
        files["src/box.py"] += (
            "\n    def drain(self):\n"
            "        self._items.clear()\n"
        )
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL004"])
        assert any("'_items'" in v.message for v in violations)

    def test_queue_put_not_a_mutation(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/sched.py": """\
                import threading

                class Sched:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._queue = __import__("queue").Queue()

                    def submit(self, job):
                        with self._lock:
                            self._queue.put(job)

                    def shutdown(self):
                        self._queue.put(None)
                """
            },
        )
        assert lint_project(tmp_path, select=["RL004"]) == []


STRICT_RL004 = dedent_tree({
    # the strict-read module set names this exact path: reads of
    # protected attrs must hold the lock here, not just mutations
    "src/repro/service/cache.py": """\
        import threading

        class ResultCache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}
                self.hits = 0

            def get(self, key):
                with self._lock:
                    self.hits += 1
                    return self._entries.get(key)

            def put(self, key, value):
                with self._lock:
                    self._entries[key] = value

            def __len__(self):
                with self._lock:
                    return len(self._entries)

            def fold_into(self, out):
                with self._lock:
                    out["cache_hits"] = self.hits
        """
})


class TestRL004StrictReads:
    def test_all_reads_locked_is_clean(self, tmp_path):
        write_tree(tmp_path, STRICT_RL004)
        assert lint_project(tmp_path, select=["RL004"]) == []

    def test_unlocked_read_in_strict_module_fires(self, tmp_path):
        # the pre-fix ResultCache bug shape: fold_into snapshots a
        # lock-guarded tally without the lock (torn read)
        files = dict(STRICT_RL004)
        files["src/repro/service/cache.py"] = files[
            "src/repro/service/cache.py"
        ].replace(
            "def fold_into(self, out):\n"
            "        with self._lock:\n"
            "            out[\"cache_hits\"] = self.hits",
            "def fold_into(self, out):\n"
            "        out[\"cache_hits\"] = self.hits",
        )
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL004"])
        assert codes(violations) == {"RL004"}
        assert any(
            "reads" in v.message and "'hits'" in v.message
            for v in violations
        )

    def test_unlocked_dunder_read_in_strict_module_fires(self, tmp_path):
        files = dict(STRICT_RL004)
        files["src/repro/service/cache.py"] = files[
            "src/repro/service/cache.py"
        ].replace(
            "def __len__(self):\n"
            "        with self._lock:\n"
            "            return len(self._entries)",
            "def __len__(self):\n"
            "        return len(self._entries)",
        )
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL004"])
        assert any(
            "reads" in v.message and "'_entries'" in v.message
            for v in violations
        )

    def test_reads_unenforced_outside_strict_modules(self, tmp_path):
        # identical class in a non-strict module: unlocked reads stay
        # legal there (mutation discipline still applies)
        text = STRICT_RL004["src/repro/service/cache.py"].replace(
            "def fold_into(self, out):\n"
            "        with self._lock:\n"
            "            out[\"cache_hits\"] = self.hits",
            "def fold_into(self, out):\n"
            "        out[\"cache_hits\"] = self.hits",
        )
        write_tree(tmp_path, {"src/other.py": text})
        assert lint_project(tmp_path, select=["RL004"]) == []


# -- RL005: single-pass store contract ----------------------------------------

GOOD_RL005 = dedent_tree({
    "src/stores.py": """\
        class LevelStoreError(RuntimeError):
            pass

        class LevelStore:
            pass

        class MemoryStore(LevelStore):
            def append(self, entry):
                if self._streamed:
                    raise LevelStoreError("append after stream")
                self._entries.append(entry)

            def stream(self):
                if self._streamed:
                    raise LevelStoreError("double stream")
                self._streamed = True
                return iter(self._entries)

            def _stream_raw(self):
                return iter(self._entries)
        """
})


class TestRL005:
    def test_guarded_store_is_clean(self, tmp_path):
        write_tree(tmp_path, GOOD_RL005)
        assert lint_project(tmp_path, select=["RL005"]) == []

    def test_unguarded_stream_fires(self, tmp_path):
        files = dict(GOOD_RL005)
        files["src/stores.py"] += (
            "\nclass BadStore(LevelStore):\n"
            "    def stream(self):\n"
            "        return iter(())\n"
        )
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL005"])
        assert codes(violations) == {"RL005"}
        assert "BadStore.stream" in violations[0].message

    def test_virtual_registration_resolved(self, tmp_path):
        files = dict(GOOD_RL005)
        files["src/disk.py"] = """\
            from src.stores import LevelStore

            class DiskStore:
                def append(self, entry):
                    return None

            LevelStore.register(DiskStore)
            """
        write_tree(tmp_path, files)
        violations = lint_project(tmp_path, select=["RL005"])
        assert any("DiskStore.append" in v.message for v in violations)

    def test_non_store_classes_ignored(self, tmp_path):
        files = dict(GOOD_RL005)
        files["src/other.py"] = """\
            class Appender:
                def append(self, x):
                    return x

                def stream(self):
                    return iter(())
            """
        write_tree(tmp_path, files)
        assert lint_project(tmp_path, select=["RL005"]) == []


# -- suppressions -------------------------------------------------------------


class TestSuppressions:
    BAD = """\
        from repro.obs.metrics import MetricsRegistry

        def run():
            reg = MetricsRegistry(){suffix}
            return reg
        """

    def test_trailing_disable_suppresses(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/app.py": self.BAD.format(
                    suffix="  # repro-lint: disable=RL003"
                )
            },
        )
        assert lint_project(tmp_path, select=["RL003"]) == []

    def test_line_above_disable_suppresses(self, tmp_path):
        text = textwrap.dedent(self.BAD.format(suffix="")).replace(
            "    reg = MetricsRegistry()",
            "    # repro-lint: disable=RL003\n"
            "    reg = MetricsRegistry()",
        )
        write_tree(tmp_path, {"src/app.py": text})
        assert lint_project(tmp_path, select=["RL003"]) == []

    def test_disable_all_suppresses(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/app.py": self.BAD.format(
                    suffix="  # repro-lint: disable=all"
                )
            },
        )
        assert lint_project(tmp_path, select=["RL003"]) == []

    def test_other_code_does_not_suppress(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/app.py": self.BAD.format(
                    suffix="  # repro-lint: disable=RL004"
                )
            },
        )
        violations = lint_project(tmp_path, select=["RL003"])
        assert codes(violations) == {"RL003"}

    def test_code_on_line_above_does_not_leak_down(self, tmp_path):
        # a *trailing* comment on the previous line must not suppress
        # the next line — only bare comment lines apply downward
        text = textwrap.dedent(self.BAD.format(suffix="")).replace(
            "    reg = MetricsRegistry()",
            "    x = 1  # repro-lint: disable=RL003\n"
            "    reg = MetricsRegistry()",
        )
        write_tree(tmp_path, {"src/app.py": text})
        violations = lint_project(tmp_path, select=["RL003"])
        assert codes(violations) == {"RL003"}


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_clean_tree_exit_zero(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD_RL004)
        assert main([str(tmp_path)]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out

    def test_violations_exit_one_human_format(self, tmp_path, capsys):
        files = dict(GOOD_RL004)
        files["src/box.py"] += (
            "\n    def drain(self):\n"
            "        self._items.clear()\n"
        )
        write_tree(tmp_path, files)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "src/box.py:" in out
        assert "[RL004]" in out
        assert "self._items.clear()" in out  # quoted source line
        assert "1 violation" in out

    def test_json_format(self, tmp_path, capsys):
        files = dict(GOOD_RL004)
        files["src/box.py"] += (
            "\n    def drain(self):\n"
            "        self._items.clear()\n"
        )
        write_tree(tmp_path, files)
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["rules"] == [r.code for r in all_rules()]
        (violation,) = payload["violations"]
        assert violation["rule"] == "RL004"
        assert violation["path"] == "src/box.py"
        assert violation["line"] > 0

    def test_select_filters_rules(self, tmp_path, capsys):
        files = dict(GOOD_RL004)
        files["src/box.py"] += (
            "\n    def drain(self):\n"
            "        self._items.clear()\n"
        )
        write_tree(tmp_path, files)
        assert main(["--select", "rl003", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_unknown_rule_usage_error(self, tmp_path):
        write_tree(tmp_path, GOOD_RL004)
        with pytest.raises(SystemExit) as exc:
            main(["--select", "RL999", str(tmp_path)])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert code in out


# -- the live tree ------------------------------------------------------------


class TestLiveTree:
    def test_rule_catalogue_is_complete(self):
        assert [r.code for r in all_rules()] == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
        ]

    def test_repo_is_clean(self):
        violations = lint_project(REPO_ROOT)
        assert violations == [], "\n".join(
            f"{v.path}:{v.line} [{v.rule}] {v.message}"
            for v in violations
        )
