"""Fixtures for the observability-plane tests."""

from __future__ import annotations

import pytest

from repro.obs import Observability, set_observability


@pytest.fixture
def plane():
    """An enabled plane installed as ambient, restored on teardown."""
    obs = Observability(metrics=True, trace=True, ring_size=256)
    previous = set_observability(obs)
    yield obs
    set_observability(previous)
    obs.close()
