"""MetricsRegistry: family semantics and the text exposition format."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import CONTENT_TYPE, MetricsRegistry


class TestCounter:
    def test_inc_and_get(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "Things.")
        c.inc()
        c.inc(4)
        assert c.get() == 5

    def test_labelled_samples_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_jobs_total", "Jobs.", ("status",))
        c.inc(status="done")
        c.inc(2, status="failed")
        assert c.get(status="done") == 1
        assert c.get(status="failed") == 2
        assert c.get(status="cancelled") == 0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "Things.")
        with pytest.raises(ParameterError):
            c.inc(-1)

    def test_wrong_label_set_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_jobs_total", "Jobs.", ("status",))
        with pytest.raises(ParameterError):
            c.inc()  # missing the label
        with pytest.raises(ParameterError):
            c.inc(status="done", extra="x")

    def test_set_to_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_cache_hits_total", "Hits.")
        c.set_to(3)
        c.set_to(3)  # no-op forward move is fine
        c.set_to(7)
        assert c.get() == 7
        with pytest.raises(ParameterError):
            c.set_to(6)


class TestGauge:
    def test_set_inc_and_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_queue_depth", "Depth.")
        g.set(5)
        g.inc(-2)
        assert g.get() == 3
        g.set_max(10)
        g.set_max(4)  # below the high-water mark: ignored
        assert g.get() == 10


class TestHistogram:
    def test_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_seconds", "Seconds.", buckets=(0.1, 1.0, 10.0)
        )
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.render()
        assert 'repro_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_seconds_bucket{le="1"} 3' in text
        assert 'repro_seconds_bucket{le="10"} 4' in text
        assert 'repro_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_seconds_sum 56.05" in text
        assert "repro_seconds_count 5" in text

    def test_empty_bucket_list_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError):
            reg.histogram("repro_seconds", "Seconds.", buckets=())


class TestRegistry:
    def test_register_or_return_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "X.", ("k",))
        b = reg.counter("repro_x_total", "X again.", ("k",))
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.")
        with pytest.raises(ParameterError):
            reg.gauge("repro_x_total", "X.")

    def test_label_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.", ("k",))
        with pytest.raises(ParameterError):
            reg.counter("repro_x_total", "X.", ("j",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError):
            reg.counter("repro-bad-name", "Bad.")
        with pytest.raises(ParameterError):
            reg.counter("repro_ok_total", "Bad label.", ("0bad",))

    def test_render_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "Jobs.", ("status",)).inc(
            status="done"
        )
        reg.gauge("repro_depth", "Depth.").set(2.5)
        text = reg.render()
        assert "# HELP repro_jobs_total Jobs." in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{status="done"} 1' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2.5" in text
        assert text.endswith("\n")
        assert "version=0.0.4" in CONTENT_TYPE

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.", ("label",)).inc(
            label='a"b\\c\nd'
        )
        text = reg.render()
        assert r'label="a\"b\\c\nd"' in text

    def test_integral_floats_render_without_point(self):
        reg = MetricsRegistry()
        reg.gauge("repro_depth", "Depth.").set(3.0)
        assert "repro_depth 3\n" in reg.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_snapshot_only_touched_families(self):
        reg = MetricsRegistry()
        reg.counter("repro_untouched_total", "Never incremented.")
        touched = reg.counter("repro_touched_total", "Incremented.")
        assert reg.snapshot() == {}
        touched.inc(3)
        assert reg.snapshot() == {"repro_touched_total": {(): 3}}

    def test_concurrent_increments_are_lossless(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "X.")

        def spin():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get() == 8000
