"""The disabled-observability fast path: no spans, untouched registry.

This is the contract that lets the instrumentation live inside the
enumeration hot loop: with the ambient plane disabled (the default),
no :class:`~repro.obs.trace.Span` object is ever constructed and no
metric family is ever touched — ``check_speed_baseline.py`` depends on
it.  Span construction is patched to raise, so any disabled-path
allocation fails the run loudly rather than showing up as a timing
regression.
"""

from __future__ import annotations

import pytest

from repro.core.generators import planted_clique
from repro.core.graph import Graph
from repro.engine.api import run_enumeration
from repro.engine.config import EnumerationConfig
from repro.obs import Observability, set_observability
from repro.obs.trace import Span
from repro.service.jobs import JobSpec
from repro.service.scheduler import JobScheduler


@pytest.fixture
def disabled_plane():
    """A fresh disabled ambient plane, with Span construction booby-trapped.

    The trap patches ``__init__`` rather than ``__new__``: once
    ``__new__`` has ever been overridden on a class, CPython's
    ``object.__new__`` rejects excess constructor arguments even after
    the override is deleted, which would break every later real
    ``Span(...)`` in the test session.  ``__init__`` is an ordinary
    class-dict function and restores cleanly.
    """

    def _no_spans(self, *args, **kwargs):
        raise AssertionError(
            "Span allocated while observability is disabled"
        )

    original_init = Span.__init__
    Span.__init__ = _no_spans  # type: ignore[method-assign]
    obs = Observability()
    previous = set_observability(obs)
    try:
        yield obs
    finally:
        set_observability(previous)
        Span.__init__ = original_init  # type: ignore[method-assign]


@pytest.fixture
def graph() -> Graph:
    return planted_clique(30, 6, p=0.25, seed=11)[0]


class TestEngineFastPath:
    @pytest.mark.parametrize(
        "config",
        [
            EnumerationConfig(k_min=3),
            EnumerationConfig(
                k_min=3, compute_domain="wah", kernel="numpy",
                level_store="wah",
            ),
            EnumerationConfig(k_min=3, backend="threads", jobs=2),
        ],
        ids=["incore", "wah-numpy", "threads"],
    )
    def test_run_allocates_no_spans_touches_no_metrics(
        self, disabled_plane, graph, config
    ):
        result = run_enumeration(graph, config)
        assert result.counters.maximal_emitted > 0
        assert disabled_plane.registry.snapshot() == {}
        assert disabled_plane.tracer.records() == []


class TestSchedulerFastPath:
    def test_job_dispatch_allocates_no_spans(self, disabled_plane, graph):
        with JobScheduler(workers=2) as sched:
            job = sched.submit(JobSpec(graph=graph, sink="count"))
            job.wait(timeout=30)
            assert job.status.value == "done"
        assert disabled_plane.registry.snapshot() == {}
