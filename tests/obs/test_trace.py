"""Tracer: span records, nesting, the ring bound, and the JSONL file."""

from __future__ import annotations

import json
import threading

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    REQUIRED_KEYS,
    Tracer,
)


class TestSpans:
    def test_span_record_schema(self):
        tracer = Tracer()
        with tracer.span("level", k=3) as span:
            span.set(emitted=7)
        (rec,) = tracer.records()
        for key in REQUIRED_KEYS:
            assert key in rec
        assert rec["kind"] == "span"
        assert rec["name"] == "level"
        assert rec["dur_s"] >= 0
        assert rec["fields"] == {"k": 3, "emitted": 7}

    def test_nesting_depth_is_thread_local(self):
        tracer = Tracer()
        with tracer.span("job"):
            with tracer.span("level"):
                tracer.event("steal")
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["job"]["depth"] == 0
        assert by_name["level"]["depth"] == 1
        assert by_name["steal"]["depth"] == 2

        depths = {}

        def other_thread():
            with tracer.span("other"):
                pass
            depths["other"] = tracer.records()[-1]["depth"]

        with tracer.span("outer"):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        # the other thread starts at its own depth 0, not under "outer"
        assert depths["other"] == 0

    def test_span_records_error_field_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("job"):
                raise ValueError("boom")
        except ValueError:
            pass
        (rec,) = tracer.records()
        assert rec["fields"]["error"] == "ValueError"
        # depth bookkeeping survives the exception
        with tracer.span("next"):
            pass
        assert tracer.records()[-1]["depth"] == 0

    def test_event_has_no_duration(self):
        tracer = Tracer()
        tracer.event("steal", steals=2)
        (rec,) = tracer.records()
        assert rec["kind"] == "event"
        assert "dur_s" not in rec


class TestRing:
    def test_ring_is_bounded_newest_win(self):
        tracer = Tracer(ring_size=4)
        for i in range(10):
            tracer.event("e", i=i)
        records = tracer.records()
        assert len(records) == 4
        assert [r["fields"]["i"] for r in records] == [6, 7, 8, 9]

    def test_records_limit_returns_newest_oldest_first(self):
        tracer = Tracer()
        for i in range(5):
            tracer.event("e", i=i)
        assert [
            r["fields"]["i"] for r in tracer.records(limit=2)
        ] == [3, 4]


class TestJsonl:
    def test_records_append_as_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(jsonl_path=path)
        with tracer.span("job", id="job-1"):
            tracer.event("steal", steals=1)
        tracer.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            rec = json.loads(line)
            for key in REQUIRED_KEYS:
                assert key in rec

    def test_close_is_idempotent_and_ring_survives(self, tmp_path):
        tracer = Tracer(jsonl_path=tmp_path / "t.jsonl")
        tracer.event("e")
        tracer.close()
        tracer.close()
        assert len(tracer.records()) == 1


class TestDisabledSingletons:
    def test_null_tracer_hands_out_one_shared_span(self):
        a = NULL_TRACER.span("job", id="x")
        b = NULL_TRACER.span("level", k=3)
        assert a is b is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("job") as span:
            span.set(anything=1)
        NULL_TRACER.event("steal")
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.enabled is False
