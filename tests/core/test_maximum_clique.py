"""Tests for maximum clique bounds and exact solvers."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    planted_clique,
    star_graph,
)
from repro.core.graph import Graph
from repro.core.maximum_clique import (
    degeneracy_bound,
    greedy_clique,
    greedy_coloring_bound,
    maximum_clique,
    maximum_clique_size,
    maximum_clique_via_vertex_cover,
)


def nx_max_clique_size(g: Graph) -> int:
    cliques = list(nx.find_cliques(g.to_networkx())) or [[]]
    return max(len(c) for c in cliques)


class TestBounds:
    def test_greedy_is_clique(self, random_graph):
        c = greedy_clique(random_graph)
        assert random_graph.is_clique(c)
        assert len(c) >= 1

    def test_greedy_empty_graph(self):
        assert greedy_clique(Graph(0)) == []

    def test_coloring_bound_complete(self):
        assert greedy_coloring_bound(complete_graph(5)) == 5

    def test_coloring_bound_bipartiteish(self):
        assert greedy_coloring_bound(path_graph(6)) == 2

    def test_coloring_bound_empty(self):
        assert greedy_coloring_bound(Graph(0)) == 0

    def test_degeneracy_bound(self):
        assert degeneracy_bound(complete_graph(6)) == 6
        assert degeneracy_bound(star_graph(8)) == 2
        assert degeneracy_bound(Graph(0)) == 0

    def test_bounds_sandwich_optimum(self, seeded_er):
        omega = len(maximum_clique(seeded_er))
        assert len(greedy_clique(seeded_er)) <= omega
        assert omega <= greedy_coloring_bound(seeded_er)
        assert omega <= degeneracy_bound(seeded_er)


class TestExactBranchAndBound:
    def test_empty(self):
        assert maximum_clique(Graph(0)) == []

    def test_edgeless(self):
        assert len(maximum_clique(Graph(4))) == 1

    def test_complete(self):
        assert maximum_clique(complete_graph(7)) == list(range(7))

    def test_cycle(self):
        assert maximum_clique_size(cycle_graph(7)) == 2

    def test_planted_clique_recovered(self):
        g, members = planted_clique(60, 10, 0.15, seed=6)
        assert maximum_clique(g) == members

    def test_matches_networkx(self, seeded_er):
        assert maximum_clique_size(seeded_er) == nx_max_clique_size(
            seeded_er
        )

    def test_result_is_sorted_clique(self, random_graph):
        c = maximum_clique(random_graph)
        assert c == sorted(c)
        assert random_graph.is_clique(c)


class TestViaVertexCover:
    def test_empty(self):
        assert maximum_clique_via_vertex_cover(Graph(0)) == []

    def test_triangle(self, triangle):
        assert maximum_clique_via_vertex_cover(triangle) == [0, 1, 2]

    def test_path(self):
        assert len(maximum_clique_via_vertex_cover(path_graph(4))) == 2

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agrees_with_branch_and_bound(self, seed):
        g = erdos_renyi(14, 0.5, seed=seed)
        assert len(maximum_clique_via_vertex_cover(g)) == len(
            maximum_clique(g)
        )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=18),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=999),
)
def test_exact_solver_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    c = maximum_clique(g)
    assert g.is_clique(c)
    assert len(c) == nx_max_clique_size(g)
