"""Tests for the k-clique enumerator (Section 2.2 of the paper)."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generators import complete_graph, erdos_renyi, path_graph
from repro.core.graph import Graph
from repro.core.kclique import enumerate_k_cliques, k_core_mask
from repro.errors import ParameterError


def brute_force_k_cliques(g: Graph, k: int):
    """All k-cliques by exhaustive subset check."""
    return sorted(
        c for c in combinations(range(g.n), k) if g.is_clique(c)
    )


class TestKCoreMask:
    def test_all_survive_complete(self):
        assert k_core_mask(complete_graph(5), 5).all()

    def test_path_k3(self):
        # no vertex of a path has degree >= 2 after peeling cascades
        mask = k_core_mask(path_graph(5), 3)
        assert not mask.any()

    def test_cascade(self):
        # triangle with a pendant chain: chain peels away for k=3
        g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
        mask = k_core_mask(g, 3)
        assert mask[:3].all()
        assert not mask[3:].any()


class TestEnumerateKCliques:
    def test_k1_splits_isolated(self):
        g = Graph.from_edges(3, [(0, 1)])
        res = enumerate_k_cliques(g, 1)
        assert res.maximal == [(2,)]
        assert sorted(res.non_maximal) == [(0,), (1,)]

    def test_k2_is_edges(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        res = enumerate_k_cliques(g, 2)
        assert sorted(res.all_cliques()) == [(0, 1), (0, 2), (1, 2), (2, 3)]
        # edge (2,3) has no common neighbor -> maximal
        assert (2, 3) in res.maximal
        assert (0, 1) in res.non_maximal

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            enumerate_k_cliques(Graph(3), 0)

    def test_empty_graph(self):
        res = enumerate_k_cliques(Graph(0), 3)
        assert res.all_cliques() == []

    def test_k_larger_than_max_clique(self):
        res = enumerate_k_cliques(complete_graph(4), 5)
        assert res.all_cliques() == []

    def test_complete_graph_counts(self):
        res = enumerate_k_cliques(complete_graph(6), 3)
        assert len(res.all_cliques()) == 20  # C(6,3)
        assert res.maximal == []  # all 3-cliques extend inside K6

    def test_maximal_k_clique_detected(self):
        # two triangles sharing one vertex: both maximal 3-cliques
        g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3),
                                 (2, 4), (3, 4)])
        res = enumerate_k_cliques(g, 3)
        assert sorted(res.maximal) == [(0, 1, 2), (2, 3, 4)]
        assert res.non_maximal == []

    def test_canonical_order(self, random_graph):
        res = enumerate_k_cliques(random_graph, 3)
        assert res.maximal == sorted(res.maximal)
        assert res.non_maximal == sorted(res.non_maximal)

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_matches_brute_force(self, k, random_graph):
        res = enumerate_k_cliques(random_graph, k)
        assert res.all_cliques() == brute_force_k_cliques(random_graph, k)

    def test_maximality_split_correct(self, random_graph):
        g = random_graph
        res = enumerate_k_cliques(g, 3)
        for c in res.maximal:
            assert not g.common_neighbors(c).any()
        for c in res.non_maximal:
            assert g.common_neighbors(c).any()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=14),
    st.floats(min_value=0.1, max_value=0.9),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=2, max_value=5),
)
def test_kclique_property(n, p, seed, k):
    g = erdos_renyi(n, p, seed=seed)
    res = enumerate_k_cliques(g, k)
    assert res.all_cliques() == brute_force_k_cliques(g, k)
    # split consistency
    for c in res.maximal:
        assert not g.common_neighbors(c).any()
    for c in res.non_maximal:
        assert g.common_neighbors(c).any()
