"""The WAH word-array kernels against BitSet oracles.

The compressed-domain generation step leans on exactly the edge cases
this suite pins: canonical output equal to the encoder's for every bit
pattern, fill-run skipping across word boundaries, alternating
literal/fill runs, all-ones fills, and universes that are not a
multiple of the 31-bit group size.  Every property is checked both on
hand-built shapes and randomized against the uncompressed
:class:`~repro.core.bitset.BitSet` as the oracle.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import BitSetError
from repro.core.bitset import BitSet
from repro.core.compressed import (
    GROUP_BITS,
    WahBitmap,
    WahScratch,
    wah_and_any,
    wah_and_count,
    wah_and_into,
    wah_from_sorted_indices,
    wah_indices_above,
)

#: universes spanning the boundary cases: empty, sub-group, exact
#: group/word multiples, and large not-a-multiple-of-31 sizes.
UNIVERSES = [0, 1, 30, 31, 32, 62, 63, 64, 93, 100, 128, 500, 2000]


def _n_groups(n: int) -> int:
    return (n + GROUP_BITS - 1) // GROUP_BITS


def _random_indices(rng, n, density):
    return [i for i in range(n) if rng.random() < density]


class TestKernelOracle:
    """Randomized equivalence with the BitSet algebra."""

    @pytest.mark.parametrize("seed", range(4))
    def test_and_kernels_match_bitset(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            n = rng.choice(UNIVERSES)
            ia = _random_indices(
                rng, n, rng.choice([0.0, 0.01, 0.2, 0.5, 0.95, 1.0])
            )
            ib = _random_indices(
                rng, n, rng.choice([0.0, 0.02, 0.3, 0.9, 1.0])
            )
            a, b = WahBitmap.from_indices(n, ia), WahBitmap.from_indices(
                n, ib
            )
            ng = _n_groups(n)
            expected = sorted(set(ia) & set(ib))
            out = wah_and_into(a.wah_words(), b.wah_words(), ng)
            # canonical: kernel output == encoder output, byte for byte
            assert out == (a & b).wah_words().tolist()
            assert sorted(WahBitmap(n, out).iter_indices()) == expected
            assert wah_and_any(
                a.wah_words(), b.wah_words(), ng
            ) == bool(expected)
            assert (
                wah_and_count(a.wah_words(), b.wah_words(), ng)
                == len(expected)
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_indices_above_and_sorted_encode(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(60):
            n = rng.choice([u for u in UNIVERSES if u])
            idx = _random_indices(rng, n, rng.choice([0.01, 0.3, 1.0]))
            bm = WahBitmap.from_indices(n, idx)
            lo = rng.randrange(-1, n)
            assert list(wah_indices_above(bm.wah_words(), lo)) == [
                i for i in idx if i > lo
            ]
            # direct canonical encode == encoder output
            assert wah_from_sorted_indices(n, idx) == bm.wah_words().tolist()

    def test_kernel_and_matches_bitset_words(self):
        """End to end through the uint64 word layout the hot loops use."""
        rng = random.Random(9)
        for n in (64, 100, 500):
            wa = BitSet.from_indices(n, _random_indices(rng, n, 0.1))
            wb = BitSet.from_indices(n, _random_indices(rng, n, 0.4))
            a = WahBitmap.from_words(wa.words, n)
            b = WahBitmap.from_words(wb.words, n)
            out = wah_and_into(
                a.wah_words(), b.wah_words(), _n_groups(n)
            )
            assert np.array_equal(
                WahBitmap(n, out).to_words(), (wa & wb).words
            )


class TestEdgeCases:
    """The shapes the compressed-domain step leans on."""

    def test_zero_length_fill_rejected_at_word_boundary(self):
        """A fill of run length zero is invalid wherever it appears —
        including exactly at a group/word boundary."""
        zero_fill = 1 << 31  # fill flag, bit 0, length 0
        with pytest.raises(BitSetError, match="zero run length"):
            WahBitmap(GROUP_BITS * 2, [0b1, zero_fill, 0b1])
        with pytest.raises(BitSetError, match="zero run length"):
            WahBitmap(GROUP_BITS, [zero_fill])
        # and a zero-length fill can never round-trip out of the encoder
        for n in (31, 62, 64, 2000):
            bm = WahBitmap.from_indices(n, range(0, n, 7))
            assert all(
                (w >> 31) == 0 or (w & ((1 << 30) - 1)) > 0
                for w in bm.wah_words()
            )

    def test_alternating_literal_and_fill_runs(self):
        """A bitmap alternating sparse groups with long fills exercises
        every reader-state transition of the merge kernels."""
        n = GROUP_BITS * 40
        # literal, zero-fill, one-fill, literal, zero-fill ...
        idx: list[int] = []
        for block in range(0, 40, 4):
            base = block * GROUP_BITS
            idx.append(base + 3)                       # literal group
            # block+1 empty (zero fill)
            idx.extend(
                range(base + 2 * GROUP_BITS, base + 3 * GROUP_BITS)
            )                                          # one-fill group
            # block+3 empty
        a = WahBitmap.from_indices(n, idx)
        b = WahBitmap.from_indices(n, range(0, n, 2))
        ng = _n_groups(n)
        expected = sorted(set(idx) & set(range(0, n, 2)))
        out = wah_and_into(a.wah_words(), b.wah_words(), ng)
        assert out == (a & b).wah_words().tolist()
        assert (
            wah_and_count(a.wah_words(), b.wah_words(), ng)
            == len(expected)
        )
        assert list(wah_indices_above(a.wah_words(), idx[0])) == [
            i for i in idx if i > idx[0]
        ]

    def test_andnot_against_all_ones_fill(self):
        """``x.andnot(ones)`` is empty and ``ones.andnot(x)`` is the
        complement, with the operand encoded as a single one-fill."""
        n = GROUP_BITS * 8
        ones = WahBitmap.from_indices(n, range(n))
        assert ones.wah_words().tolist() == [(1 << 31) | (1 << 30) | 8]
        sparse = WahBitmap.from_indices(n, [0, 100, n - 1])
        assert not sparse.andnot(ones).any()
        assert sorted(ones.andnot(sparse).iter_indices()) == [
            i for i in range(n) if i not in (0, 100, n - 1)
        ]
        # the kernels see the same single-fill operand
        assert wah_and_count(
            sparse.wah_words(), ones.wah_words(), 8
        ) == 3

    @pytest.mark.parametrize("n", [1, 30, 32, 64, 100, 2000])
    def test_universe_not_a_multiple_of_31(self, n):
        """Partial final groups: padding stays zero through the kernels
        and out-of-universe indices are rejected."""
        assert n % GROUP_BITS != 0
        idx = [0, n - 1] if n > 1 else [0]
        bm = WahBitmap.from_indices(n, idx)
        out = wah_and_into(
            bm.wah_words(), bm.wah_words(), _n_groups(n)
        )
        # ANDing with itself round-trips, and the result revalidates
        # (including the padding-bits-zero check) in the constructor
        assert WahBitmap(n, out) == bm
        assert wah_from_sorted_indices(n, idx) == bm.wah_words().tolist()
        with pytest.raises(BitSetError, match="outside"):
            wah_from_sorted_indices(n, [n + GROUP_BITS])


class TestWahScratch:
    def test_buffer_reuse_and_tallies(self):
        scratch = WahScratch()
        n = 310
        ng = _n_groups(n)
        a = WahBitmap.from_indices(n, range(0, n, 3))
        b = WahBitmap.from_indices(n, range(0, n, 5))
        out = wah_and_into(a.wah_words(), b.wah_words(), ng, scratch)
        assert out is scratch.buf
        first = list(out)
        assert scratch.and_ops == 1
        assert scratch.word_ops > 0
        # the next call reuses (and overwrites) the same buffer
        out2 = wah_and_into(b.wah_words(), b.wah_words(), ng, scratch)
        assert out2 is scratch.buf
        assert scratch.and_ops == 2
        assert out2 == b.wah_words().tolist()
        assert first != out2  # the copy survived, the buffer moved on
        wah_and_any(a.wah_words(), b.wah_words(), ng, scratch)
        wah_and_count(a.wah_words(), b.wah_words(), ng, scratch)
        assert scratch.and_ops == 4
        scratch.reset_stats()
        assert scratch.word_ops == 0 and scratch.and_ops == 0

    def test_and_any_early_exit_reads_fewer_words(self):
        """A hit in the first group must not scan the whole stream."""
        n = GROUP_BITS * 1000
        a = WahBitmap.from_indices(n, range(0, n, 31))
        b = WahBitmap.from_indices(n, range(0, n, 31))
        scratch = WahScratch()
        assert wah_and_any(
            a.wah_words(), b.wah_words(), 1000, scratch
        )
        assert scratch.word_ops <= 4
