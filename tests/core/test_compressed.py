"""Unit and property tests for the WAH compressed bitmap."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import BitSet, indices_to_words
from repro.core.compressed import GROUP_BITS, WahBitmap
from repro.errors import BitSetError


class TestRoundTrip:
    def test_empty(self):
        w = WahBitmap.zeros(100)
        assert w.to_bitset() == BitSet.zeros(100)
        assert not w.any()
        assert w.count() == 0

    def test_zero_universe(self):
        w = WahBitmap.zeros(0)
        assert w.count() == 0
        assert w.to_bitset().n == 0

    def test_single_bit(self):
        w = WahBitmap.from_indices(100, [42])
        assert sorted(w.to_bitset()) == [42]
        assert w.count() == 1
        assert w.any()

    def test_full(self):
        full = BitSet.ones(100)
        w = WahBitmap.from_bitset(full)
        assert w.to_bitset() == full
        assert w.count() == 100

    def test_group_boundary_sizes(self):
        for n in (GROUP_BITS - 1, GROUP_BITS, GROUP_BITS + 1,
                  2 * GROUP_BITS, 2 * GROUP_BITS + 5):
            s = BitSet.from_indices(n, [0, n - 1])
            w = WahBitmap.from_bitset(s)
            assert w.to_bitset() == s, f"n={n}"


class TestCompression:
    def test_sparse_compresses(self):
        # one set bit in a large universe: long zero fills dominate
        w = WahBitmap.from_indices(31 * 1000, [5])
        assert w.compressed_words() <= 4
        assert w.compression_ratio() > 100

    def test_dense_compresses(self):
        w = WahBitmap.from_bitset(BitSet.ones(31 * 1000))
        assert w.compressed_words() <= 2

    def test_alternating_does_not_blow_up(self):
        n = 31 * 40
        s = BitSet.from_indices(n, range(0, n, 2))
        w = WahBitmap.from_bitset(s)
        # incompressible pattern: at most one word per group
        assert w.compressed_words() <= 40

    def test_canonical_equal_bitmaps_equal_words(self):
        a = WahBitmap.from_indices(500, [3, 77, 400])
        b = WahBitmap.from_indices(500, [400, 3, 77])
        assert a == b
        assert hash(a) == hash(b)

    def test_ratio_of_empty_universe(self):
        assert WahBitmap.zeros(0).compression_ratio() == 1.0


class TestConstructionValidation:
    """Regression: a truncated or padded word stream used to surface
    only later as a confusing group-count error from count() (or as a
    wrong __eq__/__hash__); now construction validates coverage."""

    def test_truncated_stream_rejected(self):
        good = WahBitmap.from_indices(200, [1, 63, 150])
        words = good._words[:-1]
        with pytest.raises(BitSetError, match="group"):
            WahBitmap(200, words)

    def test_over_long_stream_rejected(self):
        good = WahBitmap.from_indices(200, [1])
        with pytest.raises(BitSetError, match="expected"):
            WahBitmap(200, list(good._words) + [0])

    def test_zero_length_fill_rejected(self):
        # a bare fill flag encodes a zero-group run: meaningless
        with pytest.raises(BitSetError, match="zero run length"):
            WahBitmap(GROUP_BITS, [1 << 31])

    def test_out_of_range_word_rejected(self):
        with pytest.raises(BitSetError, match="32-bit"):
            WahBitmap(GROUP_BITS, [1 << 32])
        with pytest.raises(BitSetError, match="32-bit"):
            WahBitmap(GROUP_BITS, [-1])

    def test_nonempty_words_on_empty_universe_rejected(self):
        with pytest.raises(BitSetError):
            WahBitmap(0, [0])

    def test_valid_stream_accepted(self):
        good = WahBitmap.from_indices(200, [1, 63, 150])
        rebuilt = WahBitmap(200, list(good._words))
        assert rebuilt == good

    def test_message_is_precise(self):
        with pytest.raises(
            BitSetError,
            match=r"covers 1 group\(s\), expected 4 for a 100-bit",
        ):
            WahBitmap(100, [0])

    def test_one_fill_into_padding_rejected(self):
        # a one-fill spanning the padded final group would make
        # count() exceed n and iter_indices() yield indices >= n
        one_fill_3 = (1 << 31) | (1 << 30) | 3
        with pytest.raises(BitSetError, match="padding"):
            WahBitmap(67, [one_fill_3])

    def test_literal_with_padding_bits_rejected(self):
        with pytest.raises(BitSetError, match="padding"):
            WahBitmap(32, [0, 1 << 30])

    def test_zero_fill_over_padded_tail_accepted(self):
        w = WahBitmap(67, [(1 << 31) | 3])
        assert w.count() == 0

    def test_full_final_group_without_padding_accepted(self):
        # n a multiple of the group size: a one-fill tail is legal
        n = 2 * GROUP_BITS
        w = WahBitmap(n, [(1 << 31) | (1 << 30) | 2])
        assert w.count() == n


class TestWordConversions:
    def test_from_words_roundtrip(self):
        words = indices_to_words([0, 5, 64, 120, 200], 256)
        w = WahBitmap.from_words(words)
        assert w.n == 256
        assert np.array_equal(w.to_words(), words)

    def test_from_words_with_explicit_n(self):
        words = indices_to_words([3], 40)
        w = WahBitmap.from_words(words, 40)
        assert w.n == 40
        assert sorted(w.to_bitset()) == [3]

    def test_from_words_empty(self):
        w = WahBitmap.from_words(np.zeros(0, dtype=np.uint64))
        assert w.n == 0 and w.count() == 0


class TestIterIndices:
    def test_matches_bitset_iteration(self):
        idx = [0, 1, 30, 31, 32, 62, 99, 300, 301, 929]
        w = WahBitmap.from_indices(31 * 30, idx)
        assert list(w.iter_indices()) == idx
        assert list(w) == idx

    def test_one_fill_run(self):
        n = GROUP_BITS * 4
        w = WahBitmap.from_bitset(BitSet.ones(n))
        assert list(w.iter_indices()) == list(range(n))

    def test_empty(self):
        assert list(WahBitmap.zeros(500).iter_indices()) == []

    def test_never_yields_padding(self):
        # n not a multiple of the group size: the final group is padded
        n = GROUP_BITS * 3 + 5
        w = WahBitmap.from_bitset(BitSet.ones(n))
        assert max(w.iter_indices()) == n - 1
        assert w.count() == n


class TestIntersectAny:
    def test_basic(self):
        a = WahBitmap.from_indices(2000, [5, 1999])
        b = WahBitmap.from_indices(2000, [1999])
        c = WahBitmap.from_indices(2000, [7])
        assert a.intersect_any(b)
        assert not a.intersect_any(c)
        assert not WahBitmap.zeros(2000).intersect_any(a)

    def test_matches_materialised_and(self):
        rng = np.random.RandomState(77)
        n = 31 * 60
        for _ in range(50):
            ia = rng.choice(n, size=rng.randint(0, 12), replace=False)
            ib = rng.choice(n, size=rng.randint(0, 12), replace=False)
            wa = WahBitmap.from_indices(n, ia)
            wb = WahBitmap.from_indices(n, ib)
            assert wa.intersect_any(wb) == (wa & wb).any()

    def test_long_disjoint_fills(self):
        n = 31 * 5000
        a = WahBitmap.from_indices(n, [0])
        b = WahBitmap.from_indices(n, [n - 1])
        assert not a.intersect_any(b)
        assert a.intersect_any(a)


class TestCompressedOps:
    def test_and(self):
        a = WahBitmap.from_indices(200, [1, 50, 100, 150])
        b = WahBitmap.from_indices(200, [50, 150, 199])
        assert sorted((a & b).to_bitset()) == [50, 150]

    def test_or(self):
        a = WahBitmap.from_indices(200, [1])
        b = WahBitmap.from_indices(200, [199])
        assert sorted((a | b).to_bitset()) == [1, 199]

    def test_xor(self):
        a = WahBitmap.from_indices(200, [1, 2])
        b = WahBitmap.from_indices(200, [2, 3])
        assert sorted((a ^ b).to_bitset()) == [1, 3]

    def test_andnot(self):
        a = WahBitmap.from_indices(200, [1, 2])
        b = WahBitmap.from_indices(200, [2])
        assert sorted(a.andnot(b).to_bitset()) == [1]

    def test_universe_mismatch(self):
        with pytest.raises(BitSetError):
            WahBitmap.zeros(10) & WahBitmap.zeros(11)

    def test_type_mismatch(self):
        with pytest.raises(TypeError):
            WahBitmap.zeros(10) & BitSet.zeros(10)

    def test_long_fill_bulk_path(self):
        # both operands mid-fill for thousands of groups exercises the
        # bulk-skip branch
        n = 31 * 5000
        a = WahBitmap.from_indices(n, [0, n - 1])
        b = WahBitmap.from_indices(n, [0, 17])
        assert sorted((a & b).to_bitset()) == [0]
        assert sorted((a | b).to_bitset()) == [0, 17, n - 1]

    def test_repr(self):
        assert "count=2" in repr(WahBitmap.from_indices(64, [1, 2]))


# ---------------------------------------------------------------------------
# properties: WAH must be a faithful, canonical codec
# ---------------------------------------------------------------------------

@st.composite
def bitset_and_indices(draw):
    n = draw(st.integers(min_value=1, max_value=400))
    idx = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), unique=True)
    )
    return n, idx


@settings(max_examples=40, deadline=None)
@given(bitset_and_indices())
def test_roundtrip_property(t):
    n, idx = t
    s = BitSet.from_indices(n, idx)
    assert WahBitmap.from_bitset(s).to_bitset() == s


@settings(max_examples=40, deadline=None)
@given(bitset_and_indices())
def test_count_matches_uncompressed(t):
    n, idx = t
    s = BitSet.from_indices(n, idx)
    assert WahBitmap.from_bitset(s).count() == s.count()


@settings(max_examples=30, deadline=None)
@given(bitset_and_indices(), st.data())
def test_compressed_ops_match_bitset_ops(t, data):
    n, idx_a = t
    idx_b = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), unique=True)
    )
    sa, sb = BitSet.from_indices(n, idx_a), BitSet.from_indices(n, idx_b)
    wa, wb = WahBitmap.from_bitset(sa), WahBitmap.from_bitset(sb)
    assert (wa & wb).to_bitset() == (sa & sb)
    assert (wa | wb).to_bitset() == (sa | sb)
    assert (wa ^ wb).to_bitset() == (sa ^ sb)
    assert wa.andnot(wb).to_bitset() == (sa - sb)


@settings(max_examples=30, deadline=None)
@given(bitset_and_indices())
def test_compressed_ops_are_canonical(t):
    """Results of compressed ops encode identically to a fresh encode."""
    n, idx = t
    s = BitSet.from_indices(n, idx)
    w = WahBitmap.from_bitset(s)
    rebuilt = w | WahBitmap.zeros(n)
    assert rebuilt == w


# ---------------------------------------------------------------------------
# randomized equivalence suite: seeded sparse/dense bitmaps, every
# compressed-domain op checked against the uncompressed BitSet truth
# ---------------------------------------------------------------------------

#: (universe size, fill density) grid — the sparse end mirrors the
#: paper's genome-scale common-neighbor strings, the dense end the
#: one-fill regime, and 0.5 the incompressible literal regime.
RANDOM_CASES = [
    (n, density)
    for n in (1, 31, 32, 63, 100, 500, 2001)
    for density in (0.01, 0.1, 0.5, 0.9, 0.99)
]


def _random_bitset(rng: np.random.RandomState, n: int, density: float):
    mask = rng.random_sample(n) < density
    return BitSet.from_indices(n, np.flatnonzero(mask))


@pytest.mark.parametrize("n,density", RANDOM_CASES)
def test_random_ops_match_bitset(n, density):
    rng = np.random.RandomState(hash((n, density)) % (2**32))
    for _ in range(8):
        sa = _random_bitset(rng, n, density)
        sb = _random_bitset(rng, n, density)
        wa, wb = WahBitmap.from_bitset(sa), WahBitmap.from_bitset(sb)
        assert (wa & wb).to_bitset() == (sa & sb)
        assert (wa | wb).to_bitset() == (sa | sb)
        assert (wa ^ wb).to_bitset() == (sa ^ sb)
        assert wa.andnot(wb).to_bitset() == (sa - sb)
        assert wa.count() == sa.count()
        assert wa.any() == sa.any()
        assert wa.intersect_any(wb) == (not sa.isdisjoint(sb))
        assert list(wa.iter_indices()) == sa.to_indices().tolist()


@pytest.mark.parametrize("n,density", RANDOM_CASES)
def test_random_decode_reencode_is_canonical(n, density):
    """decode -> re-encode reproduces the exact word sequence, for the
    direct encodings and for every compressed-op result."""
    rng = np.random.RandomState(hash(("canon", n, density)) % (2**32))
    for _ in range(8):
        sa = _random_bitset(rng, n, density)
        sb = _random_bitset(rng, n, density)
        wa, wb = WahBitmap.from_bitset(sa), WahBitmap.from_bitset(sb)
        for w in (wa, wa & wb, wa | wb, wa ^ wb, wa.andnot(wb)):
            reencoded = WahBitmap.from_bitset(w.to_bitset())
            assert np.array_equal(reencoded._words, w._words)
            assert reencoded == w and hash(reencoded) == hash(w)
