"""Unit and property tests for the WAH compressed bitmap."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import BitSet
from repro.core.compressed import GROUP_BITS, WahBitmap
from repro.errors import BitSetError


class TestRoundTrip:
    def test_empty(self):
        w = WahBitmap.zeros(100)
        assert w.to_bitset() == BitSet.zeros(100)
        assert not w.any()
        assert w.count() == 0

    def test_zero_universe(self):
        w = WahBitmap.zeros(0)
        assert w.count() == 0
        assert w.to_bitset().n == 0

    def test_single_bit(self):
        w = WahBitmap.from_indices(100, [42])
        assert sorted(w.to_bitset()) == [42]
        assert w.count() == 1
        assert w.any()

    def test_full(self):
        full = BitSet.ones(100)
        w = WahBitmap.from_bitset(full)
        assert w.to_bitset() == full
        assert w.count() == 100

    def test_group_boundary_sizes(self):
        for n in (GROUP_BITS - 1, GROUP_BITS, GROUP_BITS + 1,
                  2 * GROUP_BITS, 2 * GROUP_BITS + 5):
            s = BitSet.from_indices(n, [0, n - 1])
            w = WahBitmap.from_bitset(s)
            assert w.to_bitset() == s, f"n={n}"


class TestCompression:
    def test_sparse_compresses(self):
        # one set bit in a large universe: long zero fills dominate
        w = WahBitmap.from_indices(31 * 1000, [5])
        assert w.compressed_words() <= 4
        assert w.compression_ratio() > 100

    def test_dense_compresses(self):
        w = WahBitmap.from_bitset(BitSet.ones(31 * 1000))
        assert w.compressed_words() <= 2

    def test_alternating_does_not_blow_up(self):
        n = 31 * 40
        s = BitSet.from_indices(n, range(0, n, 2))
        w = WahBitmap.from_bitset(s)
        # incompressible pattern: at most one word per group
        assert w.compressed_words() <= 40

    def test_canonical_equal_bitmaps_equal_words(self):
        a = WahBitmap.from_indices(500, [3, 77, 400])
        b = WahBitmap.from_indices(500, [400, 3, 77])
        assert a == b
        assert hash(a) == hash(b)

    def test_ratio_of_empty_universe(self):
        assert WahBitmap.zeros(0).compression_ratio() == 1.0


class TestCompressedOps:
    def test_and(self):
        a = WahBitmap.from_indices(200, [1, 50, 100, 150])
        b = WahBitmap.from_indices(200, [50, 150, 199])
        assert sorted((a & b).to_bitset()) == [50, 150]

    def test_or(self):
        a = WahBitmap.from_indices(200, [1])
        b = WahBitmap.from_indices(200, [199])
        assert sorted((a | b).to_bitset()) == [1, 199]

    def test_xor(self):
        a = WahBitmap.from_indices(200, [1, 2])
        b = WahBitmap.from_indices(200, [2, 3])
        assert sorted((a ^ b).to_bitset()) == [1, 3]

    def test_andnot(self):
        a = WahBitmap.from_indices(200, [1, 2])
        b = WahBitmap.from_indices(200, [2])
        assert sorted(a.andnot(b).to_bitset()) == [1]

    def test_universe_mismatch(self):
        with pytest.raises(BitSetError):
            WahBitmap.zeros(10) & WahBitmap.zeros(11)

    def test_type_mismatch(self):
        with pytest.raises(TypeError):
            WahBitmap.zeros(10) & BitSet.zeros(10)

    def test_long_fill_bulk_path(self):
        # both operands mid-fill for thousands of groups exercises the
        # bulk-skip branch
        n = 31 * 5000
        a = WahBitmap.from_indices(n, [0, n - 1])
        b = WahBitmap.from_indices(n, [0, 17])
        assert sorted((a & b).to_bitset()) == [0]
        assert sorted((a | b).to_bitset()) == [0, 17, n - 1]

    def test_repr(self):
        assert "count=2" in repr(WahBitmap.from_indices(64, [1, 2]))


# ---------------------------------------------------------------------------
# properties: WAH must be a faithful, canonical codec
# ---------------------------------------------------------------------------

@st.composite
def bitset_and_indices(draw):
    n = draw(st.integers(min_value=1, max_value=400))
    idx = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), unique=True)
    )
    return n, idx


@settings(max_examples=40, deadline=None)
@given(bitset_and_indices())
def test_roundtrip_property(t):
    n, idx = t
    s = BitSet.from_indices(n, idx)
    assert WahBitmap.from_bitset(s).to_bitset() == s


@settings(max_examples=40, deadline=None)
@given(bitset_and_indices())
def test_count_matches_uncompressed(t):
    n, idx = t
    s = BitSet.from_indices(n, idx)
    assert WahBitmap.from_bitset(s).count() == s.count()


@settings(max_examples=30, deadline=None)
@given(bitset_and_indices(), st.data())
def test_compressed_ops_match_bitset_ops(t, data):
    n, idx_a = t
    idx_b = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), unique=True)
    )
    sa, sb = BitSet.from_indices(n, idx_a), BitSet.from_indices(n, idx_b)
    wa, wb = WahBitmap.from_bitset(sa), WahBitmap.from_bitset(sb)
    assert (wa & wb).to_bitset() == (sa & sb)
    assert (wa | wb).to_bitset() == (sa | sb)
    assert (wa ^ wb).to_bitset() == (sa ^ sb)
    assert wa.andnot(wb).to_bitset() == (sa - sb)


@settings(max_examples=30, deadline=None)
@given(bitset_and_indices())
def test_compressed_ops_are_canonical(t):
    """Results of compressed ops encode identically to a fresh encode."""
    n, idx = t
    s = BitSet.from_indices(n, idx)
    w = WahBitmap.from_bitset(s)
    rebuilt = w | WahBitmap.zeros(n)
    assert rebuilt == w
