"""Tests for the out-of-core level store and driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.generators import erdos_renyi, planted_clique
from repro.core.out_of_core import (
    DiskLevelStore,
    IOStats,
    enumerate_maximal_cliques_ooc,
)
from repro.core.sublist import CliqueSubList
from repro.errors import ParameterError


def _sl(prefix, tails, n=32):
    from repro.core import bitset as bs

    return CliqueSubList(
        prefix=tuple(prefix),
        tails=np.asarray(tails, dtype=np.int64),
        cn_words=bs.indices_to_words(tails, n),
    )


class TestDiskLevelStore:
    def test_roundtrip(self, tmp_path):
        with DiskLevelStore(tmp_path, chunk_size=2) as store:
            items = [_sl([0], [1, 2]), _sl([1], [2, 3]), _sl([2], [3, 4])]
            for sl in items:
                store.append(sl)
            assert len(store) == 3
            back = [sl for chunk in store.stream() for sl in chunk]
        assert [sl.prefix for sl in back] == [(0,), (1,), (2,)]
        assert all(
            np.array_equal(a.tails, b.tails) for a, b in zip(items, back)
        )

    def test_empty_store_streams_nothing(self, tmp_path):
        with DiskLevelStore(tmp_path) as store:
            assert list(store.stream()) == []

    def test_io_stats_counted(self, tmp_path):
        stats = IOStats()
        with DiskLevelStore(tmp_path, chunk_size=1, stats=stats) as store:
            store.append(_sl([0], [1, 2]))
            list(store.stream())
        assert stats.write_ops == 1
        assert stats.read_ops == 1
        assert stats.bytes_written > 0
        assert stats.bytes_read == stats.bytes_written
        assert stats.total_bytes == 2 * stats.bytes_written

    def test_chunking(self, tmp_path):
        stats = IOStats()
        with DiskLevelStore(tmp_path, chunk_size=4, stats=stats) as store:
            for i in range(10):
                store.append(_sl([i], [i + 1, i + 2]))
            chunks = list(store.stream())
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert stats.write_ops == 3

    def test_invalid_chunk_size(self):
        with pytest.raises(ParameterError):
            DiskLevelStore(chunk_size=0)

    def test_temp_dir_mode(self):
        with DiskLevelStore() as store:
            store.append(_sl([0], [1, 2]))
            assert len(list(store.stream())) == 1


class TestOocDriver:
    def test_matches_in_core(self, seeded_er):
        in_core = enumerate_maximal_cliques(seeded_er, k_min=2)
        ooc = enumerate_maximal_cliques_ooc(seeded_er, k_min=2)
        assert sorted(ooc.cliques) == sorted(in_core.cliques)

    def test_io_traffic_positive(self):
        g, _ = planted_clique(50, 9, 0.1, seed=6)
        ooc = enumerate_maximal_cliques_ooc(g)
        assert ooc.io.bytes_written > 0
        assert ooc.io.bytes_read > 0

    def test_init_k_seeding(self):
        g, _ = planted_clique(40, 8, 0.12, seed=3)
        in_core = enumerate_maximal_cliques(g, k_min=4)
        ooc = enumerate_maximal_cliques_ooc(g, k_min=4)
        assert sorted(ooc.cliques) == sorted(in_core.cliques)

    def test_k_max(self):
        g = erdos_renyi(25, 0.4, seed=1)
        in_core = enumerate_maximal_cliques(g, k_min=2, k_max=3)
        ooc = enumerate_maximal_cliques_ooc(g, k_max=3)
        assert sorted(ooc.cliques) == sorted(in_core.cliques)

    def test_callback_mode(self):
        g = erdos_renyi(20, 0.3, seed=2)
        seen: list[tuple[int, ...]] = []
        res = enumerate_maximal_cliques_ooc(g, on_clique=seen.append)
        assert res.cliques == []
        assert sorted(seen) == sorted(
            enumerate_maximal_cliques(g, k_min=2).cliques
        )

    def test_invalid_range(self):
        with pytest.raises(ParameterError):
            enumerate_maximal_cliques_ooc(
                erdos_renyi(5, 0.5, seed=0), k_min=4, k_max=3
            )

    def test_explicit_directory(self, tmp_path):
        g = erdos_renyi(20, 0.35, seed=5)
        res = enumerate_maximal_cliques_ooc(g, directory=tmp_path)
        assert res.io.bytes_written > 0
        # spill files are cleaned up after streaming
        assert list(tmp_path.glob("*.spill")) == []
