"""Unit and property tests for repro.core.graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.core.generators import complete_graph
from repro.errors import GraphError


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        g.validate()

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_from_edges(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2)])
        assert g.m == 2
        assert g.has_edge(1, 0)
        g.validate()

    def test_from_edges_duplicates_ignored(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [(1, 1)])

    def test_from_adjacency(self):
        a = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
        g = Graph.from_adjacency(a)
        assert g.m == 2
        g.validate()

    def test_from_adjacency_requires_square(self):
        with pytest.raises(GraphError):
            Graph.from_adjacency(np.zeros((2, 3)))

    def test_from_adjacency_requires_symmetric(self):
        a = np.array([[0, 1], [0, 0]])
        with pytest.raises(GraphError):
            Graph.from_adjacency(a)

    def test_from_adjacency_rejects_diagonal(self):
        a = np.array([[1, 0], [0, 0]])
        with pytest.raises(GraphError):
            Graph.from_adjacency(a)

    def test_from_networkx_roundtrip(self):
        import networkx as nx

        nxg = nx.path_graph(5)
        g = Graph.from_networkx(nxg)
        assert g.m == 4
        back = g.to_networkx()
        assert sorted(back.edges()) == sorted(nxg.edges())

    def test_copy_independent(self):
        g = Graph.from_edges(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)


class TestMutation:
    def test_add_remove(self):
        g = Graph(3)
        g.add_edge(0, 2)
        assert g.has_edge(2, 0)
        g.remove_edge(0, 2)
        assert not g.has_edge(0, 2)
        assert g.m == 0
        g.validate()

    def test_add_idempotent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.m == 1
        assert g.degree(0) == 1

    def test_remove_absent_raises(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_vertex_range_checked(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            g.add_edge(0, 3)
        with pytest.raises(GraphError):
            g.degree(-1)


class TestQueries:
    def test_degrees(self, star7):
        assert star7.degree(0) == 6
        assert star7.degree(1) == 1
        assert star7.degrees().sum() == 2 * star7.m

    def test_density(self):
        assert complete_graph(5).density() == pytest.approx(1.0)
        assert Graph(5).density() == 0.0
        assert Graph(1).density() == 0.0

    def test_neighbors_sorted(self):
        g = Graph.from_edges(6, [(3, 5), (3, 0), (3, 4)])
        assert g.neighbors(3).tolist() == [0, 4, 5]

    def test_neighbor_bitset_shares_storage(self):
        g = Graph.from_edges(3, [(0, 1)])
        nb = g.neighbor_bitset(0)
        assert 1 in nb
        g.add_edge(0, 2)
        assert 2 in nb  # view semantics

    def test_edges_canonical_order(self):
        g = Graph.from_edges(4, [(2, 3), (0, 3), (0, 1)])
        assert list(g.edges()) == [(0, 1), (0, 3), (2, 3)]

    def test_is_clique(self, k5):
        assert k5.is_clique([0, 1, 2])
        assert k5.is_clique([])
        assert k5.is_clique([4])
        assert not k5.is_clique([0, 0, 1])

    def test_is_clique_negative(self, p4):
        assert not p4.is_clique([0, 1, 2])

    def test_common_neighbors(self):
        g = Graph.from_edges(
            4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        )
        cn = g.common_neighbors([0, 1])
        assert sorted(cn) == [2, 3]

    def test_common_neighbors_empty_args_is_full(self):
        g = Graph(4)
        assert g.common_neighbors([]).count() == 4

    def test_has_edge_self_false(self, k5):
        assert not k5.has_edge(2, 2)


class TestDerived:
    def test_complement(self, p4):
        c = p4.complement()
        assert c.m == 4 * 3 // 2 - 3
        assert c.has_edge(0, 2)
        assert not c.has_edge(0, 1)
        c.validate()

    def test_complement_involution(self, random_graph):
        assert random_graph.complement().complement() == random_graph

    def test_complement_odd_n_tail(self):
        g = Graph(70)
        c = g.complement()
        assert c.m == 70 * 69 // 2
        c.validate()

    def test_subgraph(self, barbell4):
        sub, mapping = barbell4.subgraph([0, 1, 2, 3])
        assert sub.n == 4
        assert sub.m == 6
        assert mapping.tolist() == [0, 1, 2, 3]
        sub.validate()

    def test_subgraph_relabels(self):
        g = Graph.from_edges(6, [(2, 5)])
        sub, mapping = g.subgraph([5, 2])
        assert sub.has_edge(0, 1)
        assert mapping.tolist() == [2, 5]

    def test_subgraph_duplicates_rejected(self, k5):
        with pytest.raises(GraphError):
            k5.subgraph([0, 0])

    def test_relabel(self, p4):
        h = p4.relabel([3, 2, 1, 0])
        assert h.has_edge(3, 2)
        assert h.has_edge(1, 0)
        h.validate()

    def test_relabel_bad_perm(self, p4):
        with pytest.raises(GraphError):
            p4.relabel([0, 0, 1, 2])

    def test_equality_hash(self):
        a = Graph.from_edges(3, [(0, 1)])
        b = Graph.from_edges(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        b.add_edge(1, 2)
        assert a != b

    def test_repr(self, k5):
        assert "n=5" in repr(k5)

    def test_nbytes_positive(self, k5):
        assert k5.nbytes() > 0


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------

@st.composite
def random_edges(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda p: p[0] != p[1])
    edges = draw(st.lists(pairs, max_size=80))
    return n, edges


@settings(max_examples=40, deadline=None)
@given(random_edges())
def test_invariants_hold(t):
    n, edges = t
    g = Graph.from_edges(n, edges)
    g.validate()
    assert g.m == len({tuple(sorted(e)) for e in edges})
    assert int(g.degrees().sum()) == 2 * g.m


@settings(max_examples=30, deadline=None)
@given(random_edges())
def test_complement_partitions_pairs(t):
    n, edges = t
    g = Graph.from_edges(n, edges)
    c = g.complement()
    assert g.m + c.m == n * (n - 1) // 2
    for u, v in g.edges():
        assert not c.has_edge(u, v)


@settings(max_examples=20, deadline=None)
@given(random_edges())
def test_networkx_roundtrip(t):
    n, edges = t
    g = Graph.from_edges(n, edges)
    h = Graph.from_networkx(g.to_networkx())
    assert g == h
