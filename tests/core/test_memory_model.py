"""Tests for the memory model and paper recurrences."""

from __future__ import annotations

import pytest

from repro.core.clique_enumerator import LevelStats, enumerate_maximal_cliques
from repro.core.generators import complete_graph, erdos_renyi, planted_clique
from repro.core.graph import Graph
from repro.core.memory_model import (
    DISK_RESIDENT_RATIO,
    WAH_COMPRESSION_RATIO,
    available_memory_bytes,
    bytes_to_unit,
    check_paper_recurrences,
    memory_profile,
    parse_byte_size,
    predict_profile,
    seed_sublist_count,
)


def _stats(k, n_sub, m_cand, bytes_=100):
    return LevelStats(
        k=k,
        n_sublists=n_sub,
        n_candidates=m_cand,
        maximal_emitted=0,
        candidate_bytes=bytes_,
        paper_formula_bytes=bytes_,
    )


class TestUnits:
    def test_conversions(self):
        assert bytes_to_unit(1024, "KB") == 1.0
        assert bytes_to_unit(1024 ** 3, "GB") == 1.0
        assert bytes_to_unit(512, "B") == 512

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            bytes_to_unit(1, "PB")


class TestProfile:
    def test_profile_from_run(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        prof = memory_profile(res.level_stats)
        assert prof.sizes == [ls.k for ls in res.level_stats]
        peak_k, peak_b = prof.peak()
        assert peak_b == max(prof.measured_bytes)
        assert peak_k in prof.sizes

    def test_empty_profile(self):
        prof = memory_profile([])
        assert prof.peak() == (0, 0)
        assert prof.series() == []

    def test_series_units(self):
        prof = memory_profile([_stats(2, 1, 1, bytes_=2048)])
        assert prof.series("KB") == [(2, 2.0)]

    def test_rise_and_fall_on_planted(self):
        g, _ = planted_clique(70, 11, 0.1, seed=2)
        res = enumerate_maximal_cliques(g)
        prof = memory_profile(res.level_stats)
        peak_k, _ = prof.peak()
        # peak strictly inside the range: the Figure 9 shape
        assert prof.sizes[0] < peak_k < prof.sizes[-1]


class TestRecurrences:
    def test_valid_run_passes(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        assert check_paper_recurrences(res.level_stats, random_graph.n) == []

    def test_complete_graph_passes_safe_bounds(self):
        g = complete_graph(8)
        res = enumerate_maximal_cliques(g)
        assert check_paper_recurrences(res.level_stats, 8) == []

    def test_nonconsecutive_levels_flagged(self):
        issues = check_paper_recurrences(
            [_stats(2, 1, 2), _stats(4, 1, 2)], 10
        )
        assert any("not consecutive" in s for s in issues)

    def test_n_bound_violation_flagged(self):
        # N[3] = 5 > M[2] - 2*N[2] = 4 - 2 = 2
        issues = check_paper_recurrences(
            [_stats(2, 1, 4), _stats(3, 5, 5)], 10
        )
        assert any("N[3]" in s for s in issues)

    def test_m_bound_violation_flagged(self):
        # safe M bound: (M[2]-2N[2])*(n-k) = 2*8 = 16 < 50
        issues = check_paper_recurrences(
            [_stats(2, 1, 4), _stats(3, 2, 50)], 10
        )
        assert any("M[3]" in s for s in issues)


class TestPredictProfile:
    def test_prediction_bounds_measured_per_level(self):
        g = erdos_renyi(40, 0.25, seed=3)
        res = enumerate_maximal_cliques(g)
        predicted = predict_profile(g.n, g.m, 1, seed_sublist_count(g))
        by_k = dict(zip(predicted.sizes, predicted.predicted_bytes))
        for ls in res.level_stats:
            assert ls.candidate_bytes <= by_k[ls.k], (
                f"level {ls.k}: measured {ls.candidate_bytes} exceeds "
                f"predicted {by_k[ls.k]}"
            )
        _, peak_measured = memory_profile(res.level_stats).peak()
        assert peak_measured <= predicted.peak()[1]

    def test_exact_seed_count_matches_enumeration(self):
        g = erdos_renyi(40, 0.25, seed=4)
        res = enumerate_maximal_cliques(g)
        level2 = next(ls for ls in res.level_stats if ls.k == 2)
        assert seed_sublist_count(g) == level2.n_sublists

    def test_empty_graph_predicts_nothing(self):
        predicted = predict_profile(10, 0, 1)
        assert predicted.sizes == []
        assert predicted.peak() == (0, 0)
        assert predicted.peak_bytes("memory") == 0
        assert predicted.peak_bytes("wah") == 0
        assert predicted.peak_bytes("disk") == 0

    def test_store_scaling(self):
        g = erdos_renyi(30, 0.3, seed=5)
        predicted = predict_profile(g.n, g.m, 1, seed_sublist_count(g))
        raw = predicted.peak_bytes("memory")
        assert raw == predicted.peak()[1]
        assert predicted.peak_bytes(None) == raw
        assert predicted.peak_bytes("wah") == max(
            1, int(raw / WAH_COMPRESSION_RATIO)
        )
        assert predicted.peak_bytes("disk") == max(
            1, raw // DISK_RESIDENT_RATIO
        )
        assert predicted.peak_bytes("wah") < raw

    def test_unknown_store_rejected(self):
        predicted = predict_profile(5, 4, 1)
        with pytest.raises(ValueError, match="store"):
            predicted.peak_bytes("tape")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            predict_profile(-1, 0, 1)
        with pytest.raises(ValueError):
            predict_profile(5, -1, 1)
        with pytest.raises(ValueError):
            predict_profile(5, 4, 0)

    def test_k_max_truncates_levels(self):
        g = complete_graph(8)
        full = predict_profile(g.n, g.m, 1, seed_sublist_count(g))
        capped = predict_profile(
            g.n, g.m, 1, seed_sublist_count(g), k_max=3
        )
        assert max(capped.sizes) <= 3
        assert len(capped.sizes) < len(full.sizes)

    def test_seed_count_on_edgeless_graph(self):
        assert seed_sublist_count(Graph(6)) == 0


class TestByteSizes:
    def test_parse_plain_and_suffixed(self):
        assert parse_byte_size("4096") == 4096
        assert parse_byte_size("1K") == 1024
        assert parse_byte_size("512M") == 512 * 1024**2
        assert parse_byte_size("2GB") == 2 * 1024**3
        assert parse_byte_size("1T") == 1024**4
        assert parse_byte_size(" 1 kb ") == 1024
        assert parse_byte_size("2.5G") == int(2.5 * 1024**3)

    def test_parse_rejects_garbage(self):
        for bad in ("", "MB", "12Q", "-1K", "1.2.3M"):
            with pytest.raises(ValueError):
                parse_byte_size(bad)

    def test_available_memory_is_positive_or_unknown(self):
        avail = available_memory_bytes()
        assert avail is None or avail > 0
