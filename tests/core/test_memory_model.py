"""Tests for the memory model and paper recurrences."""

from __future__ import annotations

import pytest

from repro.core.clique_enumerator import LevelStats, enumerate_maximal_cliques
from repro.core.generators import complete_graph, planted_clique
from repro.core.memory_model import (
    bytes_to_unit,
    check_paper_recurrences,
    memory_profile,
)


def _stats(k, n_sub, m_cand, bytes_=100):
    return LevelStats(
        k=k,
        n_sublists=n_sub,
        n_candidates=m_cand,
        maximal_emitted=0,
        candidate_bytes=bytes_,
        paper_formula_bytes=bytes_,
    )


class TestUnits:
    def test_conversions(self):
        assert bytes_to_unit(1024, "KB") == 1.0
        assert bytes_to_unit(1024 ** 3, "GB") == 1.0
        assert bytes_to_unit(512, "B") == 512

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            bytes_to_unit(1, "PB")


class TestProfile:
    def test_profile_from_run(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        prof = memory_profile(res.level_stats)
        assert prof.sizes == [ls.k for ls in res.level_stats]
        peak_k, peak_b = prof.peak()
        assert peak_b == max(prof.measured_bytes)
        assert peak_k in prof.sizes

    def test_empty_profile(self):
        prof = memory_profile([])
        assert prof.peak() == (0, 0)
        assert prof.series() == []

    def test_series_units(self):
        prof = memory_profile([_stats(2, 1, 1, bytes_=2048)])
        assert prof.series("KB") == [(2, 2.0)]

    def test_rise_and_fall_on_planted(self):
        g, _ = planted_clique(70, 11, 0.1, seed=2)
        res = enumerate_maximal_cliques(g)
        prof = memory_profile(res.level_stats)
        peak_k, _ = prof.peak()
        # peak strictly inside the range: the Figure 9 shape
        assert prof.sizes[0] < peak_k < prof.sizes[-1]


class TestRecurrences:
    def test_valid_run_passes(self, random_graph):
        res = enumerate_maximal_cliques(random_graph)
        assert check_paper_recurrences(res.level_stats, random_graph.n) == []

    def test_complete_graph_passes_safe_bounds(self):
        g = complete_graph(8)
        res = enumerate_maximal_cliques(g)
        assert check_paper_recurrences(res.level_stats, 8) == []

    def test_nonconsecutive_levels_flagged(self):
        issues = check_paper_recurrences(
            [_stats(2, 1, 2), _stats(4, 1, 2)], 10
        )
        assert any("not consecutive" in s for s in issues)

    def test_n_bound_violation_flagged(self):
        # N[3] = 5 > M[2] - 2*N[2] = 4 - 2 = 2
        issues = check_paper_recurrences(
            [_stats(2, 1, 4), _stats(3, 5, 5)], 10
        )
        assert any("N[3]" in s for s in issues)

    def test_m_bound_violation_flagged(self):
        # safe M bound: (M[2]-2N[2])*(n-k) = 2*8 = 16 < 50
        issues = check_paper_recurrences(
            [_stats(2, 1, 4), _stats(3, 2, 50)], 10
        )
        assert any("M[3]" in s for s in issues)
