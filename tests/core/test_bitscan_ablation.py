"""Tests for the bit-scan generation ablation (paper Section 2.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clique_enumerator import (
    build_initial_sublists,
    generate_next_level,
    generate_next_level_bitscan,
)
from repro.core.counters import OpCounters
from repro.core.generators import erdos_renyi, planted_clique


def _run_full(g, step):
    """Drive a full enumeration with the given generation step."""
    counters = OpCounters()
    cliques: list[tuple[int, ...]] = []
    sublists = build_initial_sublists(
        g, counters, cliques.append, emit_maximal_edges=True
    )
    while sublists:
        sublists = step(sublists, g, counters, cliques.append)
    return sorted(cliques), counters


class TestBitscanEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_cliques(self, seed):
        g = erdos_renyi(30, 0.35, seed=seed)
        list_out, _ = _run_full(g, generate_next_level)
        scan_out, _ = _run_full(g, generate_next_level_bitscan)
        assert list_out == scan_out

    def test_same_cliques_planted(self):
        g, _ = planted_clique(50, 9, 0.1, seed=2)
        list_out, _ = _run_full(g, generate_next_level)
        scan_out, _ = _run_full(g, generate_next_level_bitscan)
        assert list_out == scan_out


class TestBitscanCostModel:
    def test_bits_scanned_counted(self):
        g = erdos_renyi(40, 0.3, seed=1)
        _, counters = _run_full(g, generate_next_level_bitscan)
        scanned = counters.extra.get("bits_scanned", 0)
        # every expansion scans all n bits: count is a multiple of n
        assert scanned > 0
        assert scanned % g.n == 0

    def test_paper_argument_holds_on_sparse_graphs(self):
        """The paper rejects bit-scan because it visits n bits per clique
        while the tail list is bounded by (n - k); on a sparse graph the
        scanned-bit volume dwarfs the pair checks of the list method."""
        g = erdos_renyi(200, 0.03, seed=3)
        _, c_list = _run_full(g, generate_next_level)
        _, c_scan = _run_full(g, generate_next_level_bitscan)
        assert c_scan.extra["bits_scanned"] > 10 * c_list.pair_checks


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.floats(min_value=0.1, max_value=0.9),
    st.integers(min_value=0, max_value=300),
)
def test_bitscan_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    list_out, _ = _run_full(g, generate_next_level)
    scan_out, _ = _run_full(g, generate_next_level_bitscan)
    assert list_out == scan_out
