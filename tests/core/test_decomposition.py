"""Tests for iterative paraclique decomposition."""

from __future__ import annotations

import pytest

from repro.core.decomposition import paraclique_decomposition
from repro.core.generators import (
    complete_graph,
    erdos_renyi,
    planted_partition,
)
from repro.core.graph import Graph
from repro.errors import ParameterError


class TestBasics:
    def test_empty_graph(self):
        d = paraclique_decomposition(Graph(0))
        assert d.modules == []
        assert d.residual_vertices == []

    def test_edgeless_graph(self):
        d = paraclique_decomposition(Graph(4))
        assert d.modules == []
        assert d.residual_vertices == [0, 1, 2, 3]

    def test_single_clique(self):
        d = paraclique_decomposition(complete_graph(5))
        assert len(d.modules) == 1
        assert d.modules[0].vertices == (0, 1, 2, 3, 4)
        assert d.modules[0].density == 1.0
        assert d.residual_vertices == []

    def test_invalid_params(self, k5):
        with pytest.raises(ParameterError):
            paraclique_decomposition(k5, min_size=1)
        with pytest.raises(ParameterError):
            paraclique_decomposition(k5, glom=-1)

    def test_input_not_mutated(self, k5):
        before = k5.copy()
        paraclique_decomposition(k5)
        assert k5 == before


class TestPlanted:
    def test_recovers_planted_blocks(self):
        g, blocks = planted_partition(
            80, [10, 8, 6], p_in=1.0, p_out=0.0, seed=5
        )
        d = paraclique_decomposition(g, min_size=4, glom=0)
        assert len(d.modules) == 3
        got = sorted(tuple(sorted(m.vertices)) for m in d.modules)
        expected = sorted(tuple(b) for b in blocks)
        assert got == expected

    def test_modules_disjoint(self):
        g, _ = planted_partition(
            70, [9, 8, 7], p_in=0.95, p_out=0.03, seed=8
        )
        d = paraclique_decomposition(g, min_size=4)
        seen: set[int] = set()
        for m in d.modules:
            assert not (set(m.vertices) & seen)
            seen |= set(m.vertices)

    def test_residual_plus_modules_cover_graph(self):
        g, _ = planted_partition(
            60, [8, 7], p_in=0.95, p_out=0.02, seed=9
        )
        d = paraclique_decomposition(g, min_size=4)
        everything = d.covered() | set(d.residual_vertices)
        assert everything == set(range(60))

    def test_extraction_order_by_seed_size(self):
        g, _ = planted_partition(
            70, [10, 7, 5], p_in=1.0, p_out=0.0, seed=2
        )
        d = paraclique_decomposition(g, min_size=3, glom=0)
        sizes = [m.seed_clique_size for m in d.modules]
        assert sizes == sorted(sizes, reverse=True)

    def test_max_modules_cap(self):
        g, _ = planted_partition(
            70, [8, 8, 8], p_in=1.0, p_out=0.0, seed=3
        )
        d = paraclique_decomposition(g, max_modules=2, glom=0)
        assert len(d.modules) == 2

    def test_min_size_respected(self):
        g = erdos_renyi(40, 0.15, seed=4)
        d = paraclique_decomposition(g, min_size=5)
        for m in d.modules:
            assert m.seed_clique_size >= 5

    def test_coverage_metric(self):
        g, _ = planted_partition(
            50, [10, 10], p_in=1.0, p_out=0.0, seed=6
        )
        d = paraclique_decomposition(g, glom=0)
        assert d.coverage(50) == pytest.approx(20 / 50)
