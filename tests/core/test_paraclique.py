"""Tests for paraclique extraction."""

from __future__ import annotations

import pytest

from repro.core.generators import complete_graph, planted_clique
from repro.core.graph import Graph
from repro.core.paraclique import (
    paraclique,
    proportional_paraclique,
    subgraph_density,
)
from repro.errors import ParameterError


@pytest.fixture
def near_clique() -> Graph:
    """K6 plus a vertex adjacent to 5 of its 6 members."""
    g = complete_graph(7)
    g.remove_edge(5, 6)
    return g


class TestParaclique:
    def test_pure_clique_unchanged_at_glom_0(self, k5):
        assert paraclique(k5, glom=0) == [0, 1, 2, 3, 4]

    def test_gloms_near_member(self, near_clique):
        # vertex 6 misses one edge to the max clique {0..5}
        result = paraclique(near_clique, glom=1)
        assert result == [0, 1, 2, 3, 4, 5, 6]

    def test_glom_zero_excludes_near_member(self, near_clique):
        result = paraclique(near_clique, glom=0, base=[0, 1, 2, 3, 4, 5])
        assert 6 not in result

    def test_explicit_base(self, near_clique):
        result = paraclique(near_clique, glom=1, base=[0, 1, 2])
        assert set([0, 1, 2]).issubset(result)

    def test_non_clique_base_rejected(self, near_clique):
        with pytest.raises(ParameterError):
            paraclique(near_clique, base=[5, 6])

    def test_negative_glom_rejected(self, k5):
        with pytest.raises(ParameterError):
            paraclique(k5, glom=-1)

    def test_density_stays_high(self):
        g, members = planted_clique(40, 8, 0.1, seed=3)
        result = paraclique(g, glom=1, base=members)
        assert subgraph_density(g, result) >= 0.7


class TestProportional:
    def test_fraction_validated(self, k5):
        with pytest.raises(ParameterError):
            proportional_paraclique(k5, fraction=0.0)
        with pytest.raises(ParameterError):
            proportional_paraclique(k5, fraction=1.2)

    def test_fraction_one_keeps_clique(self, near_clique):
        result = proportional_paraclique(
            near_clique, fraction=1.0, base=[0, 1, 2, 3, 4, 5]
        )
        assert result == [0, 1, 2, 3, 4, 5]

    def test_loose_fraction_gloms(self, near_clique):
        result = proportional_paraclique(
            near_clique, fraction=0.8, base=[0, 1, 2, 3, 4, 5]
        )
        assert 6 in result

    def test_non_clique_base_rejected(self, near_clique):
        with pytest.raises(ParameterError):
            proportional_paraclique(near_clique, base=[5, 6])


class TestDensity:
    def test_clique_density_one(self, k5):
        assert subgraph_density(k5, [0, 1, 2, 3, 4]) == 1.0

    def test_small_sets(self, k5):
        assert subgraph_density(k5, []) == 1.0
        assert subgraph_density(k5, [2]) == 1.0

    def test_empty_subgraph(self):
        assert subgraph_density(Graph(4), [0, 1, 2]) == 0.0
