"""Tests for the Kose et al. RAM baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clique_enumerator import enumerate_maximal_cliques
from repro.core.generators import (
    complete_graph,
    erdos_renyi,
    path_graph,
    planted_clique,
)
from repro.core.graph import Graph
from repro.core.kose import kose_enumerate
from repro.errors import BudgetExceeded, ParameterError
from tests.conftest import nx_maximal_cliques


class TestBasics:
    def test_empty(self):
        assert kose_enumerate(Graph(0)).cliques == []

    def test_isolated_vertices(self):
        res = kose_enumerate(Graph(2), k_min=1)
        assert sorted(res.cliques) == [(0,), (1,)]

    def test_triangle(self, triangle):
        assert kose_enumerate(triangle).cliques == [(0, 1, 2)]

    def test_path(self):
        res = kose_enumerate(path_graph(4))
        assert sorted(res.cliques) == [(0, 1), (1, 2), (2, 3)]

    def test_complete(self):
        assert kose_enumerate(complete_graph(6)).cliques == [
            tuple(range(6))
        ]

    def test_invalid_params(self, triangle):
        with pytest.raises(ParameterError):
            kose_enumerate(triangle, k_min=0)
        with pytest.raises(ParameterError):
            kose_enumerate(triangle, k_min=3, k_max=2)

    def test_non_decreasing_order(self, random_graph):
        res = kose_enumerate(random_graph)
        sizes = [len(c) for c in res.cliques]
        assert sizes == sorted(sizes)

    def test_size_filters(self, barbell4):
        res = kose_enumerate(barbell4, k_min=3)
        assert sorted(res.cliques) == [(0, 1, 2, 3), (4, 5, 6, 7)]
        res = kose_enumerate(barbell4, k_min=2, k_max=2)
        assert res.cliques == [(3, 4)]


class TestAgainstCliqueEnumerator:
    def test_same_output(self, seeded_er):
        ce = enumerate_maximal_cliques(seeded_er, k_min=1)
        ko = kose_enumerate(seeded_er, k_min=1)
        assert sorted(ce.cliques) == sorted(ko.cliques)

    def test_kose_stores_more(self):
        """Full retention: Kose's stored cliques >= CE's candidates."""
        g, _ = planted_clique(40, 9, 0.1, seed=4)
        ce = enumerate_maximal_cliques(g)
        ko = kose_enumerate(g)
        ce_by_k = {ls.k: ls.n_candidates for ls in ce.level_stats}
        for ls in ko.level_stats:
            if ls.k in ce_by_k:
                # Kose keeps all k-cliques; CE keeps only candidates
                assert ls.stored_cliques >= ce_by_k[ls.k]

    def test_subset_probe_counter(self, random_graph):
        res = kose_enumerate(random_graph)
        assert res.counters.extra.get("subset_probes", 0) > 0

    def test_peak_bytes(self, random_graph):
        res = kose_enumerate(random_graph)
        assert res.peak_stored_bytes() > 0


class TestBudget:
    def test_stored_budget_trips(self):
        g = erdos_renyi(25, 0.6, seed=3)
        with pytest.raises(BudgetExceeded):
            kose_enumerate(g, max_stored=5)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=14),
    st.floats(min_value=0.0, max_value=0.9),
    st.integers(min_value=0, max_value=500),
)
def test_kose_matches_networkx(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    res = kose_enumerate(g, k_min=1)
    assert sorted(res.cliques) == nx_maximal_cliques(g)
